"""Shared-memory slabs: the zero-pickle transport for ColumnBatches.

Section 5 of the paper prescribes partition-then-combine parallelism;
for that to beat the GIL the partitions must reach worker *processes*
without serializing every row.  A :class:`~repro.compute.columnar.batch.
ColumnBatch` is already flat -- int64 dimension codes plus float64
aggregate buffers and byte-wide validity masks -- so a batch ships as
one ``multiprocessing.shared_memory`` segment:

``[magic | header-length | JSON header | 8-aligned buffers...]``

The header is *structural only* (row count, per-column offsets, counts
and flags); the dictionary decode lists -- arbitrary python objects --
never cross the process boundary.  Workers group and aggregate on the
integer codes alone and return ``(code-tuple, handle-list)`` pairs; the
parent, which kept the dictionaries, decodes codes back to values.  No
pickle bytes are ever produced for row data.

**Attach semantics.**  A worker attaches by name and copies only its
``[start, end)`` row slice out of the segment (one ``memcpy`` per
buffer), then closes immediately -- no cross-process buffer lifetimes
to manage, and the slab can be released the moment every worker has
answered.  On Python < 3.13 ``SharedMemory`` has no ``track=False``;
:data:`UNREGISTER_ON_ATTACH` keeps spawn-started workers' resource
trackers from unlinking a segment the parent still owns.

**Leak-proofing.**  Every segment is created through the module-level
:class:`SlabManager`, which unlinks on release, on manager shutdown,
and from an ``atexit`` hook -- so even a parent dying mid-query leaves
no ``/dev/shm`` debris (asserted by the graceful-shutdown tests).

For aggregate columns the float64 image is the only copy shipped, so
the python-kernel fallback rebuilds ``raw`` from ``data``/``floats``:
exact for every int with ``|v| <= 2**53`` (the eligibility check in
:mod:`repro.cluster.algorithm` falls back to the thread pool beyond
that).
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
import struct
import threading
from array import array
from multiprocessing import resource_tracker, shared_memory

from repro.errors import ClusterError

__all__ = [
    "MANAGER",
    "SlabAgg",
    "SlabDim",
    "SlabManager",
    "attach_slab",
    "encode_batch",
    "slab_size",
]

_MAGIC = b"RSB1"
_ALIGN = 8

#: the largest int that survives the float64 round trip exactly
EXACT_INT_BOUND = 2 ** 53


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class SlabDim:
    """Worker-side image of one dimension column: codes only.

    The decode list (python objects) stays in the parent, which is the
    whole point -- grouping needs just the dense integer codes.
    """

    __slots__ = ("name", "cardinality", "codes")

    def __init__(self, name: str, cardinality: int, codes: array) -> None:
        self.name = name
        self.cardinality = cardinality
        self.codes = codes

    def codes_np(self, xp):
        return xp.frombuffer(self.codes, dtype=xp.int64)


class SlabAgg:
    """Worker-side image of one aggregate column.

    Mirrors :class:`~repro.compute.columnar.batch.AggColumn`'s kernel
    surface (``valid``/``nan``/``floats``/``data`` plus the ``*_np``
    views).  ``raw`` is rebuilt lazily -- only the pure-python kernels
    read it -- from the float64 image and the type masks, which is
    exact for the columns the eligibility check lets through.
    """

    __slots__ = ("name", "numeric", "n_valid", "n_float",
                 "valid", "nan", "floats", "data", "_raw")

    def __init__(self, name: str, numeric: bool, n_valid: int, n_float: int,
                 valid: bytearray, nan: bytearray, floats: bytearray,
                 data: array | None) -> None:
        self.name = name
        self.numeric = numeric
        self.n_valid = n_valid
        self.n_float = n_float
        self.valid = valid
        self.nan = nan
        self.floats = floats
        self.data = data
        self._raw: list | None = None

    @property
    def raw(self) -> list:
        if self._raw is None:
            n = len(self.valid)
            raw: list = [None] * n
            if self.data is not None:
                data = self.data
                floats = self.floats
                valid = self.valid
                for i in range(n):
                    if valid[i]:
                        raw[i] = data[i] if floats[i] else int(data[i])
            self._raw = raw
        return self._raw

    def valid_np(self, xp):
        return xp.frombuffer(self.valid, dtype=xp.uint8).astype(bool)

    def nan_np(self, xp):
        return xp.frombuffer(self.nan, dtype=xp.uint8).astype(bool)

    def floats_np(self, xp):
        return xp.frombuffer(self.floats, dtype=xp.uint8).astype(bool)

    def data_np(self, xp):
        return xp.frombuffer(self.data, dtype=xp.float64)


class SlabBatch:
    """What :func:`attach_slab` returns: a row-sliced columnar view."""

    __slots__ = ("n_rows", "dims", "aggs")

    def __init__(self, n_rows: int, dims: list, aggs: list) -> None:
        self.n_rows = n_rows
        self.dims = dims
        self.aggs = aggs


def _layout(batch) -> tuple[dict, int]:
    """The slab header and total byte size for one ColumnBatch."""
    n = batch.n_rows
    offset = 0

    def claim(nbytes: int) -> int:
        nonlocal offset
        at = offset
        offset += _aligned(nbytes)
        return at

    dims = []
    for column in batch.dims:
        dims.append({"name": column.name,
                     "cardinality": column.cardinality,
                     "codes": claim(8 * n)})
    aggs = []
    for column in batch.aggs:
        entry = {"name": column.name,
                 "numeric": bool(column.numeric),
                 "n_valid": column.n_valid,
                 "n_float": column.n_float,
                 "valid": claim(n),
                 "nan": claim(n),
                 "floats": claim(n),
                 "data": claim(8 * n) if column.data is not None else None}
        aggs.append(entry)
    header = {"n_rows": n, "dims": dims, "aggs": aggs}
    return header, offset


def _header_bytes(header: dict) -> bytes:
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    prefix = _MAGIC + struct.pack("<I", len(payload))
    return prefix + payload


def slab_size(batch) -> int:
    """Total bytes one batch needs in shared memory."""
    header, body = _layout(batch)
    return _aligned(len(_header_bytes(header))) + body


def encode_batch(batch, buf) -> int:
    """Write a ColumnBatch into ``buf`` (a shared-memory buffer).

    Returns the number of bytes written.  Pure buffer copies: the
    dictionary decode lists are deliberately *not* written.
    """
    header, body = _layout(batch)
    head = _header_bytes(header)
    base = _aligned(len(head))
    total = base + body
    if len(buf) < total:
        raise ClusterError(
            f"slab buffer too small: need {total} bytes, have {len(buf)}")
    buf[:len(head)] = head

    def put(at: int, raw: bytes) -> None:
        buf[base + at:base + at + len(raw)] = raw

    for column, entry in zip(batch.dims, header["dims"]):
        put(entry["codes"], bytes(column.codes))
    for column, entry in zip(batch.aggs, header["aggs"]):
        put(entry["valid"], bytes(column.valid))
        put(entry["nan"], bytes(column.nan))
        put(entry["floats"], bytes(column.floats))
        if entry["data"] is not None:
            put(entry["data"], bytes(column.data))
    return total


def _read_header(buf) -> tuple[dict, int]:
    if bytes(buf[:4]) != _MAGIC:
        raise ClusterError("slab header magic mismatch: not a repro slab")
    (length,) = struct.unpack("<I", bytes(buf[4:8]))
    header = json.loads(bytes(buf[8:8 + length]).decode("utf-8"))
    return header, _aligned(8 + length)


def decode_slab(buf, start: int = 0, end: int | None = None) -> SlabBatch:
    """Rebuild the ``[start, end)`` row slice of a slab as columns.

    Copies each buffer slice out (one memcpy per buffer) so the caller
    can close the shared-memory segment immediately after.
    """
    header, base = _read_header(buf)
    n = header["n_rows"]
    if end is None:
        end = n
    if not 0 <= start <= end <= n:
        raise ClusterError(
            f"slab slice [{start}, {end}) out of range for {n} rows")
    dims = []
    for entry in header["dims"]:
        at = base + entry["codes"]
        codes = array("q")
        codes.frombytes(bytes(buf[at + 8 * start:at + 8 * end]))
        dims.append(SlabDim(entry["name"], entry["cardinality"], codes))
    aggs = []
    for entry in header["aggs"]:
        def mask(at: int) -> bytearray:
            at = base + at
            return bytearray(buf[at + start:at + end])
        data = None
        if entry["data"] is not None:
            at = base + entry["data"]
            data = array("d")
            data.frombytes(bytes(buf[at + 8 * start:at + 8 * end]))
        aggs.append(SlabAgg(entry["name"], entry["numeric"],
                            entry["n_valid"], entry["n_float"],
                            mask(entry["valid"]), mask(entry["nan"]),
                            mask(entry["floats"]), data))
    return SlabBatch(end - start, dims, aggs)


#: Set True in *spawn-started* workers only (see ``pool._worker_main``).
#: Python < 3.13 has no ``SharedMemory(track=False)``, so attaching
#: registers the segment with the process's resource tracker.  A spawn
#: worker has its own tracker, which would unlink the parent's segment
#: when the worker exits -- those workers must unregister after attach.
#: A fork worker shares the parent's tracker (the pipe fd survives the
#: fork), where the registration is the parent's own: unregistering
#: there would make the parent's later ``unlink`` a double-unregister.
UNREGISTER_ON_ATTACH = False


def attach_slab(name: str, start: int = 0, end: int | None = None) -> SlabBatch:
    """Child-side attach: open the segment by name, copy the row slice
    out, and close.  See :data:`UNREGISTER_ON_ATTACH` for the tracker
    dance."""
    shm = shared_memory.SharedMemory(name=name)
    if UNREGISTER_ON_ATTACH:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    try:
        return decode_slab(shm.buf, start, end)
    finally:
        shm.close()


class SlabManager:
    """Parent-side segment lifecycle: create, track, always unlink.

    ``release``/``release_all`` are idempotent and exception-proof; the
    module-level :data:`MANAGER` additionally unlinks everything from an
    ``atexit`` hook, so a crashing parent cannot leak ``/dev/shm``
    segments.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        from repro.obs import instrument
        name = f"repro_slab_{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(nbytes, 1))
        with self._lock:
            self._segments[shm.name] = shm
            active = len(self._segments)
        instrument.set_cluster_segments(active)
        return shm

    def create_for(self, batch) -> shared_memory.SharedMemory:
        """Create a segment sized for ``batch`` and encode it in."""
        shm = self.create(slab_size(batch))
        try:
            encode_batch(batch, shm.buf)
        except BaseException:
            self.release(shm.name)
            raise
        return shm

    def release(self, name: str) -> None:
        from repro.obs import instrument
        with self._lock:
            shm = self._segments.pop(name, None)
            active = len(self._segments)
        if shm is None:
            return
        try:
            shm.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        instrument.set_cluster_segments(active)

    def release_all(self) -> None:
        with self._lock:
            names = list(self._segments)
        for name in names:
            self.release(name)

    def active(self) -> int:
        with self._lock:
            return len(self._segments)


#: process-wide manager; every slab the cluster backend ships goes
#: through it so shutdown paths (SIGTERM drain, atexit) can sweep
MANAGER = SlabManager()
atexit.register(MANAGER.release_all)
