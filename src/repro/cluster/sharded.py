"""Dimension-sharded materialized cubes: scatter requests, gather
super-aggregates.

A :class:`ShardedCube` partitions a base table by one dimension's value
(a stable, process-independent hash -- ``PYTHONHASHSEED`` never changes
the placement) and keeps one
:class:`~repro.maintenance.materialized.MaterializedCube` per shard.
This is the paper's §5 parallel-database layout made durable: "data
spans many disks", each shard maintains complete local cells with live
mergeable scratchpads, and every read is a scatter/gather --

- **mutations** route to exactly one shard (the shard key pins the
  row), so insert/delete/update cost is a single shard's lattice walk;
- **reads** (:meth:`as_table`, :meth:`value`) visit every shard and
  fold the per-shard scratchpads with ``Iter_super`` in shard index
  order, which keeps results deterministic and bit-identical to one
  unsharded cube over the same rows (asserted by the cluster tests).

Shard-key choice (docs/CLUSTER.md): shard by the dimension with the
most distinct values that queries *filter* on -- a low-cardinality key
leaves shards unbalanced, and a key queries never pin means every read
is a full scatter anyway.  The gather cost is proportional to cells,
not base rows, which is the §5 observation that super-aggregation is
cheap relative to the core scan.

Requires mergeable aggregates, exactly like every other partitioned
path: a strict-mode holistic scratchpad cannot be combined across
shards.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Sequence

from repro.engine.table import Table
from repro.errors import ClusterError, NotMergeableError
from repro.obs import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.maintenance.materialized import MaterializedCube

__all__ = ["ShardedCube"]


def _stable_shard_key(value: Any) -> int:
    """A process-stable hash of one shard-key value (crc32 of the
    repr; ``hash()`` would vary with ``PYTHONHASHSEED``)."""
    text = f"{type(value).__name__}:{value!r}"
    return zlib.crc32(text.encode("utf-8", "backslashreplace"))


class ShardedCube:
    """N maintained cube shards behind one cube-shaped surface."""

    def __init__(self, base: Table, dims: Sequence, aggregates: Sequence, *,
                 shard_by: str, n_shards: int = 2,
                 kind: str = "cube", **cube_options: Any) -> None:
        # deferred: maintenance reaches back into repro.core, which is
        # mid-import when the optimizer registers the cluster algorithm
        from repro.maintenance.materialized import MaterializedCube
        if n_shards < 1:
            raise ClusterError(f"n_shards must be >= 1, got {n_shards}")
        names = list(base.schema.names)
        if shard_by not in names:
            raise ClusterError(
                f"shard key {shard_by!r} is not a base column; "
                f"have {names}")
        self.shard_by = shard_by
        self.n_shards = n_shards
        self._key_index = names.index(shard_by)

        groups: list[list[tuple]] = [[] for _ in range(n_shards)]
        for row in base.rows:
            groups[self.shard_of(row[self._key_index])].append(row)
        self._shards = [
            MaterializedCube(Table(base.schema, rows), dims, aggregates,
                             kind=kind, **cube_options)
            for rows in groups
        ]
        self._task = self._shards[0]._task
        self._specs = self._shards[0]._specs
        if not all(spec.function.mergeable for spec in self._specs):
            bad = [spec.function.name for spec in self._specs
                   if not spec.function.mergeable]
            raise NotMergeableError(
                f"sharded cube needs mergeable scratchpads; {bad} are "
                "holistic in strict mode")

    # -- placement --------------------------------------------------------

    def shard_of(self, value: Any) -> int:
        """Which shard owns rows whose shard-key column equals ``value``."""
        return _stable_shard_key(value) % self.n_shards

    @property
    def shards(self) -> tuple[MaterializedCube, ...]:
        return tuple(self._shards)

    @property
    def dims(self) -> tuple[str, ...]:
        return self._task.dims

    @property
    def masks(self) -> tuple:
        return self._task.masks

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # -- mutations (route to one shard) -----------------------------------

    def _route(self, row: Sequence[Any]) -> MaterializedCube:
        return self._shards[self.shard_of(row[self._key_index])]

    def insert(self, row: Sequence[Any]) -> int:
        return self._route(row).insert(row)

    def delete(self, row: Sequence[Any]) -> int:
        return self._route(row).delete(row)

    def update(self, old_row: Sequence[Any], new_row: Sequence[Any]) -> int:
        """DELETE + INSERT, which also covers a row that changes shard."""
        old_shard = self._route(old_row)
        new_shard = self._route(new_row)
        if old_shard is new_shard:
            return old_shard.update(old_row, new_row)
        touched = old_shard.delete(old_row)
        return touched + new_shard.insert(new_row)

    # -- reads (scatter to all shards, gather with Iter_super) ------------

    def _merged_cells(self) -> list[tuple[tuple, tuple]]:
        cells = []
        with trace.span("cluster.shard.gather", shards=self.n_shards,
                        shard_by=self.shard_by) as span:
            for mask in self._task.masks:
                merged: dict[tuple, list] = {}
                for shard in self._shards:
                    for coordinate, handles in shard._cells[mask].items():
                        target = merged.get(coordinate)
                        if target is None:
                            target = [spec.function.start()
                                      for spec in self._specs]
                            merged[coordinate] = target
                        for position, spec in enumerate(self._specs):
                            target[position] = spec.function.merge(
                                target[position], handles[position])
                for coordinate, handles in merged.items():
                    values = tuple(spec.function.end(handle)
                                   for spec, handle in zip(self._specs,
                                                           handles))
                    cells.append((coordinate, values))
            if 0 in self._task.masks and not any(
                    shard._cells[0] for shard in self._shards):
                # the global aggregate exists even over an empty base
                values = tuple(spec.function.end(spec.function.start())
                               for spec in self._specs)
                cells.append((self._task.coordinate(0, ()), values))
            span.set(cells=len(cells))
        return cells

    def as_table(self, *, sort_result: bool = True) -> Table:
        """The full cube relation, gathered across every shard."""
        table = self._task.result_table(self._merged_cells())
        if sort_result:
            from repro.engine.operators import sort as sort_op
            table = sort_op(table, list(self._task.dims))
        return table

    def value(self, *coords: Any, measure: str | None = None) -> Any:
        """One cell, gathered: merge the owning cell of every shard."""
        from repro.types import ALL
        mask = 0
        for i, coordinate in enumerate(coords):
            if coordinate is not ALL:
                mask |= 1 << i
        if mask not in self._task.masks:
            raise ClusterError(
                f"grouping set of {coords} is not materialized")
        merged = None
        position = 0
        if measure is not None:
            names = [spec.name for spec in self._specs]
            if measure not in names:
                raise ClusterError(
                    f"unknown measure {measure!r}; have {names}")
            position = names.index(measure)
        spec = self._specs[position]
        for shard in self._shards:
            handles = shard._cells[mask].get(tuple(coords))
            if handles is None:
                continue
            if merged is None:
                merged = spec.function.start()
            merged = spec.function.merge(merged, handles[position])
        if merged is None:
            return None
        return spec.function.end(merged)
