"""Multi-process sharded execution (§5 scatter/gather across cores).

The cluster subsystem escapes the GIL: dictionary-encoded column
batches ship to a persistent worker-process pool through
``multiprocessing.shared_memory`` slabs with zero pickling
(:mod:`repro.cluster.slab`), workers compute per-partition core
aggregates with mergeable scratchpads (:mod:`repro.cluster.pool`), and
the parent combines them through the existing
``fold_super_aggregates`` walk bit-identically to the row and columnar
backends (:mod:`repro.cluster.algorithm`, ``algorithm="cluster"``).
:class:`~repro.cluster.sharded.ShardedCube` applies the same
scatter/gather shape to *maintained* cubes, sharding a base table by a
chosen dimension.  See docs/CLUSTER.md.
"""

from repro.cluster.algorithm import ClusterCubeAlgorithm
from repro.cluster.pool import (
    ClusterPool,
    default_workers,
    get_pool,
    shutdown_pools,
)
from repro.cluster.sharded import ShardedCube
from repro.cluster.slab import MANAGER, SlabManager, attach_slab, encode_batch

__all__ = [
    "MANAGER",
    "ClusterCubeAlgorithm",
    "ClusterPool",
    "ShardedCube",
    "SlabManager",
    "attach_slab",
    "default_workers",
    "encode_batch",
    "get_pool",
    "shutdown_pools",
]
