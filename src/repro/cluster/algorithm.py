"""Multi-process cube computation over shared-memory slabs.

``algorithm="cluster"`` is Section 5's partition-then-combine executed
across *processes*, so the GIL stops bounding cube throughput:

1. **Batch** the task's rows into a dictionary-encoded
   :class:`~repro.compute.columnar.batch.ColumnBatch` and encode it
   into one shared-memory slab (:mod:`repro.cluster.slab`) -- flat
   buffers, zero pickling, the dictionaries stay parent-side.
2. **Scatter** contiguous row ranges to the persistent worker pool
   (:mod:`repro.cluster.pool`).  Each worker groups its slice by the
   lattice-core dimension codes (first-seen order) and scatters every
   aggregate through its columnar kernel -- per-partition aggregation
   with mergeable scratchpads, exactly as the paper prescribes for
   parallel database systems.
3. **Gather + combine**: partition results (code tuples plus primitive
   handles) come back over the pipes; the parent decodes codes through
   the retained dictionaries and merges partition handles in partition
   index order (``Iter_super``).  Because the ranges are contiguous,
   partition-order first-seen discovery reproduces the *global*
   first-seen group order, so the combined core is the same dict -- in
   the same insertion order -- the single-process columnar sparse route
   builds.
4. The super-aggregate walk is then *literally*
   :func:`~repro.compute.from_core.fold_super_aggregates`, which is
   what makes cluster results bit-identical to the row and columnar
   backends (asserted pairwise by the equivalence suite).

**Eligibility.**  Every aggregate must be mergeable (else
:class:`~repro.errors.NotMergeableError`, as for the thread pool) and
every function must have a vector kernel over a shippable column: the
slab carries only the float64 image, so numeric kernels additionally
need every int to survive the float64 round trip (``|v| <= 2**53``).
Anything else -- holistic residuals, UDAFs, mixed-type MIN/MAX under
numpy, huge ints -- falls back to the *thread* pool
(:class:`~repro.compute.parallel.ParallelCubeAlgorithm`), keeping the
``cluster`` label so callers see one algorithm (mirroring the columnar
fallback contract).

**Resilience.**  Worker-process retry, serial in-parent recovery
(bit-identical: recovery re-runs the identical partition function on
the still-live slab), deadline/cancellation propagation into workers,
and a chaos ``worker_crash`` that SIGKILLs real processes all live in
:mod:`repro.cluster.pool`.
"""

from __future__ import annotations

from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.compute.columnar.batch import ColumnBatch, numpy_backend
from repro.compute.columnar.kernels import (
    kernel_for,
    kernel_needs_numeric,
)
from repro.compute.from_core import finalize_nodes, fold_super_aggregates
from repro.core.lattice import CubeLattice
from repro.errors import CubeError, NotMergeableError
from repro.obs import instrument, trace
from repro.resilience import context as rctx
from repro.types import ALL
from repro.cluster.pool import (
    FailedPartition,
    default_workers,
    get_pool,
    run_partition_spec,
)
from repro.cluster.slab import EXACT_INT_BOUND, MANAGER, slab_size

__all__ = ["ClusterCubeAlgorithm"]


class ClusterCubeAlgorithm(CubeAlgorithm):
    """Multi-process columnar backend (§5 scatter/gather over slabs).

    - ``n_workers``: worker processes (default ``REPRO_WORKERS`` or 2);
    - ``force_python``: pin the pure-python kernels in the workers
      (the no-numpy CI leg and the parity tests).
    """

    name = "cluster"

    def __init__(self, n_workers: int | None = None, *,
                 force_python: bool = False) -> None:
        if n_workers is None:
            n_workers = default_workers()
        if n_workers < 1:
            raise CubeError("n_workers must be at least 1")
        self.n_workers = n_workers
        self.force_python = force_python

    # -- top level ------------------------------------------------------------

    def _compute(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"cluster cube needs mergeable scratchpads; {bad} are "
                "holistic in strict mode")
        stats = self._new_stats()

        if not task.rows:
            cells = []
            if 0 in task.masks:
                coordinate = tuple(ALL for _ in range(task.n_dims))
                values = tuple(fn.end(fn.start()) for fn in task.functions)
                cells.append((coordinate, values))
                stats.start_calls = task.n_aggs
                stats.end_calls = task.n_aggs
            stats.cells_produced = len(cells)
            return CubeResult(table=task.result_table(cells), stats=stats)

        xp = numpy_backend(self.force_python)
        with trace.span("cube.batch", rows=len(task.rows),
                        backend="numpy" if xp is not None else "python"):
            batch = ColumnBatch.from_task(task)
        stats.notes["backend"] = "numpy" if xp is not None else "python"

        kernels = self._shippable_kernels(task, batch, xp)
        if kernels is None:
            return self._fallback(task)

        return self._scatter_gather(task, batch, kernels, xp, stats)

    # -- eligibility -----------------------------------------------------------

    def _shippable_kernels(self, task: CubeTask, batch: ColumnBatch,
                           xp) -> "list[tuple[str, int]] | None":
        """Kernel plan ``[(kernel_name, agg_index), ...]`` covering every
        aggregate, or None when any position cannot ship."""
        exact: dict[int, bool] = {}

        def ships_exactly(p: int) -> bool:
            column = batch.aggs[p]
            key = id(column.valid)  # dedup'd columns share their masks
            cached = exact.get(key)
            if cached is None:
                cached = all(
                    -EXACT_INT_BOUND <= value <= EXACT_INT_BOUND
                    for value, is_float in zip(column.raw, column.floats)
                    if type(value) is int and not is_float)
                exact[key] = cached
            return cached

        kernels: list[tuple[str, int]] = []
        for p, fn in enumerate(task.functions):
            kernel = kernel_for(fn)
            if kernel is None:
                return None
            if kernel_needs_numeric(fn):
                if not batch.aggs[p].numeric:
                    return None
                # float64 MIN/MAX can't restore a cross-type tie winner
                if (xp is not None and kernel in ("min", "max")
                        and batch.aggs[p].mixed_number_types):
                    return None
                # the slab ships only the float64 image: every int must
                # survive the round trip or raw reconstruction drifts
                if not ships_exactly(p):
                    return None
            kernels.append((kernel, p))
        return kernels

    def _fallback(self, task: CubeTask) -> CubeResult:
        """Not slab-shippable: run on the thread pool, keeping the
        cluster label so callers see one algorithm."""
        from repro.compute.parallel import ParallelCubeAlgorithm
        inner = ParallelCubeAlgorithm(self.n_workers, use_threads=True)
        with trace.span("cube.cluster.fallback", path=inner.name,
                        workers=self.n_workers):
            result = inner._compute(task)
        result.stats.algorithm = self.name
        result.stats.notes["fallback"] = inner.name
        return result

    # -- scatter / gather ------------------------------------------------------

    def _scatter_gather(self, task: CubeTask, batch: ColumnBatch,
                        kernels: list, xp, stats) -> CubeResult:
        n = task.n_dims
        n_rows = batch.n_rows
        lattice = CubeLattice(task.dims, task.masks)
        core_mask = lattice.core
        core_dims = [i for i in range(n) if core_mask & (1 << i)]
        cards = batch.cardinalities()
        strides = []
        stride = 1
        for i in reversed(core_dims):
            strides.append(stride)
            stride *= cards[i]
        strides.reverse()

        ctx = rctx.current_context()
        workers = max(1, min(self.n_workers, n_rows))
        stats.partitions = workers
        stats.notes["workers"] = workers

        chaos = None
        if ctx is not None and ctx.chaos is not None:
            rates = ctx.chaos.rates
            if rates["worker_crash"] > 0 or rates["slow_node"] > 0:
                chaos = {"seed": ctx.chaos.seed,
                         "worker_crash": rates["worker_crash"],
                         "slow_node": rates["slow_node"],
                         "slow_node_delay": ctx.chaos.slow_node_delay}

        with trace.span("cube.cluster.scatter", rows=n_rows,
                        workers=workers) as span:
            shm = MANAGER.create_for(batch)
            span.set(slab_bytes=slab_size(batch))
        instrument.record_cluster_compute(stats.notes["backend"], n_rows,
                                          slab_size(batch))

        base_spec = {"slab": shm.name, "core_dims": core_dims,
                     "core_strides": strides, "kernels": kernels,
                     "deadline": ctx.deadline if ctx is not None else None}
        bounds = [n_rows * i // workers for i in range(workers + 1)]
        specs = []
        for i in range(workers):
            spec = dict(base_spec)
            spec.update(start=bounds[i], end=bounds[i + 1], worker=i,
                        chaos=chaos)
            specs.append(spec)

        try:
            pool = get_pool(workers, force_python=self.force_python)
            with trace.span("cube.cluster.gather",
                            workers=workers) as gather_span:
                outcomes = pool.run(specs, ctx=ctx, parent=gather_span)

            failed = [o for o in outcomes if isinstance(o, FailedPartition)]
            if failed:
                stats.notes["recovered_partitions"] = len(failed)
                with trace.span("cube.cluster.recover",
                                failures=len(failed)) as recover_span:
                    for lost in failed:
                        rctx.checkpoint("cluster recovery")
                        recover_span.event("recover_partition",
                                           worker=lost.index,
                                           error=str(lost.error))
                        instrument.record_worker_recovery()
                        # serial, in-parent, chaos-exempt re-execution of
                        # the identical partition function: a genuine
                        # deterministic error re-raises here
                        clean = dict(specs[lost.index])
                        clean["chaos"] = None
                        outcomes[lost.index] = run_partition_spec(
                            clean, force_python=self.force_python)
        finally:
            MANAGER.release(shm.name)

        return self._combine(task, batch, core_mask, core_dims, outcomes,
                             stats)

    def _combine(self, task: CubeTask, batch: ColumnBatch, core_mask: int,
                 core_dims: list, outcomes: list, stats) -> CubeResult:
        n = task.n_dims
        with trace.span("cube.cluster.coalesce",
                        workers=len(outcomes)) as span:
            combined: dict[tuple, list] = {}
            local_groups = 0
            for payload in outcomes:
                rctx.checkpoint("cluster coalesce")
                stats.base_scans += 1
                stats.iter_calls += payload["iter_calls"]
                stats.start_calls += payload["n_groups"] * task.n_aggs
                local_groups += payload["n_groups"]
                for codes, handles in payload["groups"]:
                    dim_values: list = [None] * n
                    for position, d in enumerate(core_dims):
                        dim_values[d] = batch.dims[d].values[codes[position]]
                    coordinate = task.coordinate(core_mask, dim_values)
                    target = combined.get(coordinate)
                    if target is None:
                        target = task.new_handles(stats)
                        combined[coordinate] = target
                    task.merge_handles(target, handles, stats)
            # every partition's groups are alive while the parent folds
            # them into the combined core -- count both for the peak
            stats.observe_resident(local_groups + len(combined))
            span.set(cells=len(combined))

        nodes = {core_mask: combined}
        fold_super_aggregates(task, nodes, stats)
        cells = finalize_nodes(task, nodes, stats)
        return CubeResult(table=task.result_table(cells), stats=stats)
