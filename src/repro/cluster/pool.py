"""The cluster worker-process pool.

A :class:`ClusterPool` keeps ``n_workers`` long-lived worker processes,
each joined to the parent by one duplex pipe.  Dispatch is
partition-to-worker (partition ``i`` always goes to worker ``i``), so
when a worker dies the parent knows exactly which partition was lost --
the identification the serial-recovery contract needs.

Control traffic over the pipes is tiny (job specs and aggregate
handles, all primitives); the row data itself never touches a pipe --
workers attach the shared-memory slab named in the spec
(:mod:`repro.cluster.slab`) and copy out only their row slice.

**Fault envelope** (mirrors the thread pool in
:mod:`repro.compute.parallel`):

- a worker that dies (``EOFError`` on its pipe -- including a chaos
  ``worker_crash`` SIGKILL) or reports an error is retried under the
  context's :class:`~repro.resilience.retry.RetryPolicy`, on a freshly
  spawned process, with the attempt number bumped so the deterministic
  chaos draw can spare the retry;
- exhausted retries surrender the partition as a
  :class:`FailedPartition` sentinel -- the caller re-executes it
  serially in-process, so results stay bit-identical;
- cancellation always wins: worker-reported
  ``QueryCancelledError``/``QueryTimeoutError`` re-raise immediately
  and are never retried.

**Deadline/cancellation propagation.**  Specs carry the context's
*absolute* monotonic deadline (``CLOCK_MONOTONIC`` is system-wide on
Linux, so the instant transfers); workers poll it at every
:data:`~repro.compute.columnar.batch.BATCH_ROWS` chunk boundary,
together with a pool-wide cancellation event the parent sets when its
own token fires.  The parent also polls its context while gathering, so
a wedged worker cannot outlive the statement timeout.

**Chaos.**  ``worker_crash`` here kills a real process: the spec ships
the injector's ``(seed, rate)`` and the worker evaluates the *same
deterministic draw* the thread pool uses
(:meth:`~repro.resilience.chaos.ChaosInjector.should_inject` is a pure
function of seed, point, and labels -- stable across processes), then
``SIGKILL``\\ s itself mid-partition.  The parent records the injection
against its own injector with the identical draw, so chaos accounting
and the chaos-matrix seeds behave exactly as they do for threads.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import time
from multiprocessing.connection import wait as _wait_connections

from repro.compute.columnar.batch import BATCH_ROWS, numpy_backend
from repro.compute.columnar.kernels import make_state
from repro.errors import (ClusterError, QueryCancelledError,
                          QueryTimeoutError, WorkerLostError)
from repro.resilience.retry import RetryPolicy
from repro.cluster.slab import attach_slab

__all__ = ["ClusterPool", "FailedPartition", "default_workers", "get_pool",
           "run_partition_spec", "shutdown_pools"]

#: gather-loop poll interval; bounds how late the parent notices a
#: cancellation or a silent worker death
_POLL_S = 0.05


def default_workers() -> int:
    """Worker count when the caller didn't pin one: ``REPRO_WORKERS``
    or 2 (two processes exercise the scatter/gather machinery without
    oversubscribing small CI boxes)."""
    raw = os.environ.get("REPRO_WORKERS", "")
    try:
        n = int(raw)
    except ValueError:
        n = 0
    return n if n >= 1 else 2


class FailedPartition:
    """Sentinel for a partition whose worker exhausted its retries."""

    def __init__(self, index: int, error: BaseException) -> None:
        self.index = index
        self.error = error


# -- worker side --------------------------------------------------------------


def run_partition_spec(spec: dict, *, force_python: bool,
                       cancel_event=None) -> dict:
    """Compute one partition's core-GROUP-BY from a slab row slice.

    This is the §5 per-partition aggregation: group the slice's rows by
    the lattice-core dimension codes (first-seen order, so the parent's
    partition-order combine reproduces the global first-seen order) and
    scatter each aggregate through its columnar kernel.  Returns only
    primitives -- ``(code-tuple, handle-list)`` pairs plus counters --
    so the result pickles trivially and the parent's
    ``fold_super_aggregates`` walk stays bit-identical to the
    single-process columnar sparse route.

    Runs identically in a worker process and in the parent (serial
    recovery calls it directly with chaos stripped from the spec).
    """
    deadline = spec.get("deadline")

    def check(where: str) -> None:
        if cancel_event is not None and cancel_event.is_set():
            raise QueryCancelledError(f"query cancelled during {where}")
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeoutError(f"deadline passed during {where}")

    check("cluster partition attach")
    slab = attach_slab(spec["slab"], spec["start"], spec["end"])
    xp = numpy_backend(force_python)
    n = slab.n_rows

    core_dims = spec["core_dims"]
    strides = spec["core_strides"]
    flat = [0] * n
    for d, stride in zip(core_dims, strides):
        codes = slab.dims[d].codes
        if stride == 1:
            for i, code in enumerate(codes):
                flat[i] += code
        else:
            for i, code in enumerate(codes):
                flat[i] += code * stride

    group_of: dict[int, int] = {}
    gids = [0] * n
    representatives: list[int] = []
    for start in range(0, n, BATCH_ROWS):
        check("cluster group scan")
        for i in range(start, min(start + BATCH_ROWS, n)):
            key = flat[i]
            gid = group_of.get(key)
            if gid is None:
                gid = group_of[key] = len(group_of)
                representatives.append(i)
            gids[i] = gid
    n_groups = len(group_of)

    slots = xp.asarray(gids, dtype=xp.int64) if xp is not None else gids
    iter_calls = 0
    states = []
    for kernel_name, agg_index in spec["kernels"]:
        check("cluster kernel scatter")
        state = make_state(kernel_name, n_groups, xp)
        iter_calls += state.scatter(slots, slab.aggs[agg_index])
        states.append(state)

    groups = []
    for gid in range(n_groups):
        rep = representatives[gid]
        codes = tuple(int(slab.dims[d].codes[rep]) for d in core_dims)
        groups.append((codes, [state.handle(gid) for state in states]))
    return {"groups": groups, "iter_calls": iter_calls,
            "n_groups": n_groups}


def _maybe_chaos_crash(spec: dict) -> None:
    """Evaluate the deterministic ``worker_crash`` draw and, when it
    fires, die for real -- SIGKILL, no cleanup, exactly the failure the
    serial-recovery contract must survive."""
    chaos = spec.get("chaos")
    if not chaos:
        return
    from repro.resilience.chaos import ChaosInjector
    injector = ChaosInjector(chaos["seed"],
                             worker_crash=chaos.get("worker_crash", 0.0),
                             slow_node=chaos.get("slow_node", 0.0),
                             slow_node_delay=chaos.get("slow_node_delay",
                                                       0.005))
    labels = {"worker": spec["worker"], "attempt": spec["attempt"]}
    if injector.should_inject("slow_node", **labels):
        time.sleep(injector.slow_node_delay)
    if injector.should_inject("worker_crash", **labels):
        os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(worker_id: int, conn, cancel_event,
                 force_python: bool, own_tracker: bool) -> None:
    """Worker loop: recv spec, compute, send ``(job, status, payload)``.

    Exits on ``None`` (orderly shutdown) or a closed pipe (parent
    died).  Every error is reported by *name* -- never a pickled
    exception object -- and mapped back to the taxonomy parent-side.
    """
    if own_tracker:
        # spawn-started: this process has its own resource tracker,
        # which must not adopt the parent's segments on attach
        from repro.cluster import slab
        slab.UNREGISTER_ON_ATTACH = True
    while True:
        try:
            spec = conn.recv()
        except (EOFError, OSError):
            break
        if spec is None:
            break
        job = spec["job"]
        try:
            _maybe_chaos_crash(spec)
            payload = run_partition_spec(spec, force_python=force_python,
                                         cancel_event=cancel_event)
            reply = (job, "ok", payload)
        except BaseException as error:
            reply = (job, "error", (type(error).__name__, str(error)))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


# -- parent side --------------------------------------------------------------


class _Worker:
    __slots__ = ("index", "process", "conn")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn


class ClusterPool:
    """``n_workers`` persistent worker processes plus dispatch/retry.

    One compute runs at a time (``run`` holds an internal lock):
    concurrent cluster queries serialize here and parallelize *inside*
    the pool, which keeps worker count -- not query count -- the
    process-fanout bound.
    """

    def __init__(self, n_workers: int, *, force_python: bool = False) -> None:
        if n_workers < 1:
            raise ClusterError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.force_python = force_python
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._cancel_event = self._mp.Event()
        self._lock = threading.Lock()
        self._job_seq = 0
        self._closed = False
        self._workers = [self._spawn(i) for i in range(n_workers)]

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe()
        own_tracker = self._mp.get_start_method() != "fork"
        process = self._mp.Process(
            target=_worker_main,
            args=(index, child_conn, self._cancel_event, self.force_python,
                  own_tracker),
            name=f"repro-cluster-{index}", daemon=True)
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def _respawn(self, index: int) -> None:
        from repro.obs import instrument
        worker = self._workers[index]
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        instrument.record_cluster_worker_restart()
        self._workers[index] = self._spawn(index)

    def run(self, specs: list, *, ctx=None, parent=None) -> list:
        """Dispatch one spec per worker; gather with retry.

        Returns one outcome per spec: the worker's payload dict, or a
        :class:`FailedPartition` sentinel after exhausted retries.
        Cancellation/timeout (parent token or worker report) raises.
        """
        if len(specs) > self.n_workers:
            raise ClusterError(
                f"{len(specs)} partitions for {self.n_workers} workers")
        if self._closed:
            raise ClusterError("pool is shut down")
        with self._lock:
            self._cancel_event.clear()
            try:
                return self._run_locked(specs, ctx=ctx, parent=parent)
            except BaseException:
                # wake any worker still grinding a stale job; its late
                # reply carries a stale job id and is discarded
                self._cancel_event.set()
                raise

    def _run_locked(self, specs: list, *, ctx, parent) -> list:
        from repro.obs import instrument
        policy = ctx.retry if ctx is not None else RetryPolicy()
        outcomes: list = [None] * len(specs)
        attempts = [0] * len(specs)
        outstanding: dict[int, tuple] = {}  # partition -> job id

        def dispatch(index: int) -> None:
            self._job_seq += 1
            job = (self._job_seq, index, attempts[index])
            spec = dict(specs[index])
            spec["job"] = job
            spec["attempt"] = attempts[index]
            if spec.get("chaos") and ctx is not None and ctx.chaos is not None:
                # mirror the worker's deterministic draw so the parent's
                # injector (and the chaos metric) records the real kill
                ctx.chaos.should_inject("worker_crash", worker=index,
                                        attempt=attempts[index])
            outstanding[index] = job
            try:
                self._workers[index].conn.send(spec)
            except (BrokenPipeError, OSError):
                # found it dead at dispatch: same path as a mid-job death
                self._on_death(index, attempts, outstanding, outcomes,
                               policy, parent, dispatch)

        def surrender(index: int, error: BaseException) -> None:
            instrument.record_worker_failure()
            if parent is not None:
                parent.event("worker_failed", worker=index, error=str(error))
            outcomes[index] = FailedPartition(index, error)
            outstanding.pop(index, None)

        self._surrender = surrender
        for index in range(len(specs)):
            dispatch(index)

        while outstanding:
            if ctx is not None:
                ctx.check("cluster gather")
            pending = {self._workers[i].conn: i for i in outstanding}
            ready = _wait_connections(list(pending), timeout=_POLL_S)
            if not ready:
                # nothing readable: sweep for silent deaths
                for conn, index in list(pending.items()):
                    if not self._workers[index].process.is_alive():
                        self._on_death(index, attempts, outstanding,
                                       outcomes, policy, parent, dispatch)
                continue
            for conn in ready:
                index = pending[conn]
                try:
                    job, status, payload = conn.recv()
                except (EOFError, OSError):
                    self._on_death(index, attempts, outstanding, outcomes,
                                   policy, parent, dispatch)
                    continue
                if job != outstanding.get(index):
                    continue  # stale reply from a cancelled run
                if status == "ok":
                    outcomes[index] = payload
                    outstanding.pop(index, None)
                    continue
                error_name, message = payload
                error = self._rebuild_error(error_name, message, index)
                if isinstance(error, QueryCancelledError):
                    raise error
                self._retry_or_surrender(index, error, attempts, outstanding,
                                         outcomes, policy, parent, dispatch,
                                         respawn=False)
        return outcomes

    def _on_death(self, index: int, attempts, outstanding, outcomes,
                  policy, parent, dispatch) -> None:
        exitcode = self._workers[index].process.exitcode
        error = WorkerLostError(
            f"cluster worker {index} died (exitcode {exitcode}) "
            f"mid-partition")
        self._retry_or_surrender(index, error, attempts, outstanding,
                                 outcomes, policy, parent, dispatch,
                                 respawn=True)

    def _retry_or_surrender(self, index: int, error, attempts, outstanding,
                            outcomes, policy, parent, dispatch, *,
                            respawn: bool) -> None:
        from repro.obs import instrument
        if respawn:
            self._respawn(index)
        attempt = attempts[index]
        if attempt >= policy.max_retries:
            self._surrender(index, error)
            return
        instrument.record_worker_retry()
        if parent is not None:
            parent.event("worker_retry", worker=index, attempt=attempt,
                         error=str(error))
        policy.sleep(attempt)
        attempts[index] = attempt + 1
        dispatch(index)

    @staticmethod
    def _rebuild_error(name: str, message: str, index: int) -> BaseException:
        if name == "QueryTimeoutError":
            return QueryTimeoutError(message)
        if name == "QueryCancelledError":
            return QueryCancelledError(message)
        return WorkerLostError(
            f"cluster worker {index} failed: {name}: {message}")

    def shutdown(self) -> None:
        """Orderly stop: ask, then join, then terminate stragglers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cancel_event.set()
            for worker in self._workers:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass


_POOLS: dict[tuple[int, bool], ClusterPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(n_workers: int, *, force_python: bool = False) -> ClusterPool:
    """The shared pool for ``(n_workers, force_python)``, created on
    first use and kept warm across computes (process startup would
    otherwise dominate every query)."""
    key = (n_workers, force_python)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None or pool._closed:
            pool = _POOLS[key] = ClusterPool(n_workers,
                                             force_python=force_python)
        return pool


def shutdown_pools() -> None:
    """Stop every shared pool (server drain, tests, atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)
