"""The distributive aggregates: COUNT, SUM, MIN, MAX (Section 5).

For each, the super-aggregation function G equals F itself, except
COUNT where G = SUM (counts of parts add up).  All four keep O(1)
scratchpads and support ``merge`` directly.

Maintenance classes follow Section 6:

- COUNT and SUM are algebraic (in fact reversible) for INSERT *and*
  DELETE, so their cubes are easy to maintain;
- MIN and MAX are distributive for INSERT but **holistic for DELETE**:
  removing the current extreme leaves the scratchpad unable to answer,
  so ``unapply`` reports ``supported=False`` and the maintenance layer
  recomputes the cell.
"""

from __future__ import annotations

import math
from typing import Any

from repro.aggregates.base import AggregateFunction, Handle, UnapplyResult
from repro.aggregates.classification import (
    AggregateClass,
    MaintenanceProfile,
)

__all__ = ["CountStar", "Count", "Sum", "Min", "Max"]


class CountStar(AggregateFunction):
    """COUNT(*): counts every row, including NULL/ALL carriers."""

    name = "COUNT(*)"
    classification = AggregateClass.DISTRIBUTIVE
    maintenance = MaintenanceProfile(
        select=AggregateClass.DISTRIBUTIVE,
        insert=AggregateClass.DISTRIBUTIVE,
        delete=AggregateClass.DISTRIBUTIVE)
    skips_non_values = False
    vector_kernel = "count_star"

    def start(self) -> Handle:
        return 0

    def next(self, handle: Handle, value: Any) -> Handle:
        return handle + 1

    def end(self, handle: Handle) -> int:
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        return handle + other  # G = SUM for COUNT

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        # A replayed delete (chaos-injected retry) must never drive the
        # count negative: decline so the maintenance layer recomputes.
        if handle <= 0:
            return 0, False
        return handle - 1, True


class Count(AggregateFunction):
    """COUNT(expr): counts non-NULL, non-ALL values."""

    name = "COUNT"
    classification = AggregateClass.DISTRIBUTIVE
    maintenance = MaintenanceProfile(
        select=AggregateClass.DISTRIBUTIVE,
        insert=AggregateClass.DISTRIBUTIVE,
        delete=AggregateClass.DISTRIBUTIVE)
    vector_kernel = "count"

    def start(self) -> Handle:
        return 0

    def next(self, handle: Handle, value: Any) -> Handle:
        return handle + 1

    def end(self, handle: Handle) -> int:
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        return handle + other

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        if handle <= 0:
            return 0, False  # underflow: force a recompute, never go negative
        return handle - 1, True


class Sum(AggregateFunction):
    """SUM(expr).  SQL semantics: the sum of zero values is NULL."""

    name = "SUM"
    classification = AggregateClass.DISTRIBUTIVE
    maintenance = MaintenanceProfile(
        select=AggregateClass.DISTRIBUTIVE,
        insert=AggregateClass.DISTRIBUTIVE,
        delete=AggregateClass.DISTRIBUTIVE)
    vector_kernel = "sum"

    def start(self) -> Handle:
        return None  # no value seen yet

    def next(self, handle: Handle, value: Any) -> Handle:
        if handle is None:
            return value
        return handle + value

    def end(self, handle: Handle) -> Any:
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if other is None:
            return handle
        if handle is None:
            return other
        return handle + other

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        if handle is None:
            return handle, False  # deleting from an empty sum: recompute
        return handle - value, True


class _Extreme(AggregateFunction):
    """Shared scaffolding for MIN/MAX.

    Delete-holistic (Section 6): if the deleted value equals the current
    extreme we cannot know the runner-up from an O(1) scratchpad, so
    ``unapply`` declines and forces a recompute.
    """

    classification = AggregateClass.DISTRIBUTIVE
    maintenance = MaintenanceProfile(
        select=AggregateClass.DISTRIBUTIVE,
        insert=AggregateClass.DISTRIBUTIVE,
        delete=AggregateClass.HOLISTIC)

    def _better(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def accepts(self, value: Any) -> bool:
        # NaN compares False against everything, so feeding it to
        # ``_better`` would let a NaN that arrives after the current
        # extreme stick forever -- and whether it sticks would depend on
        # partition order, breaking the parallel backend's bit-identical
        # guarantee.  Treat NaN like NULL/ALL: it never participates.
        if isinstance(value, float) and math.isnan(value):
            return False
        return super().accepts(value)

    def start(self) -> Handle:
        return None

    def next(self, handle: Handle, value: Any) -> Handle:
        if handle is None:
            return value
        return self._better(handle, value)

    def end(self, handle: Handle) -> Any:
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if other is None:
            return handle
        if handle is None:
            return other
        return self._better(handle, other)

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        if handle is None:
            return handle, False
        if value == handle:
            return handle, False  # the extreme left; recompute required
        return handle, True

    def insert_dominated(self, handle: Handle, value: Any) -> bool:
        """The Section 6 short-circuit: a value that loses here loses at
        every coarser cell (their sets are supersets, so their extreme
        is at least as strong)."""
        if handle is None:
            return False
        # losing *or tying* the current extreme changes nothing here,
        # and coarser cells hold supersets, so nothing changes there
        return self._better(handle, value) == handle


class Min(_Extreme):
    name = "MIN"
    vector_kernel = "min"

    def _better(self, a: Any, b: Any) -> Any:
        return a if a <= b else b


class Max(_Extreme):
    name = "MAX"
    vector_kernel = "max"

    def _better(self, a: Any, b: Any) -> Any:
        return a if a >= b else b
