"""Aggregate functions: the Figure 7 scratchpad model, the
distributive/algebraic/holistic taxonomy (Section 5), per-operation
maintenance classes (Section 6), the standard SQL five, the Red Brick
extensions (Section 1.2), and user-defined aggregates.
"""

from repro.aggregates.base import AggregateFunction, Handle
from repro.aggregates.classification import (
    AggregateClass,
    DISTRIBUTIVE,
    ALGEBRAIC,
    HOLISTIC,
    MaintenanceProfile,
)
from repro.aggregates.distributive import (
    CountStar,
    Count,
    Sum,
    Min,
    Max,
)
from repro.aggregates.algebraic import (
    Average,
    Variance,
    StdDev,
    MaxN,
    MinN,
    CenterOfMass,
)
from repro.aggregates.holistic import (
    Median,
    Mode,
    Percentile,
    CountDistinct,
    RankOf,
)
from repro.aggregates.approximate import (
    ApproximateMedian,
    ApproximateQuantile,
    QuantileSketch,
)
from repro.aggregates.registry import (
    AggregateRegistry,
    default_registry,
    get_aggregate,
    make_udaf,
    register_aggregate,
)
from repro.aggregates.redbrick import (
    rank,
    n_tile,
    ratio_to_total,
    cumulative,
    running_sum,
    running_average,
)

__all__ = [
    "ALGEBRAIC",
    "AggregateClass",
    "AggregateFunction",
    "AggregateRegistry",
    "ApproximateMedian",
    "ApproximateQuantile",
    "Average",
    "CenterOfMass",
    "Count",
    "CountDistinct",
    "CountStar",
    "DISTRIBUTIVE",
    "HOLISTIC",
    "Handle",
    "MaintenanceProfile",
    "Max",
    "MaxN",
    "Median",
    "Min",
    "MinN",
    "Mode",
    "Percentile",
    "QuantileSketch",
    "RankOf",
    "StdDev",
    "Sum",
    "Variance",
    "cumulative",
    "default_registry",
    "get_aggregate",
    "make_udaf",
    "n_tile",
    "rank",
    "ratio_to_total",
    "register_aggregate",
    "running_average",
    "running_sum",
]
