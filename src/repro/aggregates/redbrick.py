"""Red Brick's extended aggregate functions (Section 1.2).

Unlike the Figure 7 scratchpad aggregates these are *relational
functions*: they need the whole column (and, for the cumulative family,
its order) to produce a value per row.  The SQL front-end materializes
them as derived columns before grouping, which is how the paper's

    SELECT Percentile, MIN(Temp), MAX(Temp)
    FROM Weather
    GROUP BY N_tile(Temp, 10) AS Percentile
    HAVING Percentile = 5;

query runs: ``N_tile`` is computed over all input rows first, then used
as a grouping column.

All functions return a list aligned with the input values.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import AggregateError
from repro.types import is_null_or_all, sort_key

__all__ = [
    "rank",
    "n_tile",
    "ratio_to_total",
    "cumulative",
    "running_sum",
    "running_average",
]


def rank(values: Sequence[Any]) -> list[int | None]:
    """Rank(expression): rank within all values of the column.

    Red Brick semantics: with N values, the highest value has rank N and
    the lowest rank 1.  Ties share the lowest applicable rank (the count
    of strictly-smaller values plus one).  NULL/ALL rank as NULL.
    """
    real = [v for v in values if not is_null_or_all(v)]
    ordered = sorted(real, key=sort_key)
    ranks: dict[Any, int] = {}
    for position, value in enumerate(ordered, start=1):
        if value not in ranks:
            ranks[value] = position
    return [None if is_null_or_all(v) else ranks[v] for v in values]


def n_tile(values: Sequence[Any], n: int) -> list[int | None]:
    """N_tile(expression, n): equi-populated value-range bucket, 1..n.

    The Red Brick manual describes dividing the expression's range into
    n ranges of approximately equal population: bucket 10 of
    ``N_tile(balance, 10)`` holds the largest 10%.  Implemented as
    ceil(rank * n / N) over the rank order, which yields approximately
    equal populations and is stable under ties.
    """
    if n < 1:
        raise AggregateError(f"n_tile needs n >= 1, got {n}")
    real = [v for v in values if not is_null_or_all(v)]
    total = len(real)
    if total == 0:
        return [None] * len(values)
    ordered = sorted(range(total), key=lambda i: sort_key(real[i]))
    positions: dict[int, int] = {}
    for dense_rank, idx in enumerate(ordered, start=1):
        positions[idx] = dense_rank
    buckets: list[int | None] = []
    real_idx = 0
    for value in values:
        if is_null_or_all(value):
            buckets.append(None)
            continue
        dense_rank = positions[real_idx]
        real_idx += 1
        bucket = -(-dense_rank * n // total)  # ceil division
        buckets.append(min(n, max(1, bucket)))
    return buckets


def ratio_to_total(values: Sequence[Any]) -> list[float | None]:
    """Ratio_To_Total(expression): value / sum of all values."""
    real = [v for v in values if not is_null_or_all(v)]
    total = sum(real) if real else None
    out: list[float | None] = []
    for value in values:
        if is_null_or_all(value) or total in (None, 0):
            out.append(None)
        else:
            out.append(value / total)
    return out


def _grouped(values: Sequence[Any],
             groups: Sequence[Any] | None) -> list[tuple[int, Any]]:
    """Pair each index with its group key (a single dummy group if None).

    Implements the Red Brick note that cumulative aggregates are
    "optionally reset each time a grouping value changes in an ordered
    selection" -- the reset happens on *change*, i.e. contiguous runs.
    """
    if groups is None:
        return [(0, v) for v in values]
    if len(groups) != len(values):
        raise AggregateError("groups must align with values")
    run = 0
    previous = object()
    out: list[tuple[int, Any]] = []
    for group_key, value in zip(groups, values):
        if group_key != previous:
            run += 1
            previous = group_key
        out.append((run, value))
    return out


def cumulative(values: Sequence[Any],
               groups: Sequence[Any] | None = None) -> list[Any]:
    """Cumulative(expression): running total over the ordered input."""
    out: list[Any] = []
    current_run: int | None = None
    total: Any = None
    for run, value in _grouped(values, groups):
        if run != current_run:
            current_run = run
            total = None
        if not is_null_or_all(value):
            total = value if total is None else total + value
        out.append(total)
    return out


def running_sum(values: Sequence[Any], n: int,
                groups: Sequence[Any] | None = None) -> list[Any]:
    """Running_Sum(expression, n): sum of the most recent n values.

    Red Brick semantics: the initial n-1 positions are NULL (the window
    is not yet full).
    """
    if n < 1:
        raise AggregateError(f"running_sum needs n >= 1, got {n}")
    out: list[Any] = []
    window: list[Any] = []
    current_run: int | None = None
    for run, value in _grouped(values, groups):
        if run != current_run:
            current_run = run
            window = []
        window.append(value)
        if len(window) > n:
            window.pop(0)
        if len(window) < n:
            out.append(None)
        else:
            real = [v for v in window if not is_null_or_all(v)]
            out.append(sum(real) if real else None)
    return out


def running_average(values: Sequence[Any], n: int,
                    groups: Sequence[Any] | None = None) -> list[Any]:
    """Running_Average(expression, n): mean of the most recent n values;
    the initial n-1 positions are NULL."""
    sums = running_sum(values, n, groups)
    out: list[Any] = []
    window: list[Any] = []
    current_run: int | None = None
    position = 0
    for run, value in _grouped(values, groups):
        if run != current_run:
            current_run = run
            window = []
        window.append(value)
        if len(window) > n:
            window.pop(0)
        total = sums[position]
        if total is None:
            out.append(None)
        else:
            real_count = sum(1 for v in window if not is_null_or_all(v))
            out.append(total / real_count if real_count else None)
        position += 1
    return out
