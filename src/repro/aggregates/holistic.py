"""Holistic aggregates (Section 5): MEDIAN, MODE (MostFrequent),
PERCENTILE, RANK, COUNT(DISTINCT).

A holistic function has *no constant bound* on the scratchpad needed to
summarize a sub-aggregation.  The paper's consequence: "we know of no
more efficient way of computing super-aggregates of holistic functions
than the 2^N-algorithm".

Two execution modes are provided:

- **strict mode** (``carrying=False``): ``merge`` raises
  :class:`~repro.errors.NotMergeableError`; the optimizer must route the
  cube through the 2^N-algorithm, exactly as the paper prescribes;
- **carrying mode** (``carrying=True``, the default): the scratchpad
  carries the whole multiset, so ``merge`` works -- at unbounded
  scratchpad size.  This exists so benchmarks can *measure* the price of
  holistic functions instead of merely refusing.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.aggregates.base import AggregateFunction, Handle, UnapplyResult
from repro.aggregates.classification import (
    AggregateClass,
    MaintenanceProfile,
)
from repro.errors import AggregateError, NotMergeableError
from repro.types import sort_key

__all__ = [
    "HolisticAggregate",
    "Median",
    "Mode",
    "Percentile",
    "CountDistinct",
    "RankOf",
]


class HolisticAggregate(AggregateFunction):
    """Base class: the scratchpad is the list of all accepted values."""

    classification = AggregateClass.HOLISTIC
    maintenance = MaintenanceProfile.uniform(AggregateClass.HOLISTIC)

    def __init__(self, *, carrying: bool = True) -> None:
        self.carrying = carrying

    @property
    def mergeable(self) -> bool:
        return self.carrying

    def start(self) -> Handle:
        return []

    def next(self, handle: Handle, value: Any) -> Handle:
        handle.append(value)
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if not self.carrying:
            raise NotMergeableError(
                f"{self.name} is holistic and running in strict mode; "
                "use the 2^N-algorithm (Section 5)")
        handle.extend(other)
        return handle

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        if not self.carrying:
            return handle, False
        try:
            handle.remove(value)
        except ValueError:
            return handle, False
        return handle, True

    def end(self, handle: Handle) -> Any:
        raise NotImplementedError


class Median(HolisticAggregate):
    """Exact median (lower-middle for even counts, SQL-style determinism
    on mixed types via the library total order)."""

    name = "MEDIAN"

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        ordered = sorted(handle, key=sort_key)
        mid = (len(ordered) - 1) // 2
        return ordered[mid]


class Mode(HolisticAggregate):
    """MostFrequent() / Mode(): the most frequent value; ties broken by
    the smallest value so results are deterministic."""

    name = "MODE"

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        counts = Counter(handle)
        best_count = max(counts.values())
        candidates = [v for v, c in counts.items() if c == best_count]
        return min(candidates, key=sort_key)


class Percentile(HolisticAggregate):
    """The p-th percentile (0 < p <= 100), nearest-rank definition."""

    name = "PERCENTILE"

    def __init__(self, p: float, *, carrying: bool = True) -> None:
        super().__init__(carrying=carrying)
        if not 0 < p <= 100:
            raise AggregateError(f"percentile p must be in (0, 100], got {p}")
        self.p = p

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        ordered = sorted(handle, key=sort_key)
        rank = max(1, -(-len(ordered) * self.p // 100))  # ceil
        return ordered[int(rank) - 1]


class CountDistinct(HolisticAggregate):
    """COUNT(DISTINCT expr) (Section 1.1's second example query).

    Holistic: the set of seen values has no constant-size summary.  The
    scratchpad here is a set rather than a list.
    """

    name = "COUNT_DISTINCT"

    def start(self) -> Handle:
        return set()

    def next(self, handle: Handle, value: Any) -> Handle:
        handle.add(value)
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if not self.carrying:
            raise NotMergeableError(
                "COUNT DISTINCT is holistic in strict mode")
        handle |= other
        return handle

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        # removing one duplicate must not drop the distinct value; a set
        # scratchpad cannot tell, so deletes always force a recompute.
        return handle, False

    def end(self, handle: Handle) -> int:
        return len(handle)


class RankOf(HolisticAggregate):
    """RANK(expr, target): the rank of ``target`` within the group.

    Matches the Red Brick definition quoted in Section 1.2: with N
    values, the highest has rank N and the lowest rank 1.  As a *cube*
    aggregate it answers "what is the rank of this fixed value inside
    each cell", which is the holistic exemplar the paper names.
    """

    name = "RANK_OF"

    def __init__(self, target: Any, *, carrying: bool = True) -> None:
        super().__init__(carrying=carrying)
        self.target = target

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        below = sum(1 for v in handle if sort_key(v) <= sort_key(self.target))
        return below
