"""Holistic aggregates (Section 5): MEDIAN, MODE (MostFrequent),
PERCENTILE, RANK, COUNT(DISTINCT).

A holistic function has *no constant bound* on the scratchpad needed to
summarize a sub-aggregation.  The paper's consequence: "we know of no
more efficient way of computing super-aggregates of holistic functions
than the 2^N-algorithm".

Two execution modes are provided:

- **strict mode** (``carrying=False``): ``merge`` raises
  :class:`~repro.errors.NotMergeableError`; the optimizer must route the
  cube through the 2^N-algorithm, exactly as the paper prescribes;
- **carrying mode** (``carrying=True``, the default): the scratchpad
  carries the whole multiset, so ``merge`` works -- at unbounded
  scratchpad size.  This exists so benchmarks can *measure* the price of
  holistic functions instead of merely refusing.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any

from repro.aggregates.base import AggregateFunction, Handle, UnapplyResult
from repro.aggregates.classification import (
    AggregateClass,
    MaintenanceProfile,
)
from repro.errors import AggregateError, NotMergeableError
from repro.types import sort_key

__all__ = [
    "HolisticAggregate",
    "Median",
    "Mode",
    "Percentile",
    "CountDistinct",
    "RankOf",
]


class HolisticAggregate(AggregateFunction):
    """Base class: the scratchpad is the list of all accepted values."""

    classification = AggregateClass.HOLISTIC
    maintenance = MaintenanceProfile.uniform(AggregateClass.HOLISTIC)

    def __init__(self, *, carrying: bool = True) -> None:
        self.carrying = carrying

    @property
    def mergeable(self) -> bool:
        return self.carrying

    def start(self) -> Handle:
        return []

    def next(self, handle: Handle, value: Any) -> Handle:
        handle.append(value)
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if not self.carrying:
            raise NotMergeableError(
                f"{self.name} is holistic and running in strict mode; "
                "use the 2^N-algorithm (Section 5)")
        handle.extend(other)
        return handle

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        if not self.carrying:
            return handle, False
        try:
            handle.remove(value)
        except ValueError:
            return handle, False
        return handle, True

    def end(self, handle: Handle) -> Any:
        raise NotImplementedError


class Median(HolisticAggregate):
    """Exact median (lower-middle for even counts, SQL-style determinism
    on mixed types via the library total order)."""

    name = "MEDIAN"

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        ordered = sorted(handle, key=sort_key)
        mid = (len(ordered) - 1) // 2
        return ordered[mid]


class Mode(HolisticAggregate):
    """MostFrequent() / Mode(): the most frequent value; ties broken by
    the smallest value so results are deterministic."""

    name = "MODE"

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        counts = Counter(handle)
        best_count = max(counts.values())
        candidates = [v for v, c in counts.items() if c == best_count]
        return min(candidates, key=sort_key)


class Percentile(HolisticAggregate):
    """The p-th percentile.

    Two parameter scales and two estimators:

    - ``scale="percent"`` (default): ``0 < p <= 100``, the historical
      surface this library has always exposed;
    - ``scale="fraction"``: ``0.0 <= p <= 1.0``, so quantile-style
      callers can ask for the exact boundaries ``p=0.0`` and ``p=1.0``;
    - ``interpolation="nearest"`` (default): nearest-rank definition;
    - ``interpolation="linear"``: interpolate between the two bracketing
      order statistics (numeric inputs).  The upper bracket index is
      clamped to the last element: at ``p=1.0`` the exact position *is*
      the last element, and an unclamped ``floor+1`` index would read
      one past the end of the sorted scratchpad.
    """

    name = "PERCENTILE"

    def __init__(self, p: float, *, scale: str = "percent",
                 interpolation: str = "nearest",
                 carrying: bool = True) -> None:
        super().__init__(carrying=carrying)
        if scale not in ("percent", "fraction"):
            raise AggregateError(
                f"percentile scale must be percent|fraction, got {scale!r}")
        if interpolation not in ("nearest", "linear"):
            raise AggregateError(
                "percentile interpolation must be nearest|linear, "
                f"got {interpolation!r}")
        if scale == "percent":
            if not 0 < p <= 100:
                raise AggregateError(
                    f"percentile p must be in (0, 100], got {p}")
            self.fraction = p / 100
        else:
            if not 0.0 <= p <= 1.0:
                raise AggregateError(
                    f"fractional percentile p must be in [0, 1], got {p}")
            self.fraction = p
        self.p = p
        self.scale = scale
        self.interpolation = interpolation

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        ordered = sorted(handle, key=sort_key)
        n = len(ordered)
        if self.interpolation == "linear":
            position = self.fraction * (n - 1)
            lower = int(position)
            upper = min(lower + 1, n - 1)  # clamp: p=1.0 lands on the end
            weight = position - lower
            if weight == 0 or lower == upper:
                return ordered[lower]
            return ordered[lower] + weight * (ordered[upper] - ordered[lower])
        if self.scale == "percent":
            rank = max(1, -(-n * self.p // 100))  # ceil, integer-exact
        else:
            rank = max(1, math.ceil(n * self.fraction))
        return ordered[min(int(rank), n) - 1]


class CountDistinct(HolisticAggregate):
    """COUNT(DISTINCT expr) (Section 1.1's second example query).

    Holistic: the set of seen values has no constant-size summary.  The
    scratchpad here is a set rather than a list.
    """

    name = "COUNT_DISTINCT"

    def start(self) -> Handle:
        return set()

    def next(self, handle: Handle, value: Any) -> Handle:
        handle.add(value)
        return handle

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if not self.carrying:
            raise NotMergeableError(
                "COUNT DISTINCT is holistic in strict mode")
        handle |= other
        return handle

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        # removing one duplicate must not drop the distinct value; a set
        # scratchpad cannot tell, so deletes always force a recompute.
        return handle, False

    def end(self, handle: Handle) -> int:
        return len(handle)


class RankOf(HolisticAggregate):
    """RANK(expr, target): the rank of ``target`` within the group.

    Matches the Red Brick definition quoted in Section 1.2: with N
    values, the highest has rank N and the lowest rank 1.  As a *cube*
    aggregate it answers "what is the rank of this fixed value inside
    each cell", which is the holistic exemplar the paper names.
    """

    name = "RANK_OF"

    def __init__(self, target: Any, *, carrying: bool = True) -> None:
        super().__init__(carrying=carrying)
        self.target = target

    def end(self, handle: Handle) -> Any:
        if not handle:
            return None
        below = sum(1 for v in handle if sort_key(v) <= sort_key(self.target))
        return below
