"""Aggregate-function registry, including user-defined aggregates.

The paper (Section 1.2) describes Illustra's mechanism for adding
aggregate functions to the engine via Init/Iter/Final callbacks, and
Section 5 extends it with Iter_super.  :func:`register_aggregate` is
that mechanism: hand in either an :class:`AggregateFunction` subclass or
the raw callbacks, and the SQL front-end and cube operators can use the
new function by name.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.aggregates.base import AggregateFunction, Handle
from repro.aggregates.classification import (
    AggregateClass,
    MaintenanceProfile,
)
from repro.aggregates.algebraic import (
    Average,
    CenterOfMass,
    MaxN,
    MinN,
    StdDev,
    Variance,
)
from repro.aggregates.approximate import (
    ApproximateMedian,
    ApproximateQuantile,
)
from repro.aggregates.distributive import Count, CountStar, Max, Min, Sum
from repro.aggregates.holistic import (
    CountDistinct,
    Median,
    Mode,
    Percentile,
)
from repro.errors import AggregateError, UnknownAggregateError

__all__ = [
    "AggregateRegistry",
    "default_registry",
    "get_aggregate",
    "register_aggregate",
    "make_udaf",
]

Factory = Callable[..., AggregateFunction]


class AggregateRegistry:
    """Case-insensitive name -> aggregate factory mapping."""

    def __init__(self) -> None:
        self._factories: dict[str, Factory] = {}

    def register(self, name: str, factory: Factory, *,
                 replace: bool = False) -> None:
        key = name.upper()
        if key in self._factories and not replace:
            raise AggregateError(
                f"aggregate {name!r} already registered; pass replace=True")
        self._factories[key] = factory

    def create(self, name: str, *args: Any, **kwargs: Any) -> AggregateFunction:
        key = name.upper()
        try:
            factory = self._factories[key]
        except KeyError:
            raise UnknownAggregateError(
                f"unknown aggregate {name!r}; known: {sorted(self._factories)}"
            ) from None
        return factory(*args, **kwargs)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._factories

    def names(self) -> list[str]:
        return sorted(self._factories)

    def copy(self) -> "AggregateRegistry":
        clone = AggregateRegistry()
        clone._factories = dict(self._factories)
        return clone


def _standard_registry() -> AggregateRegistry:
    registry = AggregateRegistry()
    registry.register("COUNT", Count)
    registry.register("COUNT(*)", CountStar)
    registry.register("COUNTSTAR", CountStar)
    registry.register("SUM", Sum)
    registry.register("MIN", Min)
    registry.register("MAX", Max)
    registry.register("AVG", Average)
    registry.register("AVERAGE", Average)
    registry.register("VARIANCE", Variance)
    registry.register("VAR", Variance)
    registry.register("STDEV", StdDev)
    registry.register("STDDEV", StdDev)
    registry.register("MAXN", MaxN)
    registry.register("MINN", MinN)
    registry.register("CENTER_OF_MASS", CenterOfMass)
    registry.register("MEDIAN", Median)
    registry.register("APPROX_MEDIAN", ApproximateMedian)
    registry.register("APPROX_PERCENTILE", ApproximateQuantile)
    registry.register("MODE", Mode)
    registry.register("MOST_FREQUENT", Mode)
    registry.register("PERCENTILE", Percentile)
    registry.register("COUNT_DISTINCT", CountDistinct)
    return registry


#: The process-wide registry holding the standard SQL five plus the
#: statistical, physical, and holistic functions from Sections 1.2 and 5.
default_registry = _standard_registry()


def get_aggregate(name: str, *args: Any, **kwargs: Any) -> AggregateFunction:
    """Instantiate a registered aggregate by name."""
    return default_registry.create(name, *args, **kwargs)


def register_aggregate(name: str, factory: Factory, *,
                       replace: bool = False,
                       registry: AggregateRegistry | None = None) -> None:
    """Register a user-defined aggregate (the Illustra mechanism)."""
    (registry or default_registry).register(name, factory, replace=replace)


def make_udaf(name: str,
              init: Callable[[], Handle],
              iterate: Callable[[Handle, Any], Handle],
              final: Callable[[Handle], Any],
              merge_fn: Callable[[Handle, Handle], Handle] | None = None,
              *,
              classification: AggregateClass | None = None,
              cost: float = 1.0) -> type[AggregateFunction]:
    """Build an aggregate class from raw Init/Iter/Final[/Iter_super]
    callbacks -- the paper's Figure 7 contract, verbatim.

    If ``merge_fn`` is omitted the function is treated as holistic: no
    Iter_super means no super-aggregation shortcut, so the optimizer
    routes cubes of this function through the 2^N-algorithm.
    """
    if classification is None:
        classification = (AggregateClass.ALGEBRAIC if merge_fn is not None
                          else AggregateClass.HOLISTIC)
    if merge_fn is None and classification.mergeable:
        raise AggregateError(
            f"{name}: a {classification.value} aggregate must supply "
            "merge_fn (Iter_super)")

    udaf_name = name
    udaf_class = classification
    udaf_cost = cost

    class UserDefinedAggregate(AggregateFunction):
        name = udaf_name
        classification = udaf_class
        maintenance = MaintenanceProfile.uniform(udaf_class)
        cost = udaf_cost

        def start(self) -> Handle:
            return init()

        def next(self, handle: Handle, value: Any) -> Handle:
            return iterate(handle, value)

        def end(self, handle: Handle) -> Any:
            return final(handle)

        def merge(self, handle: Handle, other: Handle) -> Handle:
            if merge_fn is None:
                return super().merge(handle, other)
            return merge_fn(handle, other)

    UserDefinedAggregate.__name__ = f"UDAF_{name}"
    UserDefinedAggregate.__qualname__ = UserDefinedAggregate.__name__
    return UserDefinedAggregate
