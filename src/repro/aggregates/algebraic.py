"""Algebraic aggregates (Section 5): AVG, VARIANCE, STDEV, MAXN, MINN,
CENTER_OF_MASS.

An algebraic function's scratchpad is a fixed-size M-tuple:

- ``Average`` keeps ``(sum, count)`` -- the paper's own example;
- ``Variance``/``StdDev`` keep ``(count, mean, M2)`` (Welford's form,
  which merges exactly via Chan's parallel update);
- ``MaxN``/``MinN`` keep the N best values seen (M = N);
- ``CenterOfMass`` keeps ``(sum of mass, sum of mass*position)``; it
  aggregates ``(mass, position)`` pairs.

All are mergeable (``Iter_super``) and so can be computed from the core
GROUP BY or combined across parallel partitions.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.aggregates.base import AggregateFunction, Handle, UnapplyResult
from repro.aggregates.classification import (
    AggregateClass,
    MaintenanceProfile,
)
from repro.errors import AggregateError

__all__ = ["Average", "Variance", "StdDev", "MaxN", "MinN", "CenterOfMass"]


class Average(AggregateFunction):
    """AVG: scratchpad is (sum, count); Final divides (Figure 7 example)."""

    name = "AVG"
    classification = AggregateClass.ALGEBRAIC
    maintenance = MaintenanceProfile(
        select=AggregateClass.ALGEBRAIC,
        insert=AggregateClass.ALGEBRAIC,
        delete=AggregateClass.ALGEBRAIC)
    vector_kernel = "avg"

    def start(self) -> Handle:
        return (0, 0)  # (sum, count)

    def next(self, handle: Handle, value: Any) -> Handle:
        total, count = handle
        return (total + value, count + 1)

    def end(self, handle: Handle) -> Any:
        total, count = handle
        if count == 0:
            return None
        return total / count

    def merge(self, handle: Handle, other: Handle) -> Handle:
        return (handle[0] + other[0], handle[1] + other[1])

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        total, count = handle
        if count == 0:
            return handle, False
        return (total - value, count - 1), True


class Variance(AggregateFunction):
    """Population variance via Welford's online algorithm.

    Scratchpad ``(count, mean, M2)``; merge uses the parallel-variance
    update, so cube-from-core and parallel computation are exact.
    """

    name = "VARIANCE"
    classification = AggregateClass.ALGEBRAIC
    maintenance = MaintenanceProfile(
        select=AggregateClass.ALGEBRAIC,
        insert=AggregateClass.ALGEBRAIC,
        delete=AggregateClass.ALGEBRAIC)
    # The kernel accumulates (count, sum, sum of squares) and rebuilds
    # the (count, mean, M2) scratchpad; algebraically identical to the
    # Welford form but rounded differently, so cross-path comparisons
    # of VARIANCE/STDEV are approximate, not bit-exact.
    vector_kernel = "var"

    def start(self) -> Handle:
        return (0, 0.0, 0.0)

    def next(self, handle: Handle, value: Any) -> Handle:
        count, mean, m2 = handle
        count += 1
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
        return (count, mean, m2)

    def end(self, handle: Handle) -> Any:
        count, _mean, m2 = handle
        if count == 0:
            return None
        return m2 / count

    def merge(self, handle: Handle, other: Handle) -> Handle:
        count_a, mean_a, m2_a = handle
        count_b, mean_b, m2_b = other
        if count_b == 0:
            return handle
        if count_a == 0:
            return other
        count = count_a + count_b
        delta = mean_b - mean_a
        mean = mean_a + delta * count_b / count
        m2 = m2_a + m2_b + delta * delta * count_a * count_b / count
        return (count, mean, m2)

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        count, mean, m2 = handle
        if count <= 0:
            return handle, False
        if count == 1:
            return self.start(), True
        # reverse Welford step
        new_count = count - 1
        new_mean = (mean * count - value) / new_count
        new_m2 = m2 - (value - new_mean) * (value - mean)
        if new_m2 < 0:  # numeric drift guard
            new_m2 = 0.0
        return (new_count, new_mean, new_m2), True


class StdDev(Variance):
    """Population standard deviation: sqrt of :class:`Variance`."""

    name = "STDEV"

    def end(self, handle: Handle) -> Any:
        variance = super().end(handle)
        if variance is None:
            return None
        return math.sqrt(variance)


class _TopN(AggregateFunction):
    """Base for MaxN/MinN: keep the N best values (fixed M = N tuple).

    The final value is the sorted tuple of the N best (fewer if the
    group was smaller).  Delete is holistic: evicted values are gone.
    """

    classification = AggregateClass.ALGEBRAIC
    maintenance = MaintenanceProfile(
        select=AggregateClass.ALGEBRAIC,
        insert=AggregateClass.ALGEBRAIC,
        delete=AggregateClass.HOLISTIC)
    _keep_largest = True

    def __init__(self, n: int) -> None:
        if n < 1:
            raise AggregateError(f"{type(self).__name__} needs n >= 1")
        self.n = n

    def start(self) -> Handle:
        return ()

    def next(self, handle: Handle, value: Any) -> Handle:
        merged = sorted(handle + (value,), reverse=self._keep_largest)
        return tuple(merged[: self.n])

    def end(self, handle: Handle) -> Any:
        return tuple(handle)

    def merge(self, handle: Handle, other: Handle) -> Handle:
        merged = sorted(handle + tuple(other), reverse=self._keep_largest)
        return tuple(merged[: self.n])

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        if value in handle:
            return handle, False  # a kept value left; runner-up unknown
        return handle, True


class MaxN(_TopN):
    """The N largest values (Section 5 lists MaxN as algebraic)."""

    name = "MAXN"
    _keep_largest = True


class MinN(_TopN):
    """The N smallest values."""

    name = "MINN"
    _keep_largest = False


class CenterOfMass(AggregateFunction):
    """Center of mass of (mass, position) pairs (Section 5's example).

    ``position`` may be a scalar or a sequence (a point in d-space); the
    scratchpad is (total mass, weighted position sum).
    """

    name = "CENTER_OF_MASS"
    classification = AggregateClass.ALGEBRAIC
    maintenance = MaintenanceProfile(
        select=AggregateClass.ALGEBRAIC,
        insert=AggregateClass.ALGEBRAIC,
        delete=AggregateClass.ALGEBRAIC)

    def start(self) -> Handle:
        return (0.0, None)

    @staticmethod
    def _split(value: Any) -> tuple[float, Any]:
        if not isinstance(value, Sequence) or len(value) != 2:
            raise AggregateError(
                "CENTER_OF_MASS aggregates (mass, position) pairs, "
                f"got {value!r}")
        return float(value[0]), value[1]

    @staticmethod
    def _weighted(mass: float, position: Any) -> Any:
        if isinstance(position, Sequence):
            return tuple(mass * p for p in position)
        return mass * position

    @staticmethod
    def _add(a: Any, b: Any) -> Any:
        if a is None:
            return b
        if isinstance(a, tuple):
            return tuple(x + y for x, y in zip(a, b))
        return a + b

    def next(self, handle: Handle, value: Any) -> Handle:
        total_mass, weighted = handle
        mass, position = self._split(value)
        return (total_mass + mass,
                self._add(weighted, self._weighted(mass, position)))

    def end(self, handle: Handle) -> Any:
        total_mass, weighted = handle
        if weighted is None or total_mass == 0:
            return None
        if isinstance(weighted, tuple):
            return tuple(w / total_mass for w in weighted)
        return weighted / total_mass

    def merge(self, handle: Handle, other: Handle) -> Handle:
        if other[1] is None:
            return handle
        if handle[1] is None:
            return other
        return (handle[0] + other[0], self._add(handle[1], other[1]))

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        total_mass, weighted = handle
        if weighted is None:
            return handle, False
        mass, position = self._split(value)
        negated = self._weighted(-mass, position)
        return (total_mass - mass, self._add(weighted, negated)), True
