"""The aggregate-function taxonomy of Sections 5 and 6.

Section 5 classifies aggregates by how super-aggregates can be computed
from sub-aggregates:

- **distributive**: F over the whole equals G over the F's of the parts
  (COUNT, SUM, MIN, MAX; G = F except COUNT, where G = SUM);
- **algebraic**: a fixed-size M-tuple scratchpad summarizes a
  sub-aggregation (AVG keeps (sum, count); also variance, MaxN, ...);
- **holistic**: no constant-size scratchpad exists (MEDIAN, MODE, RANK).

Section 6 refines this per maintenance operation: MAX is distributive
for SELECT and INSERT but *holistic for DELETE* (removing the current
maximum forces a recomputation).  :class:`MaintenanceProfile` captures
the triple, and the maintenance package dispatches on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "AggregateClass",
    "DISTRIBUTIVE",
    "ALGEBRAIC",
    "HOLISTIC",
    "MaintenanceProfile",
]


class AggregateClass(enum.Enum):
    """Section 5 taxonomy."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"

    @property
    def mergeable(self) -> bool:
        """Can super-aggregates be computed from sub-aggregate handles?

        True for distributive and algebraic functions (the handle is a
        constant-size summary); false for holistic ones, which need the
        2^N-algorithm over base data (Section 5).
        """
        return self is not AggregateClass.HOLISTIC

    def __lt__(self, other: "AggregateClass") -> bool:
        order = [AggregateClass.DISTRIBUTIVE, AggregateClass.ALGEBRAIC,
                 AggregateClass.HOLISTIC]
        return order.index(self) < order.index(other)


DISTRIBUTIVE = AggregateClass.DISTRIBUTIVE
ALGEBRAIC = AggregateClass.ALGEBRAIC
HOLISTIC = AggregateClass.HOLISTIC


@dataclass(frozen=True)
class MaintenanceProfile:
    """Per-operation classification (Section 6).

    ``update`` is derived: the paper treats UPDATE as DELETE + INSERT, so
    it inherits the worse of the two classes.
    """

    select: AggregateClass
    insert: AggregateClass
    delete: AggregateClass

    @property
    def update(self) -> AggregateClass:
        return max(self.insert, self.delete,
                   key=[AggregateClass.DISTRIBUTIVE, AggregateClass.ALGEBRAIC,
                        AggregateClass.HOLISTIC].index)

    @property
    def cheap_to_maintain(self) -> bool:
        """Section 6: easy/fairly-inexpensive iff no operation is holistic."""
        return (self.insert is not AggregateClass.HOLISTIC
                and self.delete is not AggregateClass.HOLISTIC)

    @classmethod
    def uniform(cls, klass: AggregateClass) -> "MaintenanceProfile":
        return cls(select=klass, insert=klass, delete=klass)
