"""Approximate quantiles as *algebraic* aggregates (Section 6).

"Our view is that users avoid holistic functions by using
approximation techniques.  Most functions we see in practice are
distributive or algebraic.  For example, medians and quartiles are
approximated using statistical techniques rather than being computed
exactly."

This module makes that remark concrete: :class:`ApproximateQuantile`
keeps a fixed-size equi-width histogram sketch -- an M-tuple, so by the
paper's own definition the function is **algebraic**:

- ``merge`` (Iter_super) adds histograms bucket-wise (rebinned to a
  common range first), so cubes of approximate medians compute *from
  the core* and parallelize -- everything the exact MEDIAN cannot do;
- ``unapply`` decrements a bucket, so DELETE maintenance is cheap --
  approximation buys back exactly what Section 6 says holistic
  functions lose;
- the answer is exact to within one bucket's width: the sketch tracks
  true ``(min, max)`` and the error bound is ``(max - min) / buckets``.

The sketch uses power-of-two range doubling: when a value falls outside
the current range, the range grows (and buckets coarsen by pairwise
summing), so no a-priori value range is needed and merging sketches
with different ranges is deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.aggregates.base import AggregateFunction, Handle, UnapplyResult
from repro.aggregates.classification import (
    AggregateClass,
    MaintenanceProfile,
)
from repro.errors import AggregateError

__all__ = ["ApproximateQuantile", "ApproximateMedian", "QuantileSketch"]


@dataclass
class QuantileSketch:
    """A fixed-size equi-width histogram over an adaptive dyadic range.

    ``lo``/``width`` define the binning: bucket i covers
    ``[lo + i*width, lo + (i+1)*width)``.  ``true_min``/``true_max``
    track exact extremes for the error bound (and exact answers at
    p=0/p=100).
    """

    n_buckets: int
    count: int = 0
    lo: float = 0.0
    width: float = 0.0  # 0 = unset (empty or single-value sketch)
    counts: "list[int] | None" = None
    true_min: float = math.inf
    true_max: float = -math.inf
    single_value: "float | None" = None  # exact until a 2nd value arrives

    def _materialize(self, value: float) -> None:
        """Switch from single-value mode to a real histogram."""
        anchor = self.single_value if self.single_value is not None \
            else value
        span = abs(value - anchor)
        if span == 0:
            span = max(1.0, abs(anchor)) * 1e-9
        self.lo = min(anchor, value)
        # subnormal spans can underflow the division to exactly 0.0;
        # clamp to the smallest positive float so binning stays defined
        self.width = max((span * 2) / self.n_buckets, math.ulp(0.0))
        self.counts = [0] * self.n_buckets
        if self.single_value is not None:
            pending, self.single_value = self.single_value, None
            occurrences = self.count
            self.count = 0
            for _ in range(occurrences):
                self._add_binned(pending)
        self._ensure_covers(value)

    def _bucket_of(self, value: float) -> int:
        offset = (value - self.lo) / self.width
        if offset >= self.n_buckets:  # covers inf from a tiny width
            return self.n_buckets
        return int(offset)

    def _ensure_covers(self, value: float) -> None:
        """Double the range (coarsening buckets) until value fits."""
        while value < self.lo or self._bucket_of(value) >= self.n_buckets:
            half = self.n_buckets // 2
            merged = [0] * self.n_buckets
            for i in range(half):
                merged[i] = self.counts[2 * i] + self.counts[2 * i + 1]
            if value < self.lo:
                # grow downward: shift old (coarsened) data to the top
                for i in range(half - 1, -1, -1):
                    merged[i + half] = merged[i]
                    merged[i] = 0
                self.lo -= self.n_buckets * self.width
            self.counts = merged
            self.width *= 2

    def _add_binned(self, value: float) -> None:
        self._ensure_covers(value)
        self.counts[self._bucket_of(value)] += 1
        self.count += 1

    # -- public sketch operations -------------------------------------------

    def add(self, value: float) -> None:
        self.true_min = min(self.true_min, value)
        self.true_max = max(self.true_max, value)
        if self.width == 0:
            if self.single_value is None or self.single_value == value:
                self.single_value = value
                self.count += 1
                return
            self._materialize(value)
        self._add_binned(value)

    def remove(self, value: float) -> bool:
        """Decrement the bucket holding ``value``; False if impossible.

        Deleting one of the current extremes keeps the sketch usable
        (the bound loosens but never lies, since true_min/max only
        widen the claimed range).
        """
        if self.count == 0:
            return False
        if self.width == 0:
            if self.single_value == value:
                self.count -= 1
                if self.count == 0:
                    self.single_value = None
                    self.true_min = math.inf
                    self.true_max = -math.inf
                return True
            return False
        if value < self.lo:
            return False
        bucket = self._bucket_of(value)
        if bucket >= self.n_buckets or self.counts[bucket] == 0:
            return False
        self.counts[bucket] -= 1
        self.count -= 1
        return True

    def merge(self, other: "QuantileSketch") -> None:
        if other.count == 0:
            return
        self.true_min = min(self.true_min, other.true_min)
        self.true_max = max(self.true_max, other.true_max)
        if other.width == 0:
            # other is single-valued: replay its occurrences
            for _ in range(other.count):
                if self.width == 0:
                    if self.single_value is None \
                            or self.single_value == other.single_value:
                        self.single_value = other.single_value
                        self.count += 1
                        continue
                    self._materialize(other.single_value)
                self._add_binned(other.single_value)
            return
        if self.width == 0:
            pending = (self.single_value, self.count) \
                if self.single_value is not None else None
            self.single_value = None
            self.lo = other.lo
            self.width = other.width
            self.counts = list(other.counts)
            self.count = other.count
            if pending is not None:
                value, occurrences = pending
                for _ in range(occurrences):
                    self._add_binned(value)
            return
        # both histograms: rebin other into self bucket-by-bucket at
        # bucket midpoints (the standard fixed-size histogram merge)
        for i, bucket_count in enumerate(other.counts):
            if bucket_count == 0:
                continue
            midpoint = other.lo + (i + 0.5) * other.width
            self._ensure_covers(midpoint)
            self.counts[self._bucket_of(midpoint)] += bucket_count
            self.count += bucket_count

    def quantile(self, p: float) -> "float | None":
        """The approximate p-th percentile (nearest-rank over buckets,
        linear interpolation inside the bucket)."""
        if self.count == 0:
            return None
        if p <= 0:
            return self.true_min
        if p >= 100:
            return self.true_max
        if self.width == 0:
            return self.single_value
        target = max(1, math.ceil(self.count * p / 100))
        running = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if running + bucket_count >= target:
                fraction = (target - running) / bucket_count
                estimate = self.lo + (i + fraction) * self.width
                return min(max(estimate, self.true_min), self.true_max)
            running += bucket_count
        return self.true_max

    @property
    def error_bound(self) -> float:
        """The half-width guarantee: |estimate - exact| <= one bucket."""
        if self.width == 0:
            return 0.0
        return self.width


class ApproximateQuantile(AggregateFunction):
    """Approximate percentile with a fixed-size sketch -- ALGEBRAIC.

    The scratchpad is an M-tuple (M = n_buckets + a few scalars), so
    super-aggregates merge, parallel partitions combine, and deletes
    decrement -- the Section 6 trade the paper describes users making.
    """

    classification = AggregateClass.ALGEBRAIC
    maintenance = MaintenanceProfile(
        select=AggregateClass.ALGEBRAIC,
        insert=AggregateClass.ALGEBRAIC,
        delete=AggregateClass.ALGEBRAIC)

    @property
    def delta_exact(self) -> bool:
        """The sketch's bucket layout depends on arrival order (lo and
        width rescale as the observed range grows), so delta-folding a
        cached sketch is *not* bit-identical to a cold rebuild.  The
        serve cache therefore invalidates instead of merging."""
        return False

    def __init__(self, p: float = 50, n_buckets: int = 64) -> None:
        if not 0 <= p <= 100:
            raise AggregateError(f"p must be in [0, 100], got {p}")
        if n_buckets < 2 or n_buckets % 2:
            raise AggregateError(
                f"n_buckets must be an even number >= 2, got {n_buckets}")
        self.p = p
        self.n_buckets = n_buckets
        self.name = f"APPROX_PERCENTILE({p})"

    def start(self) -> Handle:
        return QuantileSketch(n_buckets=self.n_buckets)

    def next(self, handle: Handle, value: Any) -> Handle:
        handle.add(float(value))
        return handle

    def end(self, handle: Handle) -> Any:
        return handle.quantile(self.p)

    def merge(self, handle: Handle, other: Handle) -> Handle:
        handle.merge(other)
        return handle

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        return handle, handle.remove(float(value))


class ApproximateMedian(ApproximateQuantile):
    """The paper's example: the approximated median."""

    name = "APPROX_MEDIAN"

    def __init__(self, n_buckets: int = 64) -> None:
        super().__init__(p=50, n_buckets=n_buckets)
        self.name = "APPROX_MEDIAN"
