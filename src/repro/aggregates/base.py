"""The aggregate-function contract: Figure 7's scratchpad model.

The paper (Sections 1.2 and 5) standardizes aggregate functions as three
callbacks -- in Illustra's terms ``Init``, ``Iter``, ``Final``; in Figure
7's terms ``start()``, ``next()``, ``end()`` -- plus the new
``Iter_super`` call (here :meth:`AggregateFunction.merge`) that folds a
sub-aggregate scratchpad into a super-aggregate scratchpad.  ``merge`` is
what makes computing the cube *from the core GROUP BY* possible for
distributive and algebraic functions, and what parallel partitions use
to combine their results.

For cube **maintenance** (Section 6) we add :meth:`unapply`: the inverse
of ``next`` where one exists.  COUNT/SUM/AVG can subtract a deleted
value; MAX cannot when the deleted value *is* the maximum -- that is
exactly the paper's "MAX is distributive for SELECT and INSERT but
holistic for DELETE" observation, surfaced as ``unapply`` returning
``supported=False``.

Handles are treated as immutable from the caller's perspective: every
mutating call returns the handle to use from then on.  This keeps
trivial scratchpads (a running sum is just a number) allocation-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.errors import NotMergeableError
from repro.aggregates.classification import AggregateClass, MaintenanceProfile

__all__ = ["AggregateFunction", "Handle", "UnapplyResult"]

Handle = Any

UnapplyResult = tuple[Handle, bool]


class AggregateFunction(ABC):
    """One aggregate function (stateless; all state lives in handles).

    Class attributes:

    ``name``
        Registry / SQL name, upper-case.
    ``classification``
        Section 5 class (distributive / algebraic / holistic).
    ``maintenance``
        Section 6 per-operation profile.
    ``skips_non_values``
        If True (the default), NULL and ALL inputs are not fed to
        ``next`` -- the paper's "ALL, like NULL, does not participate in
        any aggregate except COUNT()" rule.  Only COUNT(*) sets it False.
    ``cost``
        Relative per-call cost the optimizer may use to order expensive
        functions last (the paper mentions systems that let aggregates
        declare a cost).
    ``vector_kernel``
        Name of an optional fused grouped-aggregation kernel in
        :mod:`repro.compute.columnar.kernels`, or ``None`` (the
        default).  Declaring a kernel lets the columnar backend compute
        this function with vectorized scatter-aggregation instead of
        per-row ``next`` dispatch; functions without one (holistic
        scratchpads, UDAFs) transparently fall back to the row path.
        The kernel must produce, per group, a handle ``end``/``merge``
        accept -- the two paths share Final/Iter_super unchanged.
    """

    name: str = ""
    classification: AggregateClass = AggregateClass.DISTRIBUTIVE
    maintenance: MaintenanceProfile = MaintenanceProfile.uniform(
        AggregateClass.DISTRIBUTIVE)
    skips_non_values: bool = True
    cost: float = 1.0
    vector_kernel: str | None = None

    # -- Figure 7 lifecycle ----------------------------------------------

    @abstractmethod
    def start(self) -> Handle:
        """``Init``: allocate and initialize a scratchpad."""

    @abstractmethod
    def next(self, handle: Handle, value: Any) -> Handle:
        """``Iter``: fold one value into the scratchpad; returns it."""

    @abstractmethod
    def end(self, handle: Handle) -> Any:
        """``Final``: compute the aggregate value from the scratchpad.

        Must be non-destructive: cube algorithms finalize a cell and keep
        the handle for later merging into super-aggregates.
        """

    # -- super-aggregation (Iter_super) -----------------------------------

    def merge(self, handle: Handle, other: Handle) -> Handle:
        """``Iter_super``: fold sub-aggregate ``other`` into ``handle``.

        Default raises for holistic functions run in strict mode; see
        :class:`repro.aggregates.holistic.HolisticAggregate` for the
        carrying-mode alternative.
        """
        raise NotMergeableError(
            f"{self.name or type(self).__name__} cannot merge scratchpads; "
            f"holistic functions need the 2^N-algorithm (Section 5)")

    @property
    def mergeable(self) -> bool:
        """True if :meth:`merge` is usable.

        Distributive and algebraic functions are always mergeable; a
        holistic function is mergeable only in carrying mode (see
        :class:`repro.aggregates.holistic.HolisticAggregate`), where the
        "scratchpad" is the whole multiset -- usable, but with unbounded
        size, which is the paper's very definition of holistic.
        """
        return self.classification.mergeable

    # -- maintenance (Section 6) -------------------------------------------

    @property
    def delta_exact(self) -> bool:
        """True when folding rows in *any* order (including through
        intermediate ``merge``-built scratchpads) finalizes to the
        identical value -- the property streamed delta maintenance
        needs: a cached cuboid that absorbs a delta must end up
        bit-identical to a cold recompute over base+delta.

        Exact functions (SUM, COUNT, MIN, carrying MEDIAN, ...) are
        order-insensitive by construction.  Sketch-backed approximate
        functions are not -- a :class:`QuantileSketch`'s bucket layout
        depends on the order values arrived -- so they override this to
        False and the serve cache falls back to invalidation for
        entries that carry them.
        """
        return True

    def insert_dominated(self, handle: Handle, value: Any) -> bool:
        """Section 6's insert short-circuit hook.

        Return True when folding ``value`` into ``handle`` cannot change
        it *nor any coarser cell's handle* (whose underlying set is a
        superset).  For MAX this is ``value <= current max``: "if the
        new value loses one competition, then it will lose in all lower
        dimensions."  Default False -- most functions (SUM, COUNT)
        change on every insert.
        """
        return False

    def unapply(self, handle: Handle, value: Any) -> UnapplyResult:
        """Inverse of ``next`` for DELETE propagation.

        Returns ``(new_handle, supported)``.  ``supported=False`` means
        the scratchpad cannot absorb this deletion (the function is
        delete-holistic at this value) and the cell must be recomputed
        from base data.
        """
        return handle, False

    # -- conveniences -------------------------------------------------------

    def accepts(self, value: Any) -> bool:
        """Should this value be fed to ``next``? (NULL/ALL rule)."""
        from repro.types import is_null_or_all
        if not self.skips_non_values:
            return True
        return not is_null_or_all(value)

    def aggregate(self, values) -> Any:
        """One-shot helper: run the full lifecycle over an iterable."""
        handle = self.start()
        for value in values:
            if self.accepts(value):
                handle = self.next(handle, value)
        return self.end(handle)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
