"""A lightweight tracing API for cube computations.

The paper argues about cube algorithms entirely in observable cost
terms -- scans, ``Iter()`` calls, ``Iter_super`` merges, sort passes --
and :class:`~repro.compute.stats.ComputeStats` counts them.  Spans add
the missing half: *where the wall-clock time went*.  A span is a named,
timed region with attributes, optional point events, an optional
attached counter snapshot, and child spans, forming a tree per query:

    sql.query
      cube.compute (algorithm=from-core)
        cube.node (dims=Model,Year,Color, role=core)
        cube.node (dims=Model,Year, parent=Model,Year,Color)
        ...

Tracing is **off by default** and near-zero-overhead while off:
:func:`span` returns a shared no-op object whose context-manager and
mutator methods do nothing, so instrumented code pays one module-global
load and a ``None`` check per span site.  Enable with
:func:`enable_tracing` (process-wide) or the :func:`tracing` context
manager (scoped, used by ``EXPLAIN ANALYZE``).

Thread model: each :class:`Tracer` keeps a per-thread stack of open
spans, so nesting is automatic within a thread.  Code that fans work
out to a pool (the parallel algorithm) captures :func:`current_span`
in the coordinating thread and passes it as ``parent=`` so the worker
spans attach under the right node.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "current_tracer",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "new_span_id",
    "new_trace_id",
    "render_span_rows",
    "span",
    "tracing",
    "tracing_enabled",
    "use_tracer",
    "with_trace_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (links a client call, the server's
    query record, and the span tree it produced)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return uuid.uuid4().hex[:8]


#: Per-thread trace-id override for *root* spans: a root opened while
#: an override is installed adopts it instead of minting its own, so
#: one id can link a wire request, its query-log record, and its spans.
_trace_context = threading.local()


def current_trace_id() -> str | None:
    """The trace id installed by :func:`with_trace_id`, if any."""
    return getattr(_trace_context, "trace_id", None)


@contextmanager
def with_trace_id(trace_id: str) -> Iterator[str]:
    """Scope a trace id onto this thread: root spans opened inside the
    block (and the query log's records) adopt ``trace_id`` instead of
    generating one.  The server installs the client-supplied id here."""
    previous = getattr(_trace_context, "trace_id", None)
    _trace_context.trace_id = trace_id
    try:
        yield trace_id
    finally:
        _trace_context.trace_id = previous


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def attach_stats(self, stats: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One named, timed region of work.

    Use as a context manager; duration is measured with
    ``time.perf_counter`` and stored in :attr:`duration_ms` at exit.
    """

    __slots__ = ("name", "attributes", "children", "events", "stats",
                 "duration_ms", "error", "span_id", "trace_id",
                 "_started", "_tracer", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 parent: Optional["Span"],
                 attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.events: list[dict[str, Any]] = []
        self.stats: dict[str, Any] | None = None
        self.duration_ms: float | None = None
        self.error: str | None = None
        self.span_id = new_span_id()
        # children share the root's trace id; roots adopt the
        # thread-scoped override (with_trace_id) or mint their own
        if parent is not None:
            self.trace_id = parent.trace_id
        else:
            self.trace_id = current_trace_id() or new_trace_id()
        self._started: float | None = None
        self._tracer = tracer
        self._parent = parent

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._attach(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._started is not None
        self.duration_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._detach(self)
        return False

    # -- mutators ---------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Add/overwrite attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event (e.g. a partition spill)."""
        at_ms = 0.0
        if self._started is not None:
            at_ms = (time.perf_counter() - self._started) * 1000.0
        self.events.append({"name": name, "at_ms": at_ms, **attributes})

    def attach_stats(self, stats: Any) -> None:
        """Snapshot a counter object (duck-typed ``as_dict()``)."""
        if hasattr(stats, "as_dict"):
            self.stats = stats.as_dict()
        elif isinstance(stats, dict):
            self.stats = dict(stats)
        else:
            self.stats = {"repr": repr(stats)}

    # -- introspection ----------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name,
                               "span_id": self.span_id,
                               "trace_id": self.trace_id,
                               "duration_ms": self.duration_ms}
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.stats is not None:
            out["stats"] = dict(self.stats)
        if self.events:
            out["events"] = list(self.events)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        timing = (f"{self.duration_ms:.3f}ms"
                  if self.duration_ms is not None else "open")
        return f"<Span {self.name} {timing} children={len(self.children)}>"


class Tracer:
    """Collects finished root spans; hands out child spans per thread."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, *, parent: Span | None = None,
             **attributes: Any) -> Span:
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        return Span(self, name, parent, attributes)

    def _attach(self, span: Span) -> None:
        parent = span._parent
        with self._lock:
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        self._stack().append(span)

    def _detach(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        with self._lock:
            return list(self.roots)

    def clear(self) -> None:
        with self._lock:
            self.roots = []


# -- module-level switchboard --------------------------------------------------

_active: Tracer | None = None


def span(name: str, *, parent: Span | None = None,
         **attributes: Any) -> "Span | _NoopSpan":
    """A span under the active tracer, or the shared no-op when
    tracing is disabled (the default)."""
    tracer = _active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, parent=parent, **attributes)


def current_span() -> Span | None:
    """The innermost open span on this thread, if tracing is active."""
    tracer = _active
    if tracer is None:
        return None
    return tracer.current()


def current_tracer() -> Tracer | None:
    return _active


def tracing_enabled() -> bool:
    return _active is not None


def enable_tracing() -> Tracer:
    """Install a fresh process-wide tracer and return it."""
    global _active
    _active = Tracer()
    return _active


def disable_tracing() -> None:
    global _active
    _active = None


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Temporarily install ``tracer`` (or None) as the active tracer."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


@contextmanager
def tracing() -> Iterator[Tracer]:
    """Scoped tracing: a fresh tracer active for the block only."""
    with use_tracer(Tracer()) as tracer:
        assert tracer is not None
        yield tracer


# -- rendering -----------------------------------------------------------------

_STAT_ORDER = ("base_scans", "iter_calls", "merge_calls", "sort_operations",
               "rows_sorted", "cells_produced", "max_resident_cells",
               "partitions", "spills", "passes")
_STAT_SHORT = {"base_scans": "scans", "iter_calls": "iter",
               "merge_calls": "merge", "sort_operations": "sorts",
               "rows_sorted": "rows_sorted", "cells_produced": "cells",
               "max_resident_cells": "resident", "partitions": "parts",
               "spills": "spills", "passes": "passes"}


def _format_detail(span: Span) -> str:
    parts: list[str] = []
    if span.duration_ms is not None:
        parts.append(f"{span.duration_ms:.3f} ms")
    for key, value in span.attributes.items():
        parts.append(f"{key}={value}")
    if span.stats:
        counters = " ".join(
            f"{_STAT_SHORT[k]}={span.stats[k]}" for k in _STAT_ORDER
            if span.stats.get(k))
        if counters:
            parts.append(f"[{counters}]")
    if span.error is not None:
        parts.append(f"error={span.error}")
    parts.append(f"span={span.span_id}")
    return "  ".join(parts)


def render_span_rows(root: Span, *, indent: str = "  ",
                     depth: int = 0) -> list[tuple[str, str]]:
    """The span tree as (step, detail) rows for EXPLAIN ANALYZE."""
    rows = [(indent * depth + root.name, _format_detail(root))]
    for event in root.events:
        extras = " ".join(f"{k}={v}" for k, v in event.items()
                          if k not in ("name", "at_ms"))
        rows.append((indent * (depth + 1) + f"@ {event['name']}",
                     f"{event['at_ms']:.3f} ms  {extras}".rstrip()))
    for child in root.children:
        rows.extend(render_span_rows(child, indent=indent, depth=depth + 1))
    return rows
