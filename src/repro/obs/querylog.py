"""The structured query log: one record per top-level execution.

Spans say where one query's time went, metrics say what the process
has done so far -- neither records *queries*.  This module does: every
top-level execution (``SQLSession.execute``, a direct ``cube()`` /
``rollup()`` call, every :class:`~repro.serve.server.QueryServer`
request) appends exactly one :class:`QueryRecord` to the process-wide
:data:`QUERY_LOG`, tying the statement to its normalized cuboid
signature, the algorithm chosen, the cache outcome, the scan counters,
the admission wait, the end-to-end latency, the outcome, and a trace
id shared with the span tree (and, over the wire, with the client).

That per-signature view of the workload is exactly what Gray et al.'s
materialization arguments (and the ROADMAP's workload-adaptive view
advisor) need as input: :class:`WorkloadHistory` rolls the records up
by signature -- count, hit rate, p50/p95/p99 latency from histogram
buckets, total rows scanned.

Design notes:

- **one record per query**: :meth:`QueryLog.track` keeps a per-thread
  pending-record stack; a nested ``track`` (a session executing inside
  a server request, a ``cube()`` call inside a session) enriches the
  outermost record instead of appending a second one;
- **near-free when off**: with ``QUERY_LOG.enabled = False``,
  ``track`` yields a shared no-op and :func:`annotate` / :func:`add`
  return after one thread-local read -- the disabled path is
  benchmarked (<3 % on the Figure 2 workload, see
  ``benchmarks/bench_querylog_overhead.py``);
- **bounded**: the log is a ring of ``capacity`` records; the history
  keeps the ``history_capacity`` most recently used signatures.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import (
    ObservabilityError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerOverloadedError,
)
from repro.obs import trace
from repro.obs.metrics import Histogram

__all__ = [
    "LATENCY_BUCKETS_MS",
    "OUTCOMES",
    "QUERY_LOG",
    "QueryLog",
    "QueryRecord",
    "WorkloadHistory",
    "add",
    "annotate",
    "cuboid_signature",
    "format_records",
    "format_workload",
    "track",
]

#: Latency histogram buckets for the per-signature history, in
#: milliseconds (the query log speaks ms end to end).
LATENCY_BUCKETS_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
                      10000.0)

#: The closed outcome taxonomy, mapped from the error hierarchy.
OUTCOMES = ("ok", "error", "timeout", "cancelled", "shed")


def cuboid_signature(dim_sigs: Sequence, agg_sigs: Sequence) -> str:
    """The normalized, order-insensitive cuboid signature.

    Reuses the serve cache's identity ingredients -- structural
    dimension signatures plus ``AggregateCall.key()``-style aggregate
    signatures -- sorted so ``GROUP BY a, b`` and ``GROUP BY b, a``
    aggregate into the same workload-history entry.
    """
    dims = " + ".join(sorted(str(sig) for sig in dim_sigs)) or "()"
    aggs = " + ".join(sorted(_agg_label(sig) for sig in agg_sigs)) or "-"
    return f"{dims} :: {aggs}"


def _agg_label(sig: Any) -> str:
    if isinstance(sig, tuple):
        # (FUNC, argument, distinct, extra) -- AggregateCall.key()
        name = str(sig[0]) if sig else "?"
        argument = str(sig[1]) if len(sig) > 1 else "*"
        distinct = "DISTINCT " if len(sig) > 2 and sig[2] else ""
        return f"{name}({distinct}{argument})"
    return str(sig)


@dataclass
class QueryRecord:
    """One logged execution (all latencies in milliseconds)."""

    trace_id: str
    kind: str
    outcome: str
    duration_ms: float
    statement: Optional[str] = None
    signature: Optional[str] = None
    algorithm: Optional[str] = None
    degraded_from: Optional[str] = None
    cache: Optional[str] = None
    #: the answering cuboid was restored from a durable checkpoint
    #: (warm restart) rather than computed in this process
    recovered: Optional[bool] = None
    #: an ingest flush (or the query that forced one) folded the batch
    #: into at least one cached cuboid instead of invalidating it
    delta_merged: Optional[bool] = None
    rows_scanned: int = 0
    cells: int = 0
    rows: int = 0
    admission_wait_ms: float = 0.0
    slow: bool = False
    error: Optional[str] = None
    unix_time: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; ``None`` fields are dropped."""
        out: dict[str, Any] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryRecord":
        """Tolerant inverse of :meth:`to_dict` (unknown keys ignored,
        missing keys defaulted) -- the CLI reads foreign JSONL files."""
        if not isinstance(payload, dict):
            raise ObservabilityError(
                f"query record must be an object, got "
                f"{type(payload).__name__}")
        known = {name: payload[name] for name in cls.__dataclass_fields__
                 if name in payload}
        known.setdefault("trace_id", "-")
        known.setdefault("kind", "unknown")
        known.setdefault("outcome", "ok")
        known.setdefault("duration_ms", 0.0)
        return cls(**known)


#: Numeric fields :func:`add` may accumulate into.
_ADDITIVE = ("rows_scanned", "cells", "rows")


class _NoopPending:
    """Shared do-nothing pending record (log disabled)."""

    __slots__ = ()

    def fill(self, **fields: Any) -> None:
        pass

    def note(self, **fields: Any) -> None:
        pass

    def accumulate(self, **fields: Any) -> None:
        pass


_NOOP_PENDING = _NoopPending()


class _Pending:
    """The mutable record-under-construction for one tracked scope."""

    __slots__ = ("fields",)

    def __init__(self, kind: Optional[str], statement: Optional[str],
                 trace_id: str) -> None:
        self.fields: dict[str, Any] = {
            "kind": kind, "statement": statement, "trace_id": trace_id}

    def fill(self, **fields: Any) -> None:
        """Set fields not yet known (nested scopes refine the outer
        record without clobbering what it already knows)."""
        for key, value in fields.items():
            if value is not None and self.fields.get(key) is None:
                self.fields[key] = value

    def note(self, **fields: Any) -> None:
        """Set/overwrite fields (``None`` values are ignored)."""
        for key, value in fields.items():
            if value is not None:
                self.fields[key] = value

    def accumulate(self, **fields: Any) -> None:
        """Add numeric deltas (a query may run several computations --
        scalar subqueries, union branches -- whose scans all count)."""
        for key, value in fields.items():
            if key not in _ADDITIVE:
                raise ObservabilityError(
                    f"cannot accumulate query-log field {key!r}; "
                    f"additive fields are {_ADDITIVE}")
            self.fields[key] = self.fields.get(key, 0) + value


def _classify(exc: Optional[BaseException]) -> tuple[str, Optional[str]]:
    """Map an exception escaping a tracked scope onto the outcome
    taxonomy (timeout before cancelled: QueryTimeoutError subclasses
    QueryCancelledError)."""
    if exc is None:
        return "ok", None
    if isinstance(exc, ServerOverloadedError):
        return "shed", str(exc)
    if isinstance(exc, QueryTimeoutError):
        return "timeout", str(exc)
    if isinstance(exc, QueryCancelledError):
        return "cancelled", str(exc)
    return "error", f"{type(exc).__name__}: {exc}"


@dataclass
class _HistoryEntry:
    """Rolling per-signature aggregation."""

    signature: str
    count: int = 0
    hits: int = 0
    misses: int = 0
    errors: int = 0
    slow: int = 0
    rows_scanned: int = 0
    latency: Histogram = field(default_factory=lambda: Histogram(
        "workload_latency_ms", "", {}, buckets=LATENCY_BUCKETS_MS))

    def observe(self, record: QueryRecord) -> None:
        self.count += 1
        if record.cache == "hit":
            self.hits += 1
        elif record.cache == "miss":
            self.misses += 1
        if record.outcome != "ok":
            self.errors += 1
        if record.slow:
            self.slow += 1
        self.rows_scanned += record.rows_scanned
        self.latency.observe(record.duration_ms)

    def snapshot(self) -> dict[str, Any]:
        probes = self.hits + self.misses
        return {
            "signature": self.signature,
            "count": self.count,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "slow": self.slow,
            "hit_rate": round(self.hits / probes, 4) if probes else None,
            "rows_scanned": self.rows_scanned,
            "p50_ms": _round3(self.latency.quantile(0.50)),
            "p95_ms": _round3(self.latency.quantile(0.95)),
            "p99_ms": _round3(self.latency.quantile(0.99)),
        }


def _round3(value: Optional[float]) -> Optional[float]:
    return round(value, 3) if value is not None else None


class WorkloadHistory:
    """Per-signature rolling aggregation over logged queries.

    Bounded: at most ``capacity`` signatures are tracked; when a new
    one arrives over capacity, the least recently *used* signature is
    dropped (an LRU over signatures, not records).  Not itself locked
    -- :class:`QueryLog` updates it under its own lock.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"history capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, _HistoryEntry]" = OrderedDict()

    def observe(self, record: QueryRecord) -> None:
        signature = record.signature
        if not signature:
            return
        entry = self._entries.get(signature)
        if entry is None:
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            entry = _HistoryEntry(signature)
            self._entries[signature] = entry
        else:
            self._entries.move_to_end(signature)
        entry.observe(record)

    def feed(self, records: Iterable[QueryRecord]) -> "WorkloadHistory":
        """Rebuild from records (the CLI's offline JSONL mode)."""
        for record in records:
            self.observe(record)
        return self

    def snapshot(self) -> list[dict[str, Any]]:
        """Every tracked signature's aggregation, busiest first."""
        out = [entry.snapshot() for entry in self._entries.values()]
        out.sort(key=lambda e: (-e["count"], e["signature"]))
        return out

    def __len__(self) -> int:
        return len(self._entries)


class QueryLog:
    """Bounded, thread-safe, process-wide log of executed queries."""

    def __init__(self, capacity: int = 512, *,
                 history_capacity: int = 128,
                 enabled: bool = True) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"query log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.total = 0
        self.history = WorkloadHistory(capacity=history_capacity)
        self._records: "deque[QueryRecord]" = deque(maxlen=capacity)
        self._outcomes: dict[str, int] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- tracking ----------------------------------------------------------

    def _stack(self) -> list[_Pending]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def track(self, kind: Optional[str] = None, *,
              statement: Optional[str] = None,
              trace_id: Optional[str] = None
              ) -> Iterator["_Pending | _NoopPending"]:
        """Log the execution inside the ``with`` block as one record.

        Nested ``track`` scopes on the same thread do not append: they
        fill in fields the outermost record does not know yet (a server
        request learns its statement kind from the session executing
        inside it).  The outermost scope measures the duration,
        classifies the outcome from any escaping exception
        (re-raised untouched), and installs the trace id for root
        spans via :func:`repro.obs.trace.with_trace_id`.
        """
        if not self.enabled:
            yield _NOOP_PENDING
            return
        stack = self._stack()
        if stack:
            pending = stack[-1]
            pending.fill(kind=kind, statement=statement)
            yield pending
            return
        tid = trace_id or trace.current_trace_id() or trace.new_trace_id()
        pending = _Pending(kind, statement, tid)
        stack.append(pending)
        started = time.perf_counter()
        try:
            with trace.with_trace_id(tid):
                yield pending
        except BaseException as exc:
            self._finish(pending, started, exc)
            raise
        else:
            self._finish(pending, started, None)
        finally:
            stack.pop()

    def _finish(self, pending: _Pending, started: float,
                exc: Optional[BaseException]) -> None:
        duration_ms = (time.perf_counter() - started) * 1000.0
        outcome, error = _classify(exc)
        fields = pending.fields
        record = QueryRecord(
            trace_id=fields["trace_id"],
            kind=fields.get("kind") or "unknown",
            outcome=outcome,
            duration_ms=round(duration_ms, 3),
            statement=_clip(fields.get("statement")),
            signature=fields.get("signature"),
            algorithm=fields.get("algorithm"),
            degraded_from=fields.get("degraded_from"),
            cache=fields.get("cache"),
            recovered=fields.get("recovered"),
            delta_merged=fields.get("delta_merged"),
            rows_scanned=fields.get("rows_scanned", 0),
            cells=fields.get("cells", 0),
            rows=fields.get("rows", 0),
            admission_wait_ms=fields.get("admission_wait_ms", 0.0),
            slow=bool(fields.get("slow", False)),
            error=error if error is not None else fields.get("error"),
            unix_time=time.time(),
        )
        with self._lock:
            self.total += 1
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            self._records.append(record)
            self.history.observe(record)

    def annotate(self, **fields: Any) -> None:
        """Set fields on this thread's active record; no-op when no
        scope is open or the log is disabled (one thread-local read)."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        stack[-1].note(**fields)

    def add(self, **fields: Any) -> None:
        """Accumulate additive counters (``rows_scanned``, ``cells``,
        ``rows``) onto this thread's active record."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        stack[-1].accumulate(**fields)

    def active(self) -> bool:
        """True when this thread has an open tracked scope."""
        return bool(getattr(self._local, "stack", None))

    # -- reading -----------------------------------------------------------

    def snapshot(self, n: Optional[int] = None, *,
                 kind: Optional[str] = None,
                 outcome: Optional[str] = None,
                 signature: Optional[str] = None,
                 slow: Optional[bool] = None,
                 min_duration_ms: Optional[float] = None
                 ) -> list[QueryRecord]:
        """The most recent matching records, oldest first.  ``n``
        bounds the result *after* filtering (the last ``n`` matches)."""
        with self._lock:
            records = list(self._records)
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if outcome is not None:
            records = [r for r in records if r.outcome == outcome]
        if signature is not None:
            records = [r for r in records if r.signature == signature]
        if slow is not None:
            records = [r for r in records if r.slow is slow]
        if min_duration_ms is not None:
            records = [r for r in records
                       if r.duration_ms >= min_duration_ms]
        if n is not None and n >= 0:
            records = records[-n:] if n else []
        return records

    def summary(self) -> dict[str, Any]:
        """Totals for the ``stats`` op and the CLI header."""
        with self._lock:
            records = list(self._records)
            total = self.total
            outcomes = dict(self._outcomes)
        durations = sorted(r.duration_ms for r in records)
        return {
            "enabled": self.enabled,
            "total": total,
            "retained": len(records),
            "dropped": total - len(records),
            "outcomes": outcomes,
            "slow": sum(1 for r in records if r.slow),
            "signatures": len(self.history),
            "max_ms": durations[-1] if durations else None,
        }

    def to_json_lines(self, n: Optional[int] = None) -> str:
        return "\n".join(json.dumps(record.to_dict(), sort_keys=True,
                                    default=str)
                         for record in self.snapshot(n))

    def write_json_lines(self, path: str,
                         n: Optional[int] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            text = self.to_json_lines(n)
            handle.write(text + "\n" if text else "")

    def clear(self) -> None:
        """Drop records, history, and totals (test isolation)."""
        with self._lock:
            self._records.clear()
            self._outcomes = {}
            self.total = 0
            self.history = WorkloadHistory(
                capacity=self.history.capacity)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def _clip(statement: Optional[str], limit: int = 200) -> Optional[str]:
    if statement is None:
        return None
    statement = " ".join(statement.split())
    if len(statement) > limit:
        return statement[: limit - 3] + "..."
    return statement


#: The process-wide query log all built-in entry points append to.
QUERY_LOG = QueryLog()


def track(kind: Optional[str] = None, *, statement: Optional[str] = None,
          trace_id: Optional[str] = None):
    """Module-level shorthand for :meth:`QueryLog.track` on
    :data:`QUERY_LOG`."""
    return QUERY_LOG.track(kind, statement=statement, trace_id=trace_id)


def annotate(**fields: Any) -> None:
    """Annotate this thread's active record on :data:`QUERY_LOG`."""
    QUERY_LOG.annotate(**fields)


def add(**fields: Any) -> None:
    """Accumulate counters onto this thread's active record."""
    QUERY_LOG.add(**fields)


# -- rendering (shared by the shell's \log/\top and python -m repro.obs) ------


def format_records(records: Sequence[QueryRecord]) -> list[str]:
    """Fixed-width lines, one per record (oldest first)."""
    lines = []
    for record in records:
        cache = record.cache or "-"
        flags = "S" if record.slow else " "
        label = record.signature or record.statement or "-"
        lines.append(
            f"{record.trace_id:<16} {record.kind:<9} "
            f"{record.outcome:<9} {cache:<7} "
            f"{record.duration_ms:>9.2f}ms {flags} {label}")
    return lines


def format_workload(entries: Sequence[dict]) -> list[str]:
    """Fixed-width lines for :meth:`WorkloadHistory.snapshot` rows."""
    lines = []
    for entry in entries:
        hit_rate = entry.get("hit_rate")
        rate = f"{hit_rate * 100:5.1f}%" if hit_rate is not None else "    -"
        p50 = entry.get("p50_ms")
        p95 = entry.get("p95_ms")
        p99 = entry.get("p99_ms")
        lines.append(
            f"n={entry['count']:<5} hit={rate} "
            f"p50={_fmt_ms(p50)} p95={_fmt_ms(p95)} p99={_fmt_ms(p99)} "
            f"scanned={entry.get('rows_scanned', 0):<8} "
            f"{entry['signature']}")
    return lines


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:8.2f}ms" if value is not None else "       -  "
