"""repro.obs: observability for the data-cube engine.

Three pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.trace` -- nested, timed spans with attributes and
  attached :class:`~repro.compute.stats.ComputeStats` snapshots.  Off
  by default (a shared no-op span); enable with :func:`enable_tracing`
  or the scoped :func:`tracing` context manager.  ``EXPLAIN ANALYZE``
  is built on this.
- :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges, and histograms (:data:`REGISTRY`), updated by every engine
  entry point via :mod:`repro.obs.instrument`.
- :mod:`repro.obs.export` -- JSON-lines, Prometheus-text, and
  collapsed-stack (flamegraph) exporters.
- :mod:`repro.obs.querylog` -- the structured query log
  (:data:`QUERY_LOG`): one :class:`QueryRecord` per top-level
  execution, plus the per-signature :class:`WorkloadHistory`.
  ``python -m repro.obs`` tails and summarizes it.

Quick look::

    from repro.obs import tracing, REGISTRY

    with tracing() as tracer:
        cube(table, ["Model", "Year"], [agg("SUM", "Units", "Units")])
    for root in tracer.finished():
        print(root)                       # <Span cube.compute 1.8ms ...>

    print(REGISTRY.to_prometheus())
"""

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    current_tracer,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    new_span_id,
    new_trace_id,
    render_span_rows,
    span,
    tracing,
    tracing_enabled,
    use_tracer,
    with_trace_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    format_delta,
)
from repro.obs.export import (
    metrics_to_json_lines,
    metrics_to_prometheus,
    spans_to_collapsed,
    spans_to_json_lines,
    write_metrics_json_lines,
    write_metrics_prometheus,
    write_spans_collapsed,
    write_spans_json_lines,
)
from repro.obs.instrument import (
    record_cube_compute,
    record_groupby,
    record_maintenance,
    record_materialized_lookup,
    record_query,
    record_slow_query,
)
from repro.obs.querylog import (
    QUERY_LOG,
    QueryLog,
    QueryRecord,
    WorkloadHistory,
    cuboid_signature,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "QUERY_LOG",
    "QueryLog",
    "QueryRecord",
    "REGISTRY",
    "Span",
    "Tracer",
    "WorkloadHistory",
    "cuboid_signature",
    "current_span",
    "current_tracer",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "format_delta",
    "metrics_to_json_lines",
    "metrics_to_prometheus",
    "new_span_id",
    "new_trace_id",
    "record_cube_compute",
    "record_groupby",
    "record_maintenance",
    "record_materialized_lookup",
    "record_query",
    "record_slow_query",
    "render_span_rows",
    "span",
    "spans_to_collapsed",
    "spans_to_json_lines",
    "tracing",
    "tracing_enabled",
    "use_tracer",
    "with_trace_id",
    "write_metrics_json_lines",
    "write_metrics_prometheus",
    "write_spans_collapsed",
    "write_spans_json_lines",
]
