"""repro.obs: observability for the data-cube engine.

Three pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.trace` -- nested, timed spans with attributes and
  attached :class:`~repro.compute.stats.ComputeStats` snapshots.  Off
  by default (a shared no-op span); enable with :func:`enable_tracing`
  or the scoped :func:`tracing` context manager.  ``EXPLAIN ANALYZE``
  is built on this.
- :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges, and histograms (:data:`REGISTRY`), updated by every engine
  entry point via :mod:`repro.obs.instrument`.
- :mod:`repro.obs.export` -- JSON-lines and Prometheus-text exporters
  for both.

Quick look::

    from repro.obs import tracing, REGISTRY

    with tracing() as tracer:
        cube(table, ["Model", "Year"], [agg("SUM", "Units", "Units")])
    for root in tracer.finished():
        print(root)                       # <Span cube.compute 1.8ms ...>

    print(REGISTRY.to_prometheus())
"""

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    current_tracer,
    disable_tracing,
    enable_tracing,
    render_span_rows,
    span,
    tracing,
    tracing_enabled,
    use_tracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    format_delta,
)
from repro.obs.export import (
    metrics_to_json_lines,
    metrics_to_prometheus,
    spans_to_json_lines,
    write_metrics_json_lines,
    write_metrics_prometheus,
    write_spans_json_lines,
)
from repro.obs.instrument import (
    record_cube_compute,
    record_groupby,
    record_maintenance,
    record_materialized_lookup,
    record_query,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTRY",
    "Span",
    "Tracer",
    "current_span",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "format_delta",
    "metrics_to_json_lines",
    "metrics_to_prometheus",
    "record_cube_compute",
    "record_groupby",
    "record_maintenance",
    "record_materialized_lookup",
    "record_query",
    "render_span_rows",
    "span",
    "spans_to_json_lines",
    "tracing",
    "tracing_enabled",
    "use_tracer",
    "write_metrics_json_lines",
    "write_metrics_prometheus",
    "write_spans_json_lines",
]
