"""The built-in metric names and their update helpers.

Every instrumentation site in the engine goes through one of these
functions, so the metric catalogue lives in exactly one place (and is
documented once, in ``docs/OBSERVABILITY.md``):

=============================================  =========  =============================
metric                                         kind       labels
=============================================  =========  =============================
``repro_sql_queries_total``                    counter    ``kind`` (statement class)
``repro_sql_query_seconds``                    histogram  --
``repro_slow_queries_total``                   counter    ``kind``
``repro_cube_computations_total``              counter    ``algorithm``
``repro_cube_compute_seconds``                 histogram  ``algorithm``
``repro_cube_rows_scanned_total``              counter    --
``repro_cube_cells_produced_total``            counter    --
``repro_cube_iter_calls_total``                counter    --
``repro_cube_merge_calls_total``               counter    --
``repro_columnar_batches_total``               counter    ``backend`` (numpy/python), ``route`` (dense/sparse)
``repro_columnar_rows_batched_total``          counter    ``backend``
``repro_cube_sort_operations_total``           counter    --
``repro_cube_sort_spills_total``               counter    --
``repro_groupby_operations_total``             counter    ``strategy`` (hash/sort)
``repro_groupby_rows_total``                   counter    ``strategy``
``repro_maintenance_operations_total``         counter    ``op`` (insert/delete/update)
``repro_maintenance_cells_touched_total``      counter    ``op``
``repro_materialized_cube_lookups_total``      counter    ``result`` (hit/miss)
``repro_maintenance_rollbacks_total``          counter    ``op`` (insert/delete/update)
``repro_resilience_degradations_total``        counter    ``from_algorithm``
``repro_resilience_cancellations_total``       counter    ``reason`` (timeout/cancelled)
``repro_resilience_worker_failures_total``     counter    --
``repro_resilience_worker_retries_total``      counter    --
``repro_resilience_worker_recoveries_total``   counter    --
``repro_resilience_spill_retries_total``       counter    --
``repro_chaos_injected_faults_total``          counter    ``point``
``repro_view_rows_scanned_total``              counter    --
``repro_cache_lookups_total``                  counter    ``result`` (hit/miss/bypass)
``repro_cache_admissions_total``               counter    ``result`` (admitted/rejected)
``repro_cache_evictions_total``                counter    ``reason`` (space/invalidated)
``repro_cache_delta_total``                    counter    ``outcome`` (merged/invalidated)
``repro_cache_resident_cells``                 gauge      --
``repro_ingest_batches_total``                 counter    --
``repro_ingest_ops_total``                     counter    ``op`` (insert/delete/update)
``repro_ingest_pending_ops``                   gauge      --
``repro_serve_connections_total``              counter    --
``repro_serve_requests_total``                 counter    ``op``
``repro_serve_shed_total``                     counter    ``reason`` (queue_full/deadline)
``repro_serve_inflight``                       gauge      --
``repro_serve_queue_depth``                    gauge      --
``repro_serve_async_connections_total``        counter    --
``repro_serve_async_open_connections``         gauge      --
``repro_serve_drained_queries_total``          counter    --
``repro_cluster_computes_total``               counter    ``backend`` (numpy/python)
``repro_cluster_rows_shipped_total``           counter    --
``repro_cluster_slab_bytes_total``             counter    --
``repro_cluster_worker_restarts_total``        counter    --
``repro_cluster_active_segments``              gauge      --
``repro_storage_pages_written_total``          counter    ``file`` (data/spill)
``repro_storage_pages_read_total``             counter    ``file``
``repro_storage_page_checksum_failures_total`` counter    --
``repro_storage_fsyncs_total``                 counter    ``file`` (data/spill/wal)
``repro_storage_buffer_evictions_total``       counter    --
``repro_storage_buffer_pages``                 gauge      --
``repro_storage_wal_records_total``            counter    ``kind`` (begin/op/commit/abort/epoch)
``repro_storage_wal_replayed_records_total``   counter    --
``repro_storage_wal_torn_records_total``       counter    --
``repro_storage_checkpoints_total``            counter    ``kind`` (full/cubes)
``repro_storage_recoveries_total``             counter    ``outcome`` (recovered/fresh)
=============================================  =========  =============================

All helpers no-op (one flag check) when the process-wide registry is
disabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.compute.stats import ComputeStats

__all__ = [
    "record_buffer_eviction",
    "record_cache_admission",
    "record_cache_delta",
    "record_cache_eviction",
    "record_cache_lookup",
    "record_cancellation",
    "record_checkpoint",
    "record_cluster_compute",
    "record_cluster_worker_restart",
    "record_columnar_batch",
    "record_cube_compute",
    "record_degradation",
    "record_groupby",
    "record_ingest_flush",
    "record_injected_fault",
    "record_maintenance",
    "record_materialized_lookup",
    "record_page_read",
    "record_page_write",
    "record_query",
    "record_recovery",
    "record_rollback",
    "record_serve_async_connection",
    "record_serve_connection",
    "record_serve_drain",
    "record_serve_request",
    "record_serve_shed",
    "record_slow_query",
    "record_spill_retry",
    "record_storage_fsync",
    "record_torn_page",
    "record_view_answer",
    "record_wal_append",
    "record_wal_replay",
    "record_wal_torn_tail",
    "record_worker_failure",
    "record_worker_recovery",
    "record_worker_retry",
    "set_async_connections",
    "set_buffer_pages",
    "set_cache_resident_cells",
    "set_cluster_segments",
    "set_ingest_pending",
    "set_serve_inflight",
    "set_serve_queue_depth",
]


def record_query(duration_s: float, *, kind: str = "select") -> None:
    """One SQL statement served."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_sql_queries_total",
                     help="SQL statements executed", kind=kind).inc()
    REGISTRY.histogram("repro_sql_query_seconds",
                       help="SQL statement latency").observe(duration_s)


def record_slow_query(kind: str = "select") -> None:
    """A statement crossed its session's / server's ``slow_query_ms``
    threshold (the query-log record is marked ``slow`` alongside)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_slow_queries_total",
                     help="statements over the slow-query threshold",
                     kind=kind).inc()


def record_cube_compute(stats: "ComputeStats", duration_s: float, *,
                        input_rows: int = 0) -> None:
    """One cube computation finished (any algorithm)."""
    if not REGISTRY.enabled:
        return
    algorithm = stats.algorithm or "unknown"
    REGISTRY.counter("repro_cube_computations_total",
                     help="cube computations by algorithm",
                     algorithm=algorithm).inc()
    REGISTRY.histogram("repro_cube_compute_seconds",
                       help="cube computation latency by algorithm",
                       algorithm=algorithm).observe(duration_s)
    REGISTRY.counter("repro_cube_rows_scanned_total",
                     help="base rows scanned (rows x scans)"
                     ).inc(input_rows * max(stats.base_scans, 1))
    REGISTRY.counter("repro_cube_cells_produced_total",
                     help="result cells produced"
                     ).inc(stats.cells_produced)
    REGISTRY.counter("repro_cube_iter_calls_total",
                     help="Iter() scratchpad folds").inc(stats.iter_calls)
    REGISTRY.counter("repro_cube_merge_calls_total",
                     help="Iter_super() scratchpad merges"
                     ).inc(stats.merge_calls)
    REGISTRY.counter("repro_cube_sort_operations_total",
                     help="sort passes").inc(stats.sort_operations)
    REGISTRY.counter("repro_cube_sort_spills_total",
                     help="partitions spilled out of memory"
                     ).inc(stats.spills)


def record_columnar_batch(backend: str, route: str, rows: int) -> None:
    """The columnar algorithm batched one task's rows into typed
    columns (``backend``: numpy/python; ``route``: dense/sparse)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_columnar_batches_total",
                     help="columnar batches by backend and route",
                     backend=backend, route=route).inc()
    REGISTRY.counter("repro_columnar_rows_batched_total",
                     help="rows batched into typed columns",
                     backend=backend).inc(rows)


def record_groupby(strategy: str, rows: int, groups: int) -> None:
    """One single-grouping GROUP BY (hash or sort strategy)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_groupby_operations_total",
                     help="GROUP BY operations by physical strategy",
                     strategy=strategy).inc()
    REGISTRY.counter("repro_groupby_rows_total",
                     help="rows aggregated by GROUP BY",
                     strategy=strategy).inc(rows)


def record_maintenance(op: str, cells_touched: int) -> None:
    """One materialized-cube maintenance operation."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_maintenance_operations_total",
                     help="materialized-cube maintenance operations",
                     op=op).inc()
    REGISTRY.counter("repro_maintenance_cells_touched_total",
                     help="cube cells touched by maintenance",
                     op=op).inc(cells_touched)


def record_materialized_lookup(hit: bool) -> None:
    """A point lookup against a materialized cube (cache-style
    hit/miss hook)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_materialized_cube_lookups_total",
                     help="materialized-cube point lookups",
                     result="hit" if hit else "miss").inc()


def record_rollback(op: str) -> None:
    """A maintenance batch failed mid-apply and was rolled back."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_maintenance_rollbacks_total",
                     help="maintenance batches rolled back", op=op).inc()


def record_degradation(from_algorithm: str) -> None:
    """A budget breach degraded an in-memory cube to the external
    algorithm."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_resilience_degradations_total",
                     help="budget-driven degradations to the external "
                          "algorithm",
                     from_algorithm=from_algorithm).inc()


def record_cancellation(reason: str) -> None:
    """A query stopped at a checkpoint (``timeout`` or ``cancelled``)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_resilience_cancellations_total",
                     help="queries stopped by deadline or cancellation",
                     reason=reason).inc()


def record_worker_failure() -> None:
    """A parallel worker exhausted its retries and lost its partition."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_resilience_worker_failures_total",
                     help="parallel workers that exhausted retries").inc()


def record_worker_retry() -> None:
    """A parallel worker attempt failed and will be retried."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_resilience_worker_retries_total",
                     help="parallel worker attempts retried").inc()


def record_worker_recovery() -> None:
    """A failed worker's partition was re-executed serially."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_resilience_worker_recoveries_total",
                     help="failed partitions recovered serially").inc()


def record_spill_retry() -> None:
    """An external-algorithm spill write failed and was retried."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_resilience_spill_retries_total",
                     help="spill writes retried").inc()


def record_injected_fault(point: str) -> None:
    """The chaos harness injected a fault at ``point``."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_chaos_injected_faults_total",
                     help="faults injected by the chaos harness",
                     point=point).inc()


def record_view_answer(rows_scanned: int) -> None:
    """A query answered from a materialized view / cached cuboid
    (:meth:`PartialCube.answer`); counts the stored cells folded
    instead of base rows rescanned."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_view_rows_scanned_total",
                     help="materialized-view cells scanned to answer "
                          "queries").inc(rows_scanned)


def record_cache_lookup(result: str) -> None:
    """One semantic-cache probe: ``hit``, ``miss``, or ``bypass``
    (holistic aggregates, no base table, disabled)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_cache_lookups_total",
                     help="semantic cuboid cache probes",
                     result=result).inc()


def record_cache_admission(result: str) -> None:
    """A miss finished computing: entry ``admitted`` or ``rejected``
    by the admission policy."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_cache_admissions_total",
                     help="semantic cache admission decisions",
                     result=result).inc()


def record_cache_eviction(reason: str) -> None:
    """A cached cuboid was dropped: ``space`` (budget pressure) or
    ``invalidated`` (table mutated)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_cache_evictions_total",
                     help="semantic cache entries evicted",
                     reason=reason).inc()


def record_cache_delta(outcome: str) -> None:
    """A streamed DML batch reached one cached cuboid: ``merged``
    (Section 6 delta fold kept the entry hot) or ``invalidated``
    (delete-holistic cell or delta-ineligible source shape)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_cache_delta_total",
                     help="cached cuboids reached by streamed deltas",
                     outcome=outcome).inc()


def record_ingest_flush(op_counts: dict[str, int]) -> None:
    """The stream ingestor flushed one coalesced batch; ``op_counts``
    maps ``insert``/``delete``/``update`` to the ops applied."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_ingest_batches_total",
                     help="coalesced ingest batches flushed").inc()
    for op, count in op_counts.items():
        if count:
            REGISTRY.counter("repro_ingest_ops_total",
                             help="streamed DML operations applied",
                             op=op).inc(count)


def set_ingest_pending(n: int) -> None:
    """DML operations buffered in the stream ingestor, not yet
    flushed into the catalog and cache."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_ingest_pending_ops",
                   help="buffered ingest operations awaiting flush"
                   ).set(n)


def set_cache_resident_cells(cells: int) -> None:
    """Current cells held by the semantic cache (its space budget)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_cache_resident_cells",
                   help="cells resident in the semantic cache").set(cells)


def record_serve_connection() -> None:
    """A client connection was accepted by the query server."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_serve_connections_total",
                     help="client connections accepted").inc()


def record_serve_request(op: str) -> None:
    """One wire request handled (``query``, ``ping``, ``stats``, ...)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_serve_requests_total",
                     help="wire requests handled", op=op).inc()


def record_serve_shed(reason: str) -> None:
    """Admission control refused a request: ``queue_full`` or
    ``deadline`` (shed while queued)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_serve_shed_total",
                     help="requests shed by admission control",
                     reason=reason).inc()


def set_serve_inflight(n: int) -> None:
    """Queries currently executing on connection threads."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_serve_inflight",
                   help="queries currently executing").set(n)


def set_serve_queue_depth(n: int) -> None:
    """Requests waiting for an execution slot."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_serve_queue_depth",
                   help="requests waiting for an execution slot").set(n)


def record_page_write(file: str) -> None:
    """One checksummed page written to a storage file."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_pages_written_total",
                     help="pages written to storage files",
                     file=file).inc()


def record_page_read(file: str) -> None:
    """One page read from a storage file."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_pages_read_total",
                     help="pages read from storage files",
                     file=file).inc()


def record_torn_page() -> None:
    """A page failed its checksum: torn write detected on read."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_page_checksum_failures_total",
                     help="pages that failed their checksum (torn "
                          "writes detected)").inc()


def record_storage_fsync(file: str) -> None:
    """One durability barrier (``fsync``) on a storage file."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_fsyncs_total",
                     help="fsync barriers on storage files",
                     file=file).inc()


def record_buffer_eviction() -> None:
    """The buffer pool evicted its LRU unpinned frame."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_buffer_evictions_total",
                     help="buffer-pool frames evicted").inc()


def set_buffer_pages(n: int) -> None:
    """Pages currently resident in a buffer pool."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_storage_buffer_pages",
                   help="pages resident in the buffer pool").set(n)


def record_wal_append(kind: str) -> None:
    """One record appended to the write-ahead log."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_wal_records_total",
                     help="write-ahead log records appended",
                     kind=kind).inc()


def record_wal_replay(n: int = 1) -> None:
    """``n`` committed WAL operations replayed during recovery."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_wal_replayed_records_total",
                     help="committed WAL operations replayed").inc(n)


def record_wal_torn_tail(n: int = 1) -> None:
    """A torn tail (``n`` damaged trailing records) was discarded
    when the write-ahead log was opened."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_wal_torn_records_total",
                     help="torn WAL tail records discarded at open"
                     ).inc(n)


def record_checkpoint(kind: str) -> None:
    """One store checkpoint completed (``full`` persists the serve
    cache alongside the cubes; ``cubes`` persists cubes only)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_checkpoints_total",
                     help="store checkpoints completed", kind=kind).inc()


def record_recovery(outcome: str) -> None:
    """A cube was attached to a store: ``recovered`` (checkpoint or
    WAL state restored) or ``fresh``."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_storage_recoveries_total",
                     help="cube attach recoveries by outcome",
                     outcome=outcome).inc()


def record_cluster_compute(backend: str, rows: int, slab_bytes: int) -> None:
    """The cluster algorithm shipped one batch to the worker-process
    pool (``backend``: the kernels the workers ran, numpy/python)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_cluster_computes_total",
                     help="cluster scatter/gather computations",
                     backend=backend).inc()
    REGISTRY.counter("repro_cluster_rows_shipped_total",
                     help="rows shipped through shared-memory slabs"
                     ).inc(rows)
    REGISTRY.counter("repro_cluster_slab_bytes_total",
                     help="shared-memory slab bytes encoded"
                     ).inc(slab_bytes)


def record_cluster_worker_restart() -> None:
    """A dead cluster worker process was replaced with a fresh one."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_cluster_worker_restarts_total",
                     help="cluster worker processes respawned").inc()


def set_cluster_segments(n: int) -> None:
    """Shared-memory slab segments currently alive (leak telemetry:
    this must return to 0 between computes)."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_cluster_active_segments",
                   help="live shared-memory slab segments").set(n)


def record_serve_async_connection() -> None:
    """The asyncio front end accepted one connection."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_serve_async_connections_total",
                     help="connections accepted by the asyncio server"
                     ).inc()


def set_async_connections(n: int) -> None:
    """Connections the asyncio front end is currently multiplexing."""
    if not REGISTRY.enabled:
        return
    REGISTRY.gauge("repro_serve_async_open_connections",
                   help="open asyncio server connections").set(n)


def record_serve_drain(n: int) -> None:
    """Graceful shutdown waited for ``n`` in-flight queries to finish
    before checkpointing and releasing resources."""
    if not REGISTRY.enabled:
        return
    REGISTRY.counter("repro_serve_drained_queries_total",
                     help="in-flight queries drained at shutdown").inc(n)
