"""``python -m repro.obs`` -- tail and summarize the query log.

Three record sources, checked in this order:

- ``--log FILE.jsonl``: a query-log file written by
  :meth:`~repro.obs.querylog.QueryLog.write_json_lines` (e.g. the
  serving-smoke CI artifact);
- ``--connect host:port``: the ``log`` op of a running query server;
- neither: this process's own :data:`~repro.obs.querylog.QUERY_LOG`
  (mostly useful under ``python -c`` / notebooks).

Output (``--format text``) is the summary header, the busiest workload
signatures with hit rate and p50/p95/p99, the top-N slowest queries,
and the most recent records; ``--format json`` emits the same as one
JSON object.  When the durable storage engine has been active
(checkpoints, recoveries, WAL replay -- docs/STORAGE.md), a
``storage:`` section reports its counters: from the server's stats
under ``--connect``, from this process's metric registry otherwise.
Exit codes follow the other repro CLIs: 0 OK, 2 usage error
(unreadable file, bad flag, malformed JSONL, unreachable server).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.cliutil import EXIT_OK, EXIT_USAGE, add_format_argument
from repro.errors import CLIUsageError, ObservabilityError, ReproError
from repro.obs.querylog import (
    QUERY_LOG,
    QueryRecord,
    WorkloadHistory,
    format_records,
    format_workload,
)

__all__ = ["main"]


def _read_jsonl(path: str) -> list[QueryRecord]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise CLIUsageError(f"cannot read {path}: {error}") from None
    records = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise CLIUsageError(
                f"{path}:{number}: not JSON: {error}") from None
        try:
            records.append(QueryRecord.from_dict(payload))
        except (ObservabilityError, TypeError) as error:
            raise CLIUsageError(
                f"{path}:{number}: not a query record: {error}") from None
    return records


def _fetch_remote(address: str,
                  n: int) -> tuple[list[QueryRecord], list, dict]:
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or port < 0:
        raise CLIUsageError("--connect needs host:port")
    from repro.serve.client import QueryClient
    try:
        with QueryClient(host, port) as client:
            payload = client.log(n=n)
            storage = client.stats().get("storage", {})
    except ReproError as error:
        raise CLIUsageError(str(error)) from None
    records = [QueryRecord.from_dict(entry)
               for entry in payload["records"]]
    return records, payload["workload"], storage


#: the durability counters surfaced in the ``storage:`` section when a
#: local process (no ``--connect``) has driven the storage engine
_STORAGE_METRICS = (
    "repro_storage_checkpoints_total",
    "repro_storage_recoveries_total",
    "repro_storage_wal_replayed_records_total",
    "repro_storage_wal_torn_records_total",
)


def _local_storage_counters() -> dict:
    from repro.obs.metrics import REGISTRY
    out: dict[str, float] = {}
    for record in REGISTRY.snapshot():
        if record["name"] not in _STORAGE_METRICS:
            continue
        if not record.get("value"):
            continue
        labels = ",".join(f"{key}={value}" for key, value
                          in sorted(record["labels"].items()))
        key = record["name"] + (f"{{{labels}}}" if labels else "")
        out[key] = record["value"]
    return out


def _summarize(records: list[QueryRecord]) -> dict:
    outcomes: dict[str, int] = {}
    for record in records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
    durations = sorted(record.duration_ms for record in records)
    return {
        "total": len(records),
        "outcomes": outcomes,
        "slow": sum(1 for record in records if record.slow),
        "recovered": sum(1 for record in records if record.recovered),
        "max_ms": durations[-1] if durations else None,
    }


def _filtered(records: list[QueryRecord],
              args: argparse.Namespace) -> list[QueryRecord]:
    if args.kind is not None:
        records = [r for r in records if r.kind == args.kind]
    if args.outcome is not None:
        records = [r for r in records if r.outcome == args.outcome]
    if args.slow:
        records = [r for r in records if r.slow]
    return records


def _render_text(records: list[QueryRecord], workload: list,
                 storage: dict, args: argparse.Namespace) -> str:
    summary = _summarize(records)
    header = (f"query log: {summary['total']} records, "
              f"outcomes {summary['outcomes'] or '{}'}, "
              f"{summary['slow']} slow")
    if summary["recovered"]:
        header += (f", {summary['recovered']} answered from "
                   "recovered cuboids")
    sections = [header]
    if storage:
        sections.append("")
        sections.append("storage:")
        sections.extend(f"  {key}: {value}"
                        for key, value in sorted(storage.items()))
    if workload:
        sections.append("")
        sections.append(f"workload (top {args.top} signatures):")
        sections.extend(format_workload(workload[: args.top]))
    slowest = sorted(records, key=lambda r: -r.duration_ms)[: args.top]
    if slowest:
        sections.append("")
        sections.append(f"slowest {len(slowest)} queries:")
        sections.extend(format_records(
            sorted(slowest, key=lambda r: r.duration_ms)))
    recent = records[-args.tail:] if args.tail else []
    if recent:
        sections.append("")
        sections.append(f"last {len(recent)} records:")
        sections.extend(format_records(recent))
    return "\n".join(sections)


def _render_json(records: list[QueryRecord], workload: list,
                 storage: dict, args: argparse.Namespace) -> str:
    slowest = sorted(records, key=lambda r: -r.duration_ms)[: args.top]
    return json.dumps({
        "summary": _summarize(records),
        "storage": storage,
        "workload": workload[: args.top],
        "slowest": [record.to_dict() for record in slowest],
        "records": [record.to_dict()
                    for record in records[-args.tail:]],
    }, sort_keys=True, default=str)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tail and summarize the repro query log.")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--log", metavar="FILE",
                        help="read records from a JSONL query-log file")
    source.add_argument("--connect", metavar="HOST:PORT",
                        help="fetch records from a running query server")
    parser.add_argument("--tail", type=int, default=20, metavar="N",
                        help="show the last N records (default 20)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="show the N busiest signatures and "
                             "slowest queries (default 10)")
    parser.add_argument("--kind", default=None,
                        help="only records of this statement kind")
    parser.add_argument("--outcome", default=None,
                        help="only records with this outcome")
    parser.add_argument("--slow", action="store_true",
                        help="only records over the slow-query threshold")
    add_format_argument(parser)
    try:
        args = parser.parse_args(argv)
        if args.tail < 0 or args.top < 0:
            raise CLIUsageError("--tail/--top must be >= 0")
        workload: list = []
        storage: dict = {}
        if args.log is not None:
            records = _read_jsonl(args.log)
        elif args.connect is not None:
            records, workload, storage = _fetch_remote(
                args.connect, max(args.tail, args.top, 1) * 10)
        else:
            records = QUERY_LOG.snapshot()
            storage = _local_storage_counters()
        records = _filtered(records, args)
        if not workload:
            workload = WorkloadHistory(
                capacity=max(len(records), 1)).feed(records).snapshot()
    except CLIUsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return EXIT_USAGE
    renderer = _render_json if args.format == "json" else _render_text
    print(renderer(records, workload, storage, args))
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
