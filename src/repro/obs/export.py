"""File exporters for spans and metrics.

Two wire formats, both dependency-free:

- **JSON lines** -- one JSON object per line; metrics export their
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` records, spans
  export their :meth:`~repro.obs.trace.Span.to_dict` trees (one root
  span per line).  This is the machine-diffable format the benchmark
  trajectory (``BENCH_results.json``) and log shippers consume.
- **Prometheus text exposition** -- the de-facto pull format, so a
  scrape endpoint (or a file-based textfile collector) can ingest the
  registry directly.
- **collapsed stacks** -- span trees folded into the
  ``frame;frame;frame value`` profile format flamegraph.pl and
  speedscope consume, weighted by per-span *self* time in
  microseconds.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "metrics_to_json_lines",
    "metrics_to_prometheus",
    "spans_to_collapsed",
    "spans_to_json_lines",
    "write_metrics_json_lines",
    "write_metrics_prometheus",
    "write_spans_collapsed",
    "write_spans_json_lines",
]


def metrics_to_json_lines(registry: MetricsRegistry | None = None) -> str:
    return (registry or REGISTRY).to_json_lines()


def metrics_to_prometheus(registry: MetricsRegistry | None = None) -> str:
    return (registry or REGISTRY).to_prometheus()


def spans_to_json_lines(roots: Iterable[Span]) -> str:
    """One JSON object per root span (children nested inside)."""
    return "\n".join(json.dumps(root.to_dict(), sort_keys=True,
                                default=str)
                     for root in roots)


def _frame(name: str) -> str:
    """A span name as a collapsed-stack frame: the format reserves
    ``;`` (stack separator) and the last space (value separator)."""
    return name.replace(";", ":").replace(" ", "_") or "?"


def spans_to_collapsed(roots: Iterable[Span]) -> str:
    """Span trees as collapsed stacks (flamegraph.pl / speedscope).

    One line per distinct stack, ``root;child;leaf value``, where the
    value is the stack's *self* time (duration minus the children's
    summed durations) in integer microseconds.  Overlapping children
    -- parallel workers attached under one coordinator span -- can sum
    past their parent's wall clock; self time is floored at zero so
    the output is always a valid profile.
    """
    weights: dict[str, int] = {}

    def visit(span: Span, prefix: str) -> None:
        stack = f"{prefix};{_frame(span.name)}" if prefix \
            else _frame(span.name)
        child_ms = sum(c.duration_ms or 0.0 for c in span.children)
        self_ms = max((span.duration_ms or 0.0) - child_ms, 0.0)
        weights[stack] = weights.get(stack, 0) + int(round(self_ms * 1000))
        for child in span.children:
            visit(child, stack)

    for root in roots:
        visit(root, "")
    return "\n".join(f"{stack} {value}"
                     for stack, value in weights.items())


def write_spans_collapsed(path: str, roots: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        text = spans_to_collapsed(roots)
        handle.write(text + "\n" if text else "")


def write_metrics_json_lines(path: str,
                             registry: MetricsRegistry | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_to_json_lines(registry) + "\n")


def write_metrics_prometheus(path: str,
                             registry: MetricsRegistry | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_to_prometheus(registry))


def write_spans_json_lines(path: str, roots: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_json_lines(roots) + "\n")
