"""File exporters for spans and metrics.

Two wire formats, both dependency-free:

- **JSON lines** -- one JSON object per line; metrics export their
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` records, spans
  export their :meth:`~repro.obs.trace.Span.to_dict` trees (one root
  span per line).  This is the machine-diffable format the benchmark
  trajectory (``BENCH_results.json``) and log shippers consume.
- **Prometheus text exposition** -- the de-facto pull format, so a
  scrape endpoint (or a file-based textfile collector) can ingest the
  registry directly.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "metrics_to_json_lines",
    "metrics_to_prometheus",
    "spans_to_json_lines",
    "write_metrics_json_lines",
    "write_metrics_prometheus",
    "write_spans_json_lines",
]


def metrics_to_json_lines(registry: MetricsRegistry | None = None) -> str:
    return (registry or REGISTRY).to_json_lines()


def metrics_to_prometheus(registry: MetricsRegistry | None = None) -> str:
    return (registry or REGISTRY).to_prometheus()


def spans_to_json_lines(roots: Iterable[Span]) -> str:
    """One JSON object per root span (children nested inside)."""
    return "\n".join(json.dumps(root.to_dict(), sort_keys=True,
                                default=str)
                     for root in roots)


def write_metrics_json_lines(path: str,
                             registry: MetricsRegistry | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_to_json_lines(registry) + "\n")


def write_metrics_prometheus(path: str,
                             registry: MetricsRegistry | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_to_prometheus(registry))


def write_spans_json_lines(path: str, roots: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_json_lines(roots) + "\n")
