"""A process-wide metrics registry: counters, gauges, histograms.

Metrics are the durable, cumulative complement to spans: a span tells
you where one query's time went, the registry tells you what the
process has done since it started -- queries served, rows scanned,
cells produced, sort spills, materialized-cube hit/miss ratios.

Zero dependencies.  Metrics are identified by (name, labels); the
get-or-create accessors (:meth:`MetricsRegistry.counter` etc.) return
the same instance for the same identity, so instrumentation sites just
call ``registry.counter("repro_x_total", algorithm="sort").inc()``.

Export formats (see :mod:`repro.obs.export` for file helpers):

- :meth:`MetricsRegistry.to_json_lines` -- one JSON object per metric;
- :meth:`MetricsRegistry.to_prometheus` -- Prometheus text exposition
  (``# HELP`` / ``# TYPE`` / ``name{labels} value``; histograms render
  cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``).

The registry can be disabled (``set_enabled(False)``); accessors then
return a shared no-op metric so instrumented code pays one flag check.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterator

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "format_delta",
]

#: Default histogram buckets, in seconds (latency-shaped).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class _Metric:
    """Common identity + lock for all metric kinds."""

    kind = "untyped"
    __slots__ = ("name", "help", "labels", "_lock")

    def __init__(self, name: str, help_text: str,
                 labels: dict[str, str]) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self._lock = threading.Lock()

    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"'
                         for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, help_text: str,
                 labels: dict[str, str]) -> None:
        super().__init__(name, help_text, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, help_text: str,
                 labels: dict[str, str]) -> None:
        super().__init__(name, help_text, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)


class Histogram(_Metric):
    """Bucketed observations plus count/sum/min/max."""

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, help_text: str, labels: dict[str, str],
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labels)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[position] += 1
                    break

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile by linear interpolation inside
        the bucket the target rank falls in.

        Observations above the last bucket bound (tracked only by
        count/sum/min/max) interpolate between that bound and the
        observed maximum.  The estimate is clamped to the observed
        ``[min, max]`` range, so ``quantile(0.0)`` is exact and
        ``quantile(1.0)`` returns the true maximum.  ``None`` with no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile q must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            assert self.min is not None and self.max is not None
            target = q * self.count
            cumulative = 0
            lower = 0.0
            for bound, bucket_count in zip(self.buckets,
                                           self.bucket_counts):
                if bucket_count and cumulative + bucket_count >= target:
                    fraction = (target - cumulative) / bucket_count
                    value = lower + (bound - lower) * fraction
                    return min(max(value, self.min), self.max)
                cumulative += bucket_count
                lower = bound
            # the rank lands in the open-ended overflow region
            overflow = self.count - cumulative
            if overflow <= 0:
                return self.max
            fraction = (target - cumulative) / overflow
            value = lower + (self.max - lower) * fraction
            return min(max(value, self.min), self.max)


class _NoopMetric:
    """Absorbs updates while the registry is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_METRIC = _NoopMetric()

_Key = tuple[str, tuple[tuple[str, str], ...]]


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[_Key, _Metric] = {}
        self._lock = threading.Lock()

    # -- accessors --------------------------------------------------------

    def _get(self, cls: type, name: str, help_text: str,
             labels: dict[str, Any], **extra: Any) -> Any:
        if not self.enabled:
            return _NOOP_METRIC
        label_strs = {k: str(v) for k, v in labels.items()}
        key: _Key = (name, tuple(sorted(label_strs.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help_text, label_strs, **extra)
                self._metrics[key] = metric
            elif type(metric) is not cls:
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = enabled

    def reset(self) -> None:
        """Drop every metric (tests and between-benchmark isolation)."""
        with self._lock:
            self._metrics = {}

    # -- introspection / export -------------------------------------------

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict[str, Any]]:
        """Every metric as a plain dict (stable across exporters)."""
        out = []
        for metric in self:
            record: dict[str, Any] = {"name": metric.name,
                                      "type": metric.kind,
                                      "labels": dict(metric.labels)}
            if isinstance(metric, (Counter, Gauge)):
                record["value"] = metric.value
            elif isinstance(metric, Histogram):
                record["count"] = metric.count
                record["sum"] = metric.sum
                record["min"] = metric.min
                record["max"] = metric.max
                record["buckets"] = {
                    str(bound): count for bound, count
                    in zip(metric.buckets, metric.bucket_counts)}
            out.append(record)
        out.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return out

    def to_json_lines(self) -> str:
        return "\n".join(json.dumps(record, sort_keys=True)
                         for record in self.snapshot())

    def to_prometheus(self) -> str:
        lines: list[str] = []
        seen_headers: set[str] = set()
        metrics = sorted(self, key=lambda m: (m.name,
                                              sorted(m.labels.items())))
        for metric in metrics:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            suffix = metric.label_suffix()
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{metric.name}{suffix} {_num(metric.value)}")
            elif isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.buckets,
                                        metric.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_with_le(metric.labels, bound)} {cumulative}")
                lines.append(
                    f"{metric.name}_bucket"
                    f'{_with_le(metric.labels, "+Inf")} {metric.count}')
                lines.append(
                    f"{metric.name}_sum{suffix} {_num(metric.sum)}")
                lines.append(
                    f"{metric.name}_count{suffix} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _with_le(labels: dict[str, str], bound: Any) -> str:
    items = sorted(labels.items()) + [("le", str(bound))]
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + inner + "}"


def format_delta(before: list[dict], after: list[dict]) -> list[str]:
    """Human-readable lines for metrics that changed between two
    :meth:`MetricsRegistry.snapshot` calls (the shell's ``\\metrics``
    display)."""

    def key(record: dict) -> tuple:
        return (record["name"], tuple(sorted(record["labels"].items())))

    def scalar(record: dict) -> float:
        if record["type"] == "histogram":
            return record["count"]
        return record["value"]

    previous = {key(r): scalar(r) for r in before}
    lines = []
    for record in after:
        now = scalar(record)
        delta = now - previous.get(key(record), 0)
        if delta == 0:
            continue
        labels = "".join(
            f" {k}={v}" for k, v in sorted(record["labels"].items()))
        unit = " observations" if record["type"] == "histogram" else ""
        lines.append(f"{record['name']}{labels} +{_num(delta)}{unit} "
                     f"(now {_num(now)})")
    return lines


#: The process-wide default registry all built-in instrumentation uses.
REGISTRY = MetricsRegistry()
