"""Cube semantic linter: static diagnostics for CUBE/ROLLUP queries and
plans, grounded in the paper's own correctness arguments.

The paper's validity conditions are all *static* properties of a query
or plan: super-aggregation from the core requires distributive or
algebraic functions (Section 5), MAX/MIN turn holistic under DELETE
maintenance (Section 6), decorations must be functionally dependent on
a grouping column (Section 3.5), and the NULL-based minimalist ALL
design is ambiguous whenever a grouping column holds real NULLs
(Section 3.4).  This package checks them *before* execution and emits
structured :class:`~repro.lint.diagnostics.Diagnostic` records.

Three surfaces:

- ``strict=True`` on the cube operators and
  :class:`~repro.sql.SQLSession` lints pre-execution and raises
  :class:`~repro.errors.LintError` on error-severity findings;
- ``EXPLAIN`` output includes the diagnostics alongside the plan;
- ``python -m repro.lint file.sql`` is the CI-gating CLI (see
  :mod:`repro.lint.cli` for exit codes).
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.engine import (
    Linter,
    lint_cube_spec,
    lint_maintenance_spec,
    lint_sql,
    lint_statement,
    require_clean,
    split_statements,
)
from repro.lint.rules import RULES, LintRule

__all__ = [
    "Diagnostic",
    "LintReport",
    "LintRule",
    "Linter",
    "RULES",
    "Severity",
    "lint_cube_spec",
    "lint_maintenance_spec",
    "lint_sql",
    "lint_statement",
    "require_clean",
    "split_statements",
]
