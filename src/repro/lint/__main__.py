"""``python -m repro.lint`` entry point."""

import os
import sys

from repro.lint.cli import EXIT_LINT_ERRORS, main

try:
    sys.exit(main())
except BrokenPipeError:
    # downstream pager/head closed the pipe; exit quietly without a
    # traceback (devnull dup stops Python's shutdown-time flush warning)
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(EXIT_LINT_ERRORS)
