"""Structured diagnostics emitted by the cube semantic linter.

A :class:`Diagnostic` is one finding: a stable rule code (``C001``...),
a severity, a human-readable message, the column names involved, an
optional source span (character offsets into the linted SQL text), and a
suggested fix.  :class:`LintReport` is an ordered collection with the
filtering and formatting helpers the CLI, EXPLAIN, and strict mode use.

The paper's correctness arguments are static properties of the query or
plan (Sections 3.4, 3.5, 5, and 6); each diagnostic names the section it
is grounded in so a reader can go from a finding straight to the
argument.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe plans that are wrong or will fail at
    runtime (a holistic aggregate handed to a merge-based algorithm);
    strict mode raises on them.  ``WARNING`` findings describe plans
    that run but mislead or blow up (ALL/NULL ambiguity, cube size).
    ``INFO`` findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str                       # stable rule code, e.g. "C001"
    severity: Severity
    message: str
    rule: str = ""                  # rule slug, e.g. "holistic-merge"
    paper_section: str = ""         # e.g. "Section 5"
    columns: tuple[str, ...] = ()   # column names involved, if any
    span: tuple[int, int] | None = None  # char offsets in the SQL source
    statement_index: int | None = None   # which statement in a multi-stmt file
    suggestion: str = ""            # suggested fix, may be empty

    def format_line(self, *, location: str = "") -> str:
        """One-line rendering: ``C001 error: message (fix: ...)``."""
        prefix = f"{location}: " if location else ""
        where = ""
        if self.statement_index is not None:
            where = f"stmt {self.statement_index + 1}: "
        fix = f" (fix: {self.suggestion})" if self.suggestion else ""
        return (f"{prefix}{where}{self.code} {self.severity}: "
                f"{self.message}{fix}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "rule": self.rule,
            "paper_section": self.paper_section,
            "columns": list(self.columns),
            "suggestion": self.suggestion,
        }
        if self.span is not None:
            out["span"] = list(self.span)
        if self.statement_index is not None:
            out["statement_index"] = self.statement_index
        return out


@dataclass
class LintReport:
    """An ordered collection of diagnostics for one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def append(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_severity(self) -> list[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (d.severity.rank, d.code))

    @property
    def clean(self) -> bool:
        """True when no diagnostics at all were produced."""
        return not self.diagnostics

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostics were produced."""
        return not self.errors()

    def format_text(self, *, location: str = "") -> str:
        if self.clean:
            prefix = f"{location}: " if location else ""
            return f"{prefix}clean"
        return "\n".join(d.format_line(location=location)
                         for d in self.by_severity())

    def format_json(self, *, location: str = "") -> str:
        payload: dict[str, Any] = {
            "diagnostics": [d.to_dict() for d in self.by_severity()],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "ok": self.ok,
        }
        if location:
            payload["file"] = location
        return json.dumps(payload, indent=2)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)
