"""Command-line interface: ``python -m repro.lint``.

Usage::

    python -m repro.lint queries.sql more.sql     # lint SQL files
    python -m repro.lint - < queries.sql          # lint stdin
    python -m repro.lint examples/*.py --self-check
    python -m repro.lint --list-rules
    python -m repro.lint queries.sql --rules C001,C009 --format json

Exit codes (stable, for CI gating):

- ``0`` -- no error-severity diagnostics (warnings allowed);
- ``1`` -- at least one error-severity diagnostic (including parse
  errors in ``.sql`` input);
- ``2`` -- usage problems (unknown flag, unreadable file, unknown or
  empty rule selection, ``.py`` input without ``--self-check``).

The flag surface and exit codes are shared with
``python -m repro.analysis`` via :mod:`repro.cliutil`.

``--self-check`` mode scans Python sources for embedded SQL string
literals (the repo's examples) and lints every statement it can parse;
fragments that don't parse are skipped, since example files legitimately
contain partial SQL.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from typing import Iterable, Sequence

from repro.cliutil import (
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    CLIUsageError,
    add_format_argument,
    parse_rule_selection,
)
from repro.errors import LintError
from repro.lint.diagnostics import LintReport
from repro.lint.engine import DEFAULT_BLOWUP_THRESHOLD, Linter
from repro.lint.rules import RULES

__all__ = ["main"]

_SQL_LITERAL = re.compile(r"^\s*(SELECT|EXPLAIN)\b", re.IGNORECASE)

EXIT_LINT_ERRORS = EXIT_FINDINGS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static semantic linter for CUBE/ROLLUP queries "
                    "(rules grounded in Gray et al. 1996).")
    parser.add_argument("paths", nargs="*",
                        help=".sql files (or '-' for stdin); .py files "
                             "with --self-check")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    add_format_argument(parser)
    parser.add_argument("--threshold", type=int,
                        default=DEFAULT_BLOWUP_THRESHOLD,
                        help="C009 cube-size blow-up threshold "
                             "(default %(default)s cells)")
    parser.add_argument("--self-check", action="store_true",
                        help="scan .py files for embedded SQL literals "
                             "and lint those (parse failures skipped)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _extract_sql_literals(source: str) -> list[str]:
    """SQL-looking string constants in a Python source file."""
    out: list[str] = []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return out
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value
            if _SQL_LITERAL.match(text) and "FROM" in text.upper():
                out.append(text)
    return out


def _lint_py_self_check(linter: Linter, source: str) -> LintReport:
    report = LintReport()
    for literal in _extract_sql_literals(source):
        sub = linter.lint_sql(literal)
        # embedded strings may be fragments; parse failures (C000) are
        # not findings about the example, drop them
        report.extend(d for d in sub if d.code != "C000")
    return report


def _emit(report: LintReport, location: str, fmt: str,
          out: Iterable[str]) -> None:
    if fmt == "json":
        print(report.format_json(location=location))
    else:
        print(report.format_text(location=location))


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors, 0 on --help: preserve both
        return int(exit_.code or 0)

    if args.list_rules:
        for code in sorted(RULES):
            registered = RULES[code]
            print(f"{code}  {registered.slug:<22} "
                  f"[{registered.paper_section}] {registered.summary}")
        return EXIT_OK

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no input files (use '-' for stdin)",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        rules = parse_rule_selection(args.rules)
        linter = Linter(rules=rules, blowup_threshold=args.threshold)
    except (CLIUsageError, LintError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    any_errors = False
    for path in args.paths:
        if path == "-":
            source = sys.stdin.read()
            location = "<stdin>"
            is_python = False
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                print(f"error: cannot read {path}: {error}",
                      file=sys.stderr)
                return EXIT_USAGE
            location = path
            is_python = path.endswith(".py")

        if is_python:
            if not args.self_check:
                print(f"error: {path} is a Python file; pass "
                      "--self-check to lint its embedded SQL",
                      file=sys.stderr)
                return EXIT_USAGE
            report = _lint_py_self_check(linter, source)
        else:
            report = linter.lint_sql(source)

        _emit(report, location, args.format, sys.stdout)
        if not report.ok:
            any_errors = True

    return EXIT_LINT_ERRORS if any_errors else EXIT_OK
