"""The normalized lint target.

Every rule sees one :class:`LintContext`: a flattened description of a
single cube computation, whether it arrived as a parsed SQL SELECT, a
programmatic ``cube()``/``rollup()`` call, or a maintenance plan.  The
builders here do all the front-end-specific walking (AST traversal via
:mod:`repro.sql.analysis`, :class:`~repro.compute.base.CubeTask`
introspection) so rules stay pure functions of the context.

Builders never mutate their inputs: aggregate functions referenced by a
spec are inspected in place, SQL aggregate calls are *re-instantiated*
from the registry (mirroring how the executor would run them), and data
checks only read table rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.aggregates.base import AggregateFunction
from repro.aggregates.registry import AggregateRegistry, default_registry
from repro.core.decorations import Decoration
from repro.engine.expressions import ColumnRef, Expression, Literal
from repro.engine.table import Table
from repro.errors import UnknownAggregateError
from repro.sql.ast_nodes import (
    AggregateCall,
    GroupingCall,
    SelectStmt,
    Star,
    Statement,
)
from repro.types import NullMode

__all__ = [
    "AggregateInfo",
    "LintContext",
    "contexts_from_statement",
    "context_from_spec",
]

#: Algorithms whose super-aggregation step relies on Iter_super
#: (merging sub-aggregate scratchpads) -- invalid for holistic
#: functions per Section 5.
MERGE_BASED_ALGORITHMS = frozenset({
    "from-core", "pipesort", "sort", "parallel", "external", "array",
})


@dataclass(frozen=True)
class AggregateInfo:
    """One requested aggregate, resolved as far as statically possible."""

    name: str                               # registry / display name
    function: Optional[AggregateFunction]   # None when unresolvable
    known: bool = True                      # name resolved in the registry
    user_defined: bool = False              # built via make_udaf / ad-hoc

    @property
    def holistic(self) -> bool:
        if self.function is None:
            return False
        from repro.aggregates.classification import AggregateClass
        return self.function.classification is AggregateClass.HOLISTIC

    @property
    def mergeable(self) -> bool:
        return self.function is not None and self.function.mergeable

    @property
    def delete_holistic(self) -> bool:
        if self.function is None:
            return False
        from repro.aggregates.classification import AggregateClass
        return (self.function.maintenance.delete
                is AggregateClass.HOLISTIC)


@dataclass
class LintContext:
    """Everything a rule may ask about one cube computation."""

    source: str = "spec"                    # "sql" | "spec" | "maintenance"
    plain: tuple[str, ...] = ()
    rollup: tuple[str, ...] = ()
    cube: tuple[str, ...] = ()
    #: dimension expressions aligned with dims (None when dims came in
    #: as bare column names)
    dim_exprs: tuple[Optional[Expression], ...] = ()
    aggregates: tuple[AggregateInfo, ...] = ()
    #: the *requested* algorithm ("auto" means optimizer's choice)
    algorithm: str = "auto"
    null_mode: NullMode = NullMode.ALL_VALUE
    table: Optional[Table] = None
    #: per-dimension cardinality overrides (declared statistics); data
    #: scans fill gaps when a table is available
    cardinalities: Mapping[str, int] = field(default_factory=dict)
    total_rows: Optional[int] = None
    #: columns named in GROUPING(col) calls (SQL only)
    grouping_calls: tuple[str, ...] = ()
    #: output references that are neither grouped nor aggregated
    nongrouped_outputs: tuple[str, ...] = ()
    #: scalar function names that resolve nowhere (SQL only)
    unknown_functions: tuple[str, ...] = ()
    decorations: tuple[Decoration, ...] = ()
    #: maintenance operations this plan must support
    maintenance_ops: tuple[str, ...] = ("select",)
    retain_base: bool = True
    #: Π(Ci+1)-style estimate above which C009 warns
    blowup_threshold: int = 1_000_000
    span: Optional[tuple[int, int]] = None
    statement_index: Optional[int] = None

    # -- derived properties -------------------------------------------------

    @property
    def dims(self) -> tuple[str, ...]:
        return self.plain + self.rollup + self.cube

    @property
    def duplicate_dims(self) -> tuple[str, ...]:
        seen: set[str] = set()
        dupes: list[str] = []
        for name in self.dims:
            if name in seen and name not in dupes:
                dupes.append(name)
            seen.add(name)
        return tuple(dupes)

    @property
    def grouping_set_count(self) -> int:
        """(len(rollup)+1) * 2^len(cube) -- Section 3.2's law."""
        return (len(self.rollup) + 1) * (1 << len(self.cube))

    @property
    def has_super_aggregates(self) -> bool:
        return self.grouping_set_count > 1

    # -- data access helpers (read-only) ------------------------------------

    def dim_expr(self, name: str) -> Optional[Expression]:
        for dim, expr in zip(self.dims, self.dim_exprs):
            if dim == name:
                return expr
        return None

    def _column_index(self, name: str) -> Optional[int]:
        """Index of a dimension's backing column in the table, if the
        dimension is a plain column reference."""
        if self.table is None:
            return None
        expr = self.dim_expr(name)
        if expr is not None and not isinstance(expr, ColumnRef):
            return None
        column = expr.name if isinstance(expr, ColumnRef) else name
        if column not in self.table.schema:
            return None
        return self.table.schema.index_of(column)

    def column_has_nulls(self, name: str) -> Optional[bool]:
        """Does the dimension's data contain real NULLs?  None = unknown."""
        index = self._column_index(name)
        if index is None:
            return None
        return any(row[index] is None for row in self.table)  # type: ignore[union-attr]

    def cardinality(self, name: str) -> Optional[int]:
        """Distinct-value count for a dimension; None = unknown."""
        if name in self.cardinalities:
            return int(self.cardinalities[name])
        index = self._column_index(name)
        if index is None:
            return None
        return len({row[index] for row in self.table})  # type: ignore[union-attr]

    def is_literal_dim(self, name: str) -> bool:
        expr = self.dim_expr(name)
        return isinstance(expr, Literal)


# -- builders ------------------------------------------------------------------


def _resolve_sql_aggregate(call: AggregateCall,
                           registry: AggregateRegistry) -> AggregateInfo:
    """Instantiate a fresh function mirroring the executor's strict-mode
    construction, without touching any shared state."""
    name = call.name
    try:
        if call.distinct:
            if name == "COUNT":
                fn = registry.create("COUNT_DISTINCT")
            else:
                return AggregateInfo(name=f"DISTINCT {name}", function=None,
                                     known=False)
        elif name == "COUNT" and call.argument == "*":
            fn = registry.create("COUNT(*)")
        else:
            fn = registry.create(name, *call.extra_args)
    except UnknownAggregateError:
        return AggregateInfo(name=name, function=None, known=False)
    except Exception:
        # bad extra_args etc. -- not this linter's concern
        return AggregateInfo(name=name, function=None, known=True)
    # SQL runs holistic functions in strict (non-carrying) mode; the
    # instance is fresh, so flipping the flag mutates nothing shared
    from repro.aggregates.holistic import HolisticAggregate
    if isinstance(fn, HolisticAggregate):
        fn.carrying = False
    return AggregateInfo(name=name, function=fn,
                         user_defined=_is_user_defined(fn))


def _is_user_defined(fn: AggregateFunction) -> bool:
    return type(fn).__name__.startswith("UDAF_") \
        or type(fn).__module__.split(".")[0] != "repro"


def _walk_function_calls(expr: Expression):
    """Yield every node of an expression tree (reuses the analysis walker)."""
    from repro.sql.analysis import _walk
    yield from _walk(expr)


def contexts_from_statement(
        statement: Statement, *,
        catalog: Any = None,
        registry: AggregateRegistry | None = None,
        null_mode: NullMode = NullMode.ALL_VALUE,
        blowup_threshold: int = 1_000_000,
        span: tuple[int, int] | None = None,
        statement_index: int | None = None) -> list[LintContext]:
    """One :class:`LintContext` per SELECT in the statement.

    Non-grouped SELECTs still get a context (rules about unknown
    functions and non-grouped outputs apply); grouped ones carry the
    full grouping structure.  ``catalog`` (a
    :class:`~repro.engine.catalog.Catalog` or any ``get(name)``/
    ``__contains__`` mapping of tables) enables the data-dependent
    rules; without it they stay silent.
    """
    from repro.sql.analysis import iter_selects
    registry = registry or default_registry
    contexts: list[LintContext] = []
    first = True
    for select in iter_selects(statement):
        # statement-level ORDER BY is scanned once, with the first
        # (top-level) SELECT, not re-attributed to every subquery
        contexts.append(_context_from_select(
            select, statement if first else None,
            catalog=catalog, registry=registry,
            null_mode=null_mode, blowup_threshold=blowup_threshold,
            span=span, statement_index=statement_index))
        first = False
    return contexts


def _context_from_select(select: SelectStmt,
                         statement: Optional[Statement], *,
                         catalog: Any, registry: AggregateRegistry,
                         null_mode: NullMode, blowup_threshold: int,
                         span: tuple[int, int] | None,
                         statement_index: int | None) -> LintContext:
    group = select.group
    plain: list[str] = []
    rollup: list[str] = []
    cube: list[str] = []
    dim_exprs: list[Optional[Expression]] = []
    if group is not None:
        for bucket, names in ((group.plain, plain),
                              (group.rollup, rollup),
                              (group.cube, cube)):
            for expr, alias in bucket:
                names.append(alias or expr.default_name())
                dim_exprs.append(expr)

    # aggregate calls, GROUPING() calls, scalar function names
    agg_calls: dict[tuple, AggregateCall] = {}
    grouping_calls: list[str] = []
    unknown_functions: list[str] = []
    select_aliases = {item.alias.upper() for item in select.items
                      if item.alias}

    def scan(expr: Expression) -> None:
        from repro.engine.expressions import FunctionCall
        for node in _walk_function_calls(expr):
            if isinstance(node, AggregateCall):
                agg_calls.setdefault(node.key(), node)
            elif isinstance(node, GroupingCall):
                grouping_calls.append(node.column)
            elif isinstance(node, FunctionCall):
                # the Section 4 alias-addressing shorthand makes a
                # select alias callable; anything else must resolve in
                # the scalar-function registry
                name = node.name.upper()
                if name not in node.registry \
                        and name not in select_aliases \
                        and name not in unknown_functions:
                    unknown_functions.append(name)

    roots: list[Expression] = []
    for item in select.items:
        if not isinstance(item.expression, Star):
            roots.append(item.expression)
    if select.having is not None:
        roots.append(select.having)
    if statement is not None:
        for item in statement.order_by:
            roots.append(item.expression)
    for root in roots:
        scan(root)

    aggregates = tuple(_resolve_sql_aggregate(call, registry)
                       for call in agg_calls.values())

    # output references that are neither grouped nor aggregated -- the
    # executor rejects these at plan time; statically they are the
    # Section 3.5 decoration discussion
    nongrouped: list[str] = []
    dim_names = set(plain) | set(rollup) | set(cube)
    if group is not None:
        grouped_sources: set[str] = set(dim_names)
        for expr, alias in group.all_items():
            grouped_sources |= expr.references()
        for item in select.items:
            if isinstance(item.expression, Star):
                continue
            refs = _plain_references(item.expression)
            for name in refs:
                if name not in grouped_sources and name not in nongrouped:
                    nongrouped.append(name)

    table: Optional[Table] = None
    if catalog is not None and select.table is not None:
        try:
            if select.table.name in catalog:
                table = catalog.get(select.table.name)
        except Exception:
            table = None

    return LintContext(
        source="sql",
        plain=tuple(plain), rollup=tuple(rollup), cube=tuple(cube),
        dim_exprs=tuple(dim_exprs),
        aggregates=aggregates,
        algorithm="auto",
        null_mode=null_mode,
        table=table,
        total_rows=len(table) if table is not None else None,
        grouping_calls=tuple(grouping_calls),
        nongrouped_outputs=tuple(nongrouped),
        unknown_functions=tuple(unknown_functions),
        blowup_threshold=blowup_threshold,
        span=span,
        statement_index=statement_index,
    )


def _plain_references(expr: Expression) -> frozenset[str]:
    """Column references outside aggregate arguments and GROUPING()."""
    from repro.engine.expressions import (
        Arithmetic, Between, BooleanExpr, CaseExpr, Comparison, InList,
        IsNull, LikeExpr, NotExpr, FunctionCall,
    )
    if isinstance(expr, (AggregateCall, GroupingCall)):
        return frozenset()
    if isinstance(expr, ColumnRef):
        return frozenset((expr.name,))
    children: list[Expression] = []
    if isinstance(expr, (Arithmetic, Comparison)):
        children = [expr.left, expr.right]
    elif isinstance(expr, BooleanExpr):
        children = list(expr.operands)
    elif isinstance(expr, NotExpr):
        children = [expr.operand]
    elif isinstance(expr, (InList, IsNull, LikeExpr)):
        children = [expr.operand]
    elif isinstance(expr, Between):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.branches:
            children.extend((condition, value))
        if expr.default is not None:
            children.append(expr.default)
    elif isinstance(expr, FunctionCall):
        children = list(expr.args)
    out: frozenset[str] = frozenset()
    for child in children:
        out |= _plain_references(child)
    return out


def _resolve_spec_aggregate(request: Any,
                            registry: AggregateRegistry) -> AggregateInfo:
    """Resolve one programmatic aggregate request without mutating it."""
    from repro.core.cube import AggregateRequest
    from repro.engine.groupby import AggregateSpec

    if isinstance(request, AggregateFunction):
        return AggregateInfo(name=request.name or type(request).__name__,
                             function=request,
                             user_defined=_is_user_defined(request))
    if isinstance(request, AggregateSpec):
        fn = request.function
        return AggregateInfo(name=fn.name or type(fn).__name__, function=fn,
                             user_defined=_is_user_defined(fn))
    if isinstance(request, tuple):
        request = AggregateRequest(*request)
    if isinstance(request, AggregateRequest):
        if isinstance(request.function, AggregateFunction):
            fn = request.function
            return AggregateInfo(name=fn.name or type(fn).__name__,
                                 function=fn,
                                 user_defined=_is_user_defined(fn))
        name = request.function
        lookup = "COUNT(*)" if (name.upper() == "COUNT"
                                and request.input == "*") else name
        try:
            fn = registry.create(lookup, *request.args)
        except UnknownAggregateError:
            return AggregateInfo(name=name, function=None, known=False)
        except Exception:
            return AggregateInfo(name=name, function=None, known=True)
        return AggregateInfo(name=name, function=fn,
                             user_defined=_is_user_defined(fn))
    return AggregateInfo(name=repr(request), function=None, known=False)


def context_from_spec(
        table: Optional[Table],
        dims: Sequence,
        aggregates: Sequence, *,
        kind: str = "cube",
        plain: Sequence[str] = (),
        rollup: Sequence[str] = (),
        cube: Sequence[str] = (),
        algorithm: Any = "auto",
        null_mode: NullMode = NullMode.ALL_VALUE,
        registry: AggregateRegistry | None = None,
        cardinalities: Mapping[str, int] | None = None,
        decorations: Sequence[Decoration] = (),
        maintenance_ops: Sequence[str] = ("select",),
        retain_base: bool = True,
        blowup_threshold: int = 1_000_000) -> LintContext:
    """Build a context from the programmatic cube API's arguments.

    ``dims`` accepts the same forms the cube operators do (names,
    expressions, ``(expression, alias)`` pairs).  Either pass ``kind``
    ("cube" / "rollup" / "groupby", applying to all of ``dims``) or
    explicit ``plain``/``rollup``/``cube`` name lists for compound
    clauses.
    """
    registry = registry or default_registry

    names: list[str] = []
    dim_exprs: list[Optional[Expression]] = []
    for dim in dims:
        if isinstance(dim, str):
            names.append(dim)
            dim_exprs.append(None)
        elif isinstance(dim, tuple):
            expr, alias = dim
            names.append(alias)
            dim_exprs.append(expr)
        else:  # an Expression
            names.append(dim.default_name())
            dim_exprs.append(dim)

    if plain or rollup or cube:
        plain_t, rollup_t, cube_t = tuple(plain), tuple(rollup), tuple(cube)
    elif kind == "rollup":
        plain_t, rollup_t, cube_t = (), tuple(names), ()
    elif kind == "groupby":
        plain_t, rollup_t, cube_t = tuple(names), (), ()
    else:
        plain_t, rollup_t, cube_t = (), (), tuple(names)

    if isinstance(algorithm, str) or algorithm is None:
        algorithm_name = algorithm or "auto"
    else:
        algorithm_name = getattr(algorithm, "name", "") \
            or type(algorithm).__name__

    return LintContext(
        source="maintenance" if set(maintenance_ops) - {"select"}
        else "spec",
        plain=plain_t, rollup=rollup_t, cube=cube_t,
        dim_exprs=tuple(dim_exprs),
        aggregates=tuple(_resolve_spec_aggregate(request, registry)
                         for request in aggregates),
        algorithm=algorithm_name,
        null_mode=null_mode,
        table=table,
        cardinalities=dict(cardinalities or {}),
        total_rows=len(table) if table is not None else None,
        decorations=tuple(decorations),
        maintenance_ops=tuple(maintenance_ops),
        retain_base=retain_base,
        blowup_threshold=blowup_threshold,
    )
