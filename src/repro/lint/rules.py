"""The lint rules -- each one a static restatement of a paper argument.

=====  ======================  =========  ==============================
code   slug                    severity   paper grounding
=====  ======================  =========  ==============================
C001   holistic-merge          error      Section 5: no Iter_super for
                                          holistic functions; only the
                                          2^N-algorithm applies
C002   holistic-under-delete   warn/err   Section 6: MAX/MIN/MEDIAN are
                                          holistic for DELETE
C003   all-null-ambiguity      warning    Section 3.4: NULL-based ALL is
                                          ambiguous with real NULLs
C004   decoration-dependency   error      Section 3.5 / Table 7:
                                          decorations must be
                                          functionally dependent
C005   grouping-non-grouped    error      Section 3.4: GROUPING() only
                                          applies to grouping columns
C006   duplicate-grouping      error      Section 3.2: grouping lists
                                          must not repeat columns
C007   constant-grouping       warning    Section 3: a Ci=1 dimension
                                          doubles the cube for nothing
C008   udaf-no-itersuper       warning    Section 5 / Figure 7: without
                                          Iter_super, super-aggregation
                                          falls back to the
                                          2^N-algorithm
C009   cube-blowup             warning    Section 3: the Π(Ci+1)
                                          cardinality law
C010   unknown-function        error      the name resolves to no
                                          registered aggregate/function
=====  ======================  =========  ==============================

A rule is a function ``rule(ctx) -> Iterable[Diagnostic]`` registered
via :func:`rule`; :data:`RULES` maps code -> :class:`LintRule`.  Rules
must not mutate the context, its table, or any AST node (a property
test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.grouping import GroupingSpec
from repro.core.lattice import CubeLattice
from repro.errors import GroupingError
from repro.lint.context import MERGE_BASED_ALGORITHMS, LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.types import NullMode

__all__ = ["LintRule", "RULES", "rule", "run_rules"]

RuleFn = Callable[[LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule: stable code plus metadata for docs/CLI."""

    code: str
    slug: str
    paper_section: str
    summary: str
    fn: RuleFn

    def apply(self, ctx: LintContext) -> list[Diagnostic]:
        return list(self.fn(ctx))


RULES: dict[str, LintRule] = {}


def rule(code: str, slug: str, paper_section: str,
         summary: str) -> Callable[[RuleFn], RuleFn]:
    def decorate(fn: RuleFn) -> RuleFn:
        RULES[code] = LintRule(code=code, slug=slug,
                               paper_section=paper_section,
                               summary=summary, fn=fn)
        return fn
    return decorate


def run_rules(ctx: LintContext,
              codes: Iterable[str] | None = None) -> list[Diagnostic]:
    """Apply the selected rules (default: all) to one context."""
    selected = [RULES[c] for c in codes] if codes is not None \
        else list(RULES.values())
    out: list[Diagnostic] = []
    for lint_rule in selected:
        out.extend(lint_rule.apply(ctx))
    return out


def _make(ctx: LintContext, registered: LintRule, severity: Severity,
          message: str, *, columns: tuple[str, ...] = (),
          suggestion: str = "") -> Diagnostic:
    return Diagnostic(code=registered.code, severity=severity,
                      message=message, rule=registered.slug,
                      paper_section=registered.paper_section,
                      columns=columns, suggestion=suggestion,
                      span=ctx.span, statement_index=ctx.statement_index)


# -- C001 ----------------------------------------------------------------------


@rule("C001", "holistic-merge", "Section 5",
      "a holistic aggregate cannot run on a merge-based cube algorithm")
def check_holistic_merge(ctx: LintContext) -> Iterator[Diagnostic]:
    """Section 5: "we know of no more efficient way of computing
    super-aggregates of holistic functions than the 2^N-algorithm."  A
    merge-based algorithm (from-core, pipesort, sort, parallel,
    external, array) derives super-aggregates via Iter_super, which a
    holistic function does not have; in strict mode the run would raise
    ``NotMergeableError``, in carrying mode the scratchpad is unbounded.
    """
    if ctx.algorithm not in MERGE_BASED_ALGORITHMS:
        return
    if not ctx.has_super_aggregates:
        return
    for info in ctx.aggregates:
        if info.holistic:
            yield _make(
                ctx, RULES["C001"], Severity.ERROR,
                f"holistic aggregate {info.name} cannot be computed by "
                f"the merge-based {ctx.algorithm!r} algorithm: no "
                "Iter_super exists for holistic functions",
                columns=(info.name,),
                suggestion="use algorithm='2^N' (or 'auto', which "
                           "routes holistic functions to it)")


# -- C002 ----------------------------------------------------------------------


@rule("C002", "holistic-under-delete", "Section 6",
      "the plan maintains a delete-holistic aggregate under DELETE")
def check_holistic_under_delete(ctx: LintContext) -> Iterator[Diagnostic]:
    """Section 6: "max is distributive for SELECT and INSERT, but it is
    holistic for DELETE."  A maintenance plan that must absorb deletes
    of such an aggregate either recomputes cells from retained base data
    (expensive) or -- without retained base data -- fails outright.
    """
    if "delete" not in ctx.maintenance_ops \
            and "update" not in ctx.maintenance_ops:
        return
    for info in ctx.aggregates:
        if not info.delete_holistic:
            continue
        if ctx.retain_base:
            yield _make(
                ctx, RULES["C002"], Severity.WARNING,
                f"{info.name} is holistic under DELETE: every delete of "
                "a cell's extreme value forces recomputation from "
                "retained base data",
                columns=(info.name,),
                suggestion="prefer insert-only maintenance, or budget "
                           "for per-delete recomputation")
        else:
            yield _make(
                ctx, RULES["C002"], Severity.ERROR,
                f"{info.name} is holistic under DELETE and the plan "
                "does not retain base data: deletes will raise "
                "DeleteRequiresRecomputeError",
                columns=(info.name,),
                suggestion="set retain_base=True or drop "
                           f"{info.name} from the maintained cube")


# -- C003 ----------------------------------------------------------------------


@rule("C003", "all-null-ambiguity", "Section 3.4",
      "NULL-based ALL is ambiguous when grouping data contains real NULLs")
def check_all_null_ambiguity(ctx: LintContext) -> Iterator[Diagnostic]:
    """Section 3.4's minimalist design represents ALL as NULL; the paper
    notes this "will not be able to distinguish the NULL ALL value from
    NULL values in the data" unless every consumer checks GROUPING().
    Fires when that representation is selected, a grouping column's data
    actually contains NULLs, and no GROUPING() call discriminates them.
    """
    if ctx.null_mode is not NullMode.NULL_WITH_GROUPING:
        return
    if not ctx.has_super_aggregates:
        return
    for name in ctx.dims:
        if name in ctx.grouping_calls:
            continue
        if ctx.column_has_nulls(name):
            yield _make(
                ctx, RULES["C003"], Severity.WARNING,
                f"grouping column {name!r} contains real NULLs; under "
                "the NULL-based ALL representation its super-aggregate "
                "rows are indistinguishable from the NULL group",
                columns=(name,),
                suggestion=f"select GROUPING({name}) alongside it, or "
                           "use the ALL-value representation")


# -- C004 ----------------------------------------------------------------------


@rule("C004", "decoration-dependency", "Section 3.5",
      "a decoration column must be functionally dependent on grouping "
      "columns")
def check_decoration_dependency(ctx: LintContext) -> Iterator[Diagnostic]:
    """Section 3.5 / Table 7: a decoration is only well-defined when the
    aggregate tuple functionally defines it.  Two checks: (a) declared
    decorations whose data violates determinants -> dependent; (b) SQL
    output columns that are neither grouped nor aggregated (the
    dependency cannot be assumed).
    """
    for name in ctx.nongrouped_outputs:
        yield _make(
            ctx, RULES["C004"], Severity.ERROR,
            f"output column {name!r} is neither grouped nor aggregated; "
            "unless it is functionally dependent on a grouping column "
            "its value is undefined in super-aggregate rows",
            columns=(name,),
            suggestion=f"add {name!r} to GROUP BY, aggregate it, or "
                       "attach it as a verified decoration")
    if ctx.table is None:
        return
    for decoration in ctx.decorations:
        missing = [d for d in decoration.determinants
                   if d not in ctx.table.schema]
        if missing or decoration.name not in ctx.table.schema \
                or callable(decoration.lookup):
            continue
        det_idx = [ctx.table.schema.index_of(d)
                   for d in decoration.determinants]
        dep_idx = ctx.table.schema.index_of(decoration.name)
        seen: dict[tuple, object] = {}
        for row in ctx.table:
            key = tuple(row[i] for i in det_idx)
            value = row[dep_idx]
            if key in seen and seen[key] != value:
                yield _make(
                    ctx, RULES["C004"], Severity.ERROR,
                    f"decoration {decoration.name!r} is not functionally "
                    f"dependent on {list(decoration.determinants)}: "
                    f"key {key!r} maps to both {seen[key]!r} and "
                    f"{value!r}",
                    columns=(decoration.name,) + decoration.determinants,
                    suggestion="group by the decoration column instead, "
                               "or repair the dimension data")
                break
            seen[key] = value


# -- C005 ----------------------------------------------------------------------


@rule("C005", "grouping-non-grouped", "Section 3.4",
      "GROUPING() applied to an expression that is not grouped")
def check_grouping_non_grouped(ctx: LintContext) -> Iterator[Diagnostic]:
    """``GROUPING(col)`` discriminates the ALL rows of a *grouping*
    column (Section 3.4); applied to anything else it has no defined
    value and the executor rejects it at plan time.
    """
    dim_names = set(ctx.dims)
    seen: set[str] = set()
    for column in ctx.grouping_calls:
        if column not in dim_names and column not in seen:
            seen.add(column)
            yield _make(
                ctx, RULES["C005"], Severity.ERROR,
                f"GROUPING({column}) references a column that is not in "
                "the grouping clause",
                columns=(column,),
                suggestion=f"group by {column!r} or drop the "
                           "GROUPING() call")


# -- C006 ----------------------------------------------------------------------


@rule("C006", "duplicate-grouping", "Section 3.2",
      "a column appears more than once across the grouping lists")
def check_duplicate_grouping(ctx: LintContext) -> Iterator[Diagnostic]:
    """The Section 3.2 clause concatenates plain + ROLLUP + CUBE lists
    into one dimension list; a repeated column makes the output schema
    ambiguous and the operators reject it.
    """
    for name in ctx.duplicate_dims:
        yield _make(
            ctx, RULES["C006"], Severity.ERROR,
            f"grouping column {name!r} appears more than once across "
            "the GROUP BY / ROLLUP / CUBE lists",
            columns=(name,),
            suggestion="list each grouping column exactly once")


# -- C007 ----------------------------------------------------------------------


@rule("C007", "constant-grouping", "Section 3",
      "a constant (cardinality-1) column in a CUBE/ROLLUP list")
def check_constant_grouping(ctx: LintContext) -> Iterator[Diagnostic]:
    """By the Π(Ci+1) law a dimension with Ci=1 still contributes a
    factor of 2 to the cube: every cell is duplicated into an ALL twin
    carrying the same value.  A literal or single-valued grouping column
    doubles output and work for no information.
    """
    if ctx.duplicate_dims:
        return  # C006 already fired; cardinality math is moot
    for name in ctx.rollup + ctx.cube:
        if ctx.is_literal_dim(name):
            yield _make(
                ctx, RULES["C007"], Severity.WARNING,
                f"grouping column {name!r} is a constant expression; it "
                "doubles the cube without adding information",
                columns=(name,),
                suggestion=f"remove {name!r} from the grouping lists")
            continue
        cardinality = ctx.cardinality(name)
        total = ctx.total_rows or 0
        if cardinality == 1 and total > 1:
            yield _make(
                ctx, RULES["C007"], Severity.WARNING,
                f"grouping column {name!r} has a single distinct value "
                f"across {total} rows; its ALL rows duplicate the "
                "detail rows",
                columns=(name,),
                suggestion=f"drop {name!r} or move it to the plain "
                           "GROUP BY list")


# -- C008 ----------------------------------------------------------------------


@rule("C008", "udaf-no-itersuper", "Section 5",
      "super-aggregation of a function without Iter_super")
def check_udaf_no_itersuper(ctx: LintContext) -> Iterator[Diagnostic]:
    """Figure 7 extends user-defined aggregates with Iter_super so
    super-aggregates can be computed from sub-aggregates.  A function
    registered without it is treated as holistic: under automatic
    algorithm choice every grouping set is recomputed from base data
    (the 2^N-algorithm), costing N passes instead of one.
    """
    if ctx.algorithm not in ("auto", "2^N"):
        return  # explicit merge algorithms are C001's concern
    if not ctx.has_super_aggregates:
        return
    for info in ctx.aggregates:
        if info.function is None or info.mergeable:
            continue
        if info.user_defined:
            message = (f"user-defined aggregate {info.name} was "
                       "registered without Iter_super (merge_fn); "
                       "super-aggregation falls back to the "
                       "2^N-algorithm")
            suggestion = ("supply merge_fn to make_udaf / "
                          "register_aggregate so the from-core "
                          "algorithms apply")
        else:
            message = (f"holistic aggregate {info.name} has no usable "
                       "Iter_super; super-aggregation requires the "
                       f"2^N-algorithm over {ctx.grouping_set_count} "
                       "grouping sets")
            suggestion = ("consider an algebraic approximation "
                          "(e.g. APPROX_MEDIAN) if a near-answer "
                          "suffices")
        yield _make(ctx, RULES["C008"], Severity.WARNING, message,
                    columns=(info.name,), suggestion=suggestion)


# -- C009 ----------------------------------------------------------------------


@rule("C009", "cube-blowup", "Section 3",
      "the Π(Ci+1) estimate for the cube crosses the blow-up threshold")
def check_cube_blowup(ctx: LintContext) -> Iterator[Diagnostic]:
    """Section 3 warns that "the cube operator can be very expensive":
    for N dimensions of cardinality Ci the full cube holds Π(Ci+1)
    cells.  Using declared or measured cardinalities and the lattice's
    per-grouping-set estimate, warn when the total crosses the
    configured threshold and suggest ROLLUP or a partial cube.
    """
    if not ctx.has_super_aggregates or ctx.duplicate_dims:
        return
    cardinalities: list[int] = []
    for name in ctx.dims:
        cardinality = ctx.cardinality(name)
        if cardinality is None:
            return  # no statistics -> stay silent rather than guess
        cardinalities.append(cardinality)
    try:
        spec = GroupingSpec(plain=ctx.plain, rollup=ctx.rollup,
                            cube=ctx.cube)
        lattice = CubeLattice(ctx.dims, spec.grouping_sets())
    except GroupingError:
        return
    estimate = sum(lattice.estimate_rows(mask, cardinalities)
                   for mask in lattice)
    if estimate <= ctx.blowup_threshold:
        return
    biggest = sorted(zip(cardinalities, ctx.dims), reverse=True)
    ranked = ", ".join(f"{name}={c}" for c, name in biggest[:3])
    yield _make(
        ctx, RULES["C009"], Severity.WARNING,
        f"estimated cube size {estimate} cells exceeds the blow-up "
        f"threshold {ctx.blowup_threshold} "
        f"({len(ctx.dims)} dimensions; largest: {ranked})",
        columns=ctx.dims,
        suggestion="replace CUBE with ROLLUP over the hierarchy, or "
                   "compute a partial cube via grouping_sets_op over "
                   "the sets you actually need")


# -- C010 ----------------------------------------------------------------------


@rule("C010", "unknown-function", "Section 1.2",
      "a function name resolves to no registered aggregate or scalar "
      "function")
def check_unknown_function(ctx: LintContext) -> Iterator[Diagnostic]:
    """The Illustra-style registry (Section 1.2) is the single source of
    aggregate names; a name missing from it fails at plan or evaluation
    time.  Statically: aggregate requests whose name is unknown, and
    DISTINCT applied to a non-COUNT aggregate (unsupported).
    """
    for info in ctx.aggregates:
        if info.known:
            continue
        if info.name.startswith("DISTINCT "):
            yield _make(
                ctx, RULES["C010"], Severity.ERROR,
                f"{info.name.split(' ', 1)[1]}(DISTINCT ...) is not "
                "supported; DISTINCT applies only to COUNT",
                columns=(info.name,),
                suggestion="use COUNT(DISTINCT col) or drop DISTINCT")
        else:
            yield _make(
                ctx, RULES["C010"], Severity.ERROR,
                f"unknown aggregate {info.name!r}: not present in the "
                "aggregate registry",
                columns=(info.name,),
                suggestion="register it via register_aggregate / "
                           "make_udaf, or fix the spelling")
    for name in ctx.unknown_functions:
        yield _make(
            ctx, RULES["C010"], Severity.ERROR,
            f"unknown function {name!r}: not an aggregate, table "
            "function, scalar function, or select alias",
            columns=(name,),
            suggestion="register it (register_aggregate or "
                       "scalar_functions.register) or fix the spelling")
