"""The linter front door.

:class:`Linter` binds a rule selection and configuration; the module-
level helpers (:func:`lint_sql`, :func:`lint_statement`,
:func:`lint_cube_spec`, :func:`lint_maintenance_spec`) cover the three
integration surfaces: the SQL executor / EXPLAIN, the programmatic cube
entry points, and maintenance plans.  :func:`require_clean` is what
``strict=True`` calls: it raises :class:`~repro.errors.LintError` when
any error-severity diagnostic is present.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping, Sequence

from repro.aggregates.registry import AggregateRegistry, default_registry
from repro.core.decorations import Decoration
from repro.engine.table import Table
from repro.errors import LintError, SQLSyntaxError
from repro.lint.context import context_from_spec, contexts_from_statement
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.rules import RULES, run_rules
from repro.sql.ast_nodes import ExplainStmt, Statement
from repro.types import NullMode

__all__ = [
    "Linter",
    "lint_sql",
    "lint_statement",
    "lint_cube_spec",
    "lint_maintenance_spec",
    "require_clean",
    "split_statements",
]

#: Default Π(Ci+1) estimate above which C009 warns.
DEFAULT_BLOWUP_THRESHOLD = 1_000_000


class Linter:
    """A configured rule set.

    ``rules`` selects codes (default all); unknown codes raise
    immediately so CI typos fail loudly.  ``blowup_threshold``
    configures C009.
    """

    def __init__(self, *, rules: Iterable[str] | None = None,
                 registry: AggregateRegistry | None = None,
                 blowup_threshold: int = DEFAULT_BLOWUP_THRESHOLD) -> None:
        if rules is not None:
            rules = tuple(rules)
            unknown = [code for code in rules if code not in RULES]
            if unknown:
                raise LintError([Diagnostic(
                    code="C000", severity=Severity.ERROR,
                    message=f"unknown rule code(s) {unknown}; have "
                            f"{sorted(RULES)}")])
        self.rules = rules
        self.registry = registry or default_registry
        self.blowup_threshold = blowup_threshold

    # -- SQL side ---------------------------------------------------------

    def lint_statement(self, statement: Any, *,
                       catalog: Any = None,
                       null_mode: NullMode = NullMode.ALL_VALUE,
                       span: tuple[int, int] | None = None,
                       statement_index: int | None = None) -> LintReport:
        """Lint one parsed statement (SELECT/UNION or EXPLAIN thereof).

        DML/DDL statements produce an empty report: the rules are about
        aggregation queries and plans.
        """
        report = LintReport()
        if isinstance(statement, ExplainStmt):
            statement = statement.statement
        if not isinstance(statement, Statement):
            return report
        for ctx in contexts_from_statement(
                statement, catalog=catalog, registry=self.registry,
                null_mode=null_mode,
                blowup_threshold=self.blowup_threshold,
                span=span, statement_index=statement_index):
            report.extend(run_rules(ctx, self.rules))
        return report

    def lint_sql(self, text: str, *,
                 catalog: Any = None,
                 null_mode: NullMode = NullMode.ALL_VALUE) -> LintReport:
        """Lint a string of one or more ``;``-separated statements.

        Statements that fail to parse contribute a ``C000`` error
        diagnostic carrying the parser's message and the statement's
        source span, so a lint run never raises on bad input.
        """
        from repro.sql.parser import parse_any
        report = LintReport()
        for index, (start, end, statement_text) in enumerate(
                split_statements(text)):
            try:
                statement = parse_any(statement_text,
                                      registry=self.registry)
            except SQLSyntaxError as error:
                report.append(Diagnostic(
                    code="C000", severity=Severity.ERROR,
                    message=f"parse error: {error}", rule="parse-error",
                    span=(start, end), statement_index=index))
                continue
            report.extend(self.lint_statement(
                statement, catalog=catalog, null_mode=null_mode,
                span=(start, end), statement_index=index))
        return report

    # -- programmatic side ------------------------------------------------

    def lint_cube_spec(self, table: Table | None, dims: Sequence,
                       aggregates: Sequence, *,
                       kind: str = "cube",
                       plain: Sequence[str] = (),
                       rollup: Sequence[str] = (),
                       cube: Sequence[str] = (),
                       algorithm: Any = "auto",
                       null_mode: NullMode = NullMode.ALL_VALUE,
                       cardinalities: Mapping[str, int] | None = None,
                       decorations: Sequence[Decoration] = (),
                       maintenance_ops: Sequence[str] = ("select",),
                       retain_base: bool = True) -> LintReport:
        """Lint a programmatic cube specification (pre-execution)."""
        ctx = context_from_spec(
            table, dims, aggregates, kind=kind, plain=plain,
            rollup=rollup, cube=cube, algorithm=algorithm,
            null_mode=null_mode, registry=self.registry,
            cardinalities=cardinalities, decorations=decorations,
            maintenance_ops=maintenance_ops, retain_base=retain_base,
            blowup_threshold=self.blowup_threshold)
        report = LintReport()
        report.extend(run_rules(ctx, self.rules))
        return report


# -- module-level conveniences -------------------------------------------------


def lint_sql(text: str, *, catalog: Any = None,
             rules: Iterable[str] | None = None,
             null_mode: NullMode = NullMode.ALL_VALUE,
             registry: AggregateRegistry | None = None,
             blowup_threshold: int = DEFAULT_BLOWUP_THRESHOLD) -> LintReport:
    """Lint SQL text; see :meth:`Linter.lint_sql`."""
    return Linter(rules=rules, registry=registry,
                  blowup_threshold=blowup_threshold).lint_sql(
        text, catalog=catalog, null_mode=null_mode)


def lint_statement(statement: Any, *, catalog: Any = None,
                   rules: Iterable[str] | None = None,
                   null_mode: NullMode = NullMode.ALL_VALUE,
                   registry: AggregateRegistry | None = None,
                   blowup_threshold: int = DEFAULT_BLOWUP_THRESHOLD
                   ) -> LintReport:
    """Lint a parsed statement; see :meth:`Linter.lint_statement`."""
    return Linter(rules=rules, registry=registry,
                  blowup_threshold=blowup_threshold).lint_statement(
        statement, catalog=catalog, null_mode=null_mode)


def lint_cube_spec(table: Table | None, dims: Sequence,
                   aggregates: Sequence, **kwargs: Any) -> LintReport:
    """Lint a programmatic cube spec; see :meth:`Linter.lint_cube_spec`."""
    rules = kwargs.pop("rules", None)
    registry = kwargs.pop("registry", None)
    threshold = kwargs.pop("blowup_threshold", DEFAULT_BLOWUP_THRESHOLD)
    return Linter(rules=rules, registry=registry,
                  blowup_threshold=threshold).lint_cube_spec(
        table, dims, aggregates, **kwargs)


def lint_maintenance_spec(table: Table | None, dims: Sequence,
                          aggregates: Sequence, *,
                          kind: str = "cube",
                          operations: Sequence[str] = ("insert", "delete"),
                          retain_base: bool = True,
                          registry: AggregateRegistry | None = None,
                          rules: Iterable[str] | None = None) -> LintReport:
    """Lint a planned :class:`~repro.maintenance.MaterializedCube`.

    ``operations`` lists the mutations the plan must survive; Section
    6's delete-holistic asymmetry (C002) is the headline rule here.
    """
    return Linter(rules=rules, registry=registry).lint_cube_spec(
        table, dims, aggregates, kind=kind,
        maintenance_ops=tuple(operations), retain_base=retain_base)


def require_clean(report: LintReport) -> LintReport:
    """Raise :class:`~repro.errors.LintError` on error-severity findings.

    Returns the report unchanged when it is ok (warnings pass), so
    callers can chain.
    """
    errors = report.errors()
    if errors:
        raise LintError(errors)
    return report


_STRING = re.compile(r"'(?:[^']|'')*'")


def split_statements(text: str) -> list[tuple[int, int, str]]:
    """Split SQL text on ``;`` outside string literals.

    Returns ``(start, end, statement_text)`` character spans; blank
    statements (stray semicolons, trailing whitespace) are dropped.
    """
    # blank out string literals so their semicolons don't split
    masked = _STRING.sub(lambda m: " " * len(m.group(0)), text)
    # strip SQL line comments in the mask as well
    masked = re.sub(r"--[^\n]*",
                    lambda m: " " * len(m.group(0)), masked)
    out: list[tuple[int, int, str]] = []
    start = 0
    for position, char in enumerate(masked):
        if char == ";":
            chunk = text[start:position + 1]
            if chunk.strip(" \t\n\r;"):
                out.append((start, position + 1, chunk))
            start = position + 1
    tail = text[start:]
    if tail.strip(" \t\n\r;"):
        out.append((start, len(text), tail))
    return out
