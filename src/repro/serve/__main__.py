"""``python -m repro.serve`` -- run the query server (or its smoke test).

Default mode binds a TCP port, loads the demo datasets (the paper's
Table 3 sales data plus a synthetic fact table), and serves until
interrupted; ``--asyncio`` swaps the threaded server for the event-loop
front end (:class:`~repro.serve.aio.AsyncQueryServer`).  ``--smoke`` is
the CI driver: it starts an in-process server on an ephemeral port,
hammers it with concurrent clients running a mixed CUBE/ROLLUP/GROUP BY
workload, and exits 0 only if every client's every result matched a
locally computed reference, the cache registered at least one hit, and
shutdown was clean.  ``--smoke --asyncio`` additionally holds
``--smoke-connections`` (default 500) connections open *simultaneously*
and requires that none of them was shed.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.data import SyntheticSpec, synthetic_table
from repro.engine.catalog import Catalog
from repro.serve.aio import AsyncQueryServer
from repro.serve.cache import CachePolicy, CuboidCache
from repro.serve.client import QueryClient
from repro.serve.server import QueryServer
from repro.sql.executor import SQLSession


def _demo_catalog() -> Catalog:
    """The sales demo table plus a synthetic 3-dim fact table."""
    from repro.shell import _DATASETS

    catalog = Catalog()
    for name, loader in _DATASETS.items():
        catalog.register(name.upper(), loader())
    catalog.register("FACTS", synthetic_table(
        SyntheticSpec(cardinalities=(8, 4, 2), n_rows=600, seed=71)))
    return catalog


def _build_server(args: argparse.Namespace, *,
                  use_asyncio: bool = False,
                  max_queue: int | None = None) -> QueryServer:
    policy = CachePolicy(budget_cells=args.cache_budget)
    cls = AsyncQueryServer if use_asyncio else QueryServer
    return cls(
        _demo_catalog(),
        cache=CuboidCache(policy=policy),
        host=args.host, port=args.port,
        max_inflight=args.max_inflight,
        max_queue=max_queue if max_queue is not None else args.max_queue,
        statement_timeout=args.timeout,
        slow_query_ms=args.slow_query_ms,
        ingest_max_ops=args.ingest_max_ops,
        ingest_max_age_s=args.ingest_max_age,
        data_dir=args.data_dir)


#: the smoke workload -- repeated grouped queries over FACTS, designed
#: so later statements are answerable from the first CUBE's cuboids.
_SMOKE_QUERIES = [
    "SELECT d0, d1, d2, SUM(m) FROM FACTS GROUP BY CUBE d0, d1, d2",
    "SELECT d0, d1, SUM(m) FROM FACTS GROUP BY ROLLUP d0, d1",
    "SELECT d0, SUM(m) FROM FACTS GROUP BY d0",
    "SELECT d1, d0, SUM(m) FROM FACTS GROUP BY d1, d0",
    "SELECT d2, SUM(m) FROM FACTS GROUP BY d2",
    "SELECT Model, Year, SUM(Units) FROM SALES GROUP BY ROLLUP Model, Year",
]


def _canonical(table) -> list[str]:
    return sorted(repr(row) for row in table.rows)


def _smoke_client(address: tuple[str, int], queries: list[str],
                  references: dict[str, list[str]],
                  failures: list[str]) -> None:
    try:
        with QueryClient(*address, timeout=30.0) as client:
            for sql in queries:
                result = client.execute(sql)
                if _canonical(result) != references[sql]:
                    failures.append(f"result mismatch for: {sql}")
    except Exception as error:  # noqa: BLE001 -- smoke must report, not die
        failures.append(f"{type(error).__name__}: {error}")


def run_smoke(args: argparse.Namespace) -> int:
    args.port = 0  # ephemeral -- never collide in CI
    server = _build_server(args)

    # reference answers from a plain cache-less session on the same data
    reference_session = SQLSession(_demo_catalog())
    references = {sql: _canonical(reference_session.execute(sql))
                  for sql in _SMOKE_QUERIES}

    n_clients = args.smoke_clients
    failures: list[str] = []
    with server:
        address = server.address
        print(f"smoke: server on {address[0]}:{address[1]}, "
              f"{n_clients} clients")
        threads = []
        for i in range(n_clients):
            # rotate the workload so clients interleave different shapes
            queries = _SMOKE_QUERIES[i % len(_SMOKE_QUERIES):] \
                + _SMOKE_QUERIES[:i % len(_SMOKE_QUERIES)]
            thread = threading.Thread(
                target=_smoke_client,
                args=(address, queries, references, failures),
                name=f"smoke-client-{i}")
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=60.0)
            if thread.is_alive():
                failures.append(f"{thread.name} hung")
        with QueryClient(*address) as client:
            stats = client.stats()
    cache_stats = stats.get("cache", {})
    print(f"smoke: cache stats {cache_stats}")
    querylog_stats = stats.get("querylog", {})
    print(f"smoke: query log {querylog_stats}")
    if args.smoke_querylog:
        from repro.obs.querylog import QUERY_LOG
        QUERY_LOG.write_json_lines(args.smoke_querylog)
        print(f"smoke: query log written to {args.smoke_querylog} "
              f"({len(QUERY_LOG)} records)")
    if not failures and cache_stats.get("hits", 0) < 1:
        failures.append("expected at least one cache hit, got "
                        f"{cache_stats.get('hits', 0)}")
    for failure in failures:
        print(f"smoke: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("smoke: OK -- all clients consistent, cache hit, clean shutdown")
    return 0


#: the ingest smoke's 10:1 read mix -- all answerable from the CUBE
_INGEST_READS = [
    "SELECT d0, SUM(m) FROM FACTS GROUP BY d0",
    "SELECT d1, SUM(m) FROM FACTS GROUP BY d1",
    "SELECT d2, SUM(m) FROM FACTS GROUP BY d2",
    "SELECT d0, d1, SUM(m) FROM FACTS GROUP BY d0, d1",
    "SELECT d0, d2, SUM(m) FROM FACTS GROUP BY d0, d2",
    "SELECT d1, d2, SUM(m) FROM FACTS GROUP BY d1, d2",
    "SELECT d1, d0, SUM(m) FROM FACTS GROUP BY d1, d0",
    "SELECT d0, d1, SUM(m) FROM FACTS GROUP BY ROLLUP d0, d1",
    "SELECT d0, d2, SUM(m) FROM FACTS GROUP BY CUBE d0, d2",
    "SELECT d0, d1, d2, SUM(m) FROM FACTS GROUP BY d0, d1, d2",
]


def run_smoke_ingest(args: argparse.Namespace) -> int:
    """The streaming-ingest smoke: a 10:1 read/write mix through the
    ``ingest`` wire op must keep the cuboid cache hot (hit rate >= 90%
    after the warm-up miss) while every answer stays bit-identical to a
    cache-less reference session tracking the same writes."""
    args.port = 0
    server = _build_server(args)

    reference = SQLSession(_demo_catalog())
    rounds = 15
    failures: list[str] = []
    with server:
        address = server.address
        print(f"ingest-smoke: server on {address[0]}:{address[1]}, "
              f"{rounds} rounds of 1 write + {len(_INGEST_READS)} reads")
        with QueryClient(*address, timeout=30.0) as client:
            client.execute(
                "SELECT d0, d1, d2, SUM(m) FROM FACTS "
                "GROUP BY CUBE d0, d1, d2")  # warm the cache
            for i in range(rounds):
                row = (f"v{i % 8}", f"v{i % 4}", f"v{i % 2}", i)
                outcome = client.ingest("FACTS", inserts=[row],
                                        flush=True)
                if not outcome["flushed"]:
                    failures.append(f"round {i}: flush did not run")
                reference.catalog.insert("FACTS", row)
                for sql in _INGEST_READS:
                    served = _canonical(client.execute(sql))
                    if served != _canonical(reference.execute(sql)):
                        failures.append(f"round {i}: mismatch for {sql}")
            stats = client.stats()
    cache_stats = stats.get("cache", {})
    ingest_stats = stats.get("ingest", {})
    lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
    rate = cache_stats.get("hits", 0) / lookups if lookups else 0.0
    print(f"ingest-smoke: cache stats {cache_stats}")
    print(f"ingest-smoke: ingest stats {ingest_stats}")
    print(f"ingest-smoke: hit rate {rate:.1%}")
    if cache_stats.get("delta_merged", 0) < rounds:
        failures.append(
            f"expected >= {rounds} delta merges, got "
            f"{cache_stats.get('delta_merged', 0)}")
    if rate < 0.9:
        failures.append(f"hit rate {rate:.1%} under the 90% floor -- "
                        "writes are invalidating instead of merging")
    for failure in failures[:20]:
        print(f"ingest-smoke: FAIL {failure}", file=sys.stderr)
    if len(failures) > 20:
        print(f"ingest-smoke: ... and {len(failures) - 20} more",
              file=sys.stderr)
    if failures:
        return 1
    print(f"ingest-smoke: OK -- {rounds} writes delta-merged, hit rate "
          f"{rate:.1%}, bit-identical answers")
    return 0


async def _async_smoke_client(index: int, address: tuple[str, int],
                              queries: list[str],
                              references: dict[str, list[str]],
                              barrier, failures: list[str]) -> None:
    import asyncio
    import json

    from repro.serve import protocol

    reader = writer = None
    try:
        reader, writer = await asyncio.open_connection(
            *address, limit=1 << 20)

        async def call(message: dict) -> dict:
            writer.write(protocol.dump_message(message))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=60.0)
            return json.loads(line)

        pong = await call({"id": 0, "op": "ping"})
        if not pong.get("pong"):
            failures.append(f"client {index}: bad pong {pong}")
        # every connection is open here -- the barrier is what makes
        # the concurrency claim real, not just a connection *rate*
        await barrier.wait()
        for i, sql in enumerate(queries):
            response = await call({"id": i + 1, "op": "query", "sql": sql})
            if not response.get("ok"):
                failures.append(
                    f"client {index}: {response.get('error')} for: {sql}")
                continue
            table = protocol.decode_table(response)
            if _canonical(table) != references[sql]:
                failures.append(f"client {index}: result mismatch: {sql}")
    except Exception as error:  # noqa: BLE001 -- smoke must report, not die
        failures.append(f"client {index}: {type(error).__name__}: {error}")
    finally:
        if writer is not None:
            writer.close()


def run_smoke_async(args: argparse.Namespace) -> int:
    """The asyncio smoke: ``--smoke-connections`` *simultaneous*
    connections (a barrier holds them all open at once), zero sheds
    allowed, every answer bit-identical to a local reference session,
    graceful drain at the end."""
    import asyncio

    from repro.obs.metrics import REGISTRY

    args.port = 0
    n_conns = args.smoke_connections
    # size the queue so the admission contract *allows* every
    # connection's one outstanding statement: with that guarantee, any
    # shed is a server bug, so the smoke requires exactly zero
    server = _build_server(args, use_asyncio=True,
                           max_queue=max(args.max_queue, n_conns + 16))

    reference_session = SQLSession(_demo_catalog())
    references = {sql: _canonical(reference_session.execute(sql))
                  for sql in _SMOKE_QUERIES}
    failures: list[str] = []

    async def drive() -> dict:
        await server.start_async()
        address = server.address
        print(f"smoke(asyncio): server on {address[0]}:{address[1]}, "
              f"{n_conns} simultaneous connections", flush=True)
        barrier = asyncio.Barrier(n_conns)
        tasks = []
        for i in range(n_conns):
            queries = [_SMOKE_QUERIES[(i + j) % len(_SMOKE_QUERIES)]
                       for j in range(2)]
            tasks.append(asyncio.create_task(_async_smoke_client(
                i, address, queries, references, barrier, failures)))
        await asyncio.gather(*tasks)
        stats = server._stats()
        await server.shutdown_async()
        return stats

    stats = asyncio.run(drive())
    sheds = sum(m["value"] for m in REGISTRY.snapshot()
                if m["name"] == "repro_serve_shed_total")
    cache_stats = stats.get("cache", {})
    print(f"smoke(asyncio): cache stats {cache_stats}")
    print(f"smoke(asyncio): query log {stats.get('querylog', {})}")
    print(f"smoke(asyncio): sheds {sheds}")
    if sheds:
        failures.append(f"{sheds} statements shed; the queue was sized "
                        "for zero")
    if not failures and cache_stats.get("hits", 0) < 1:
        failures.append("expected at least one cache hit, got "
                        f"{cache_stats.get('hits', 0)}")
    for failure in failures[:20]:
        print(f"smoke(asyncio): FAIL {failure}", file=sys.stderr)
    if len(failures) > 20:
        print(f"smoke(asyncio): ... and {len(failures) - 20} more",
              file=sys.stderr)
    if failures:
        return 1
    print(f"smoke(asyncio): OK -- {n_conns} concurrent connections, "
          "zero sheds, bit-identical answers, graceful drain")
    return 0


def run_smoke_crash(args: argparse.Namespace) -> int:
    """The crash-recovery smoke (the CI job behind it):

    1. launch a *subprocess* server with a fresh ``--data-dir``, warm
       its cuboid cache over the smoke workload (each query triggers a
       post-query checkpoint);
    2. ``kill -9`` the process mid-workload -- a real SIGKILL, no
       shutdown hook runs;
    3. restart against the same directory and require: cuboids were
       restored, the first repeated query is a cache hit annotated
       ``recovered=True`` in the query log, and every answer is
       bit-identical to a cache-less reference session.
    """
    import os
    import re
    import signal
    import subprocess
    import tempfile
    import time as _time

    data_dir = args.data_dir or tempfile.mkdtemp(prefix="repro-crash-")
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--data-dir", data_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    failures: list[str] = []
    try:
        banner = process.stdout.readline()
        match = re.search(r"on ([\d.]+):(\d+)", banner)
        if not match:
            print(f"crash-smoke: FAIL no banner: {banner!r}",
                  file=sys.stderr)
            return 1
        address = (match.group(1), int(match.group(2)))
        print(f"crash-smoke: phase 1 server pid={process.pid} "
              f"on {address[0]}:{address[1]}, data dir {data_dir}")

        reference_session = SQLSession(_demo_catalog())
        references = {sql: _canonical(reference_session.execute(sql))
                      for sql in _SMOKE_QUERIES}

        with QueryClient(*address, timeout=30.0) as client:
            for sql in _SMOKE_QUERIES:
                result = client.execute(sql)
                if _canonical(result) != references[sql]:
                    failures.append(f"phase-1 mismatch for: {sql}")

        # keep the server busy so the SIGKILL lands mid-workload
        hammer_exit: list[str] = []
        def hammer() -> None:
            try:
                with QueryClient(*address, timeout=30.0) as noisy:
                    while True:
                        for sql in _SMOKE_QUERIES:
                            noisy.execute(sql)
            except Exception as error:  # noqa: BLE001 -- dies with the server
                hammer_exit.append(f"{type(error).__name__}: {error}")

        noise = threading.Thread(target=hammer, daemon=True)
        noise.start()
        _time.sleep(0.3)
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)
        noise.join(timeout=10.0)
        print("crash-smoke: phase 1 killed (SIGKILL mid-workload; "
              f"hammer saw: {hammer_exit or ['no error yet']})")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    # phase 2: restart on the same directory, in-process
    args.port = 0
    args.data_dir = data_dir
    server = _build_server(args)
    if server.restored_entries < 1:
        failures.append("phase-2 restored no cuboid cache entries")
    print(f"crash-smoke: phase 2 restored "
          f"{server.restored_entries} cuboid(s)")
    with server:
        address = server.address
        with QueryClient(*address, timeout=30.0) as client:
            for sql in _SMOKE_QUERIES:
                result = client.execute(sql)
                if _canonical(result) != references[sql]:
                    failures.append(f"phase-2 mismatch for: {sql}")
            stats = client.stats()
            records = client.log(n=len(_SMOKE_QUERIES) * 2)
    hits = stats.get("cache", {}).get("hits", 0)
    if hits < 1:
        failures.append(f"phase-2 expected a warm-cache hit, got {hits}")
    recovered_hits = [r for r in records.get("records", [])
                      if r.get("recovered")]
    if not recovered_hits:
        failures.append("no query-log record was annotated "
                        "recovered=True after the warm restart")
    print(f"crash-smoke: phase 2 cache hits={hits}, "
          f"recovered-annotated records={len(recovered_hits)}")
    for failure in failures:
        print(f"crash-smoke: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("crash-smoke: OK -- warm restart, recovered hit, "
          "bit-identical answers")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the demo catalog over the JSON wire protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7432,
                        help="TCP port (0 for ephemeral)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="statements executing concurrently")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="statements waiting for admission")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-statement deadline in seconds")
    parser.add_argument("--cache-budget", type=int, default=None,
                        help="cuboid cache budget in cells")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="mark statements at/over this latency as "
                             "slow (repro_slow_queries_total)")
    parser.add_argument("--data-dir", default=None,
                        help="durable data directory: checkpoint the "
                             "cuboid cache there and restore it on "
                             "restart (warm first queries)")
    parser.add_argument("--asyncio", action="store_true",
                        help="serve through the asyncio front end "
                             "(one event loop, no thread per "
                             "connection); with --smoke, run the "
                             "concurrent-connection smoke instead")
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI smoke workload and exit")
    parser.add_argument("--smoke-crash", action="store_true",
                        help="run the crash-recovery smoke: warm a "
                             "durable server, kill -9 it mid-workload, "
                             "restart on the same --data-dir, and "
                             "require a warm-cache hit with "
                             "bit-identical answers")
    parser.add_argument("--smoke-ingest", action="store_true",
                        help="run the streaming-ingest smoke: a 10:1 "
                             "read/write mix through the ingest op must "
                             "keep the cache hot (>= 90% hit rate) with "
                             "bit-identical answers")
    parser.add_argument("--ingest-max-ops", type=int, default=256,
                        help="ingest buffer flush threshold (ops)")
    parser.add_argument("--ingest-max-age", type=float, default=0.5,
                        help="ingest buffer flush age in seconds")
    parser.add_argument("--smoke-clients", type=int, default=8,
                        help="concurrent clients in --smoke mode")
    parser.add_argument("--smoke-connections", type=int, default=500,
                        help="simultaneous connections in "
                             "--smoke --asyncio mode")
    parser.add_argument("--smoke-querylog", metavar="PATH", default=None,
                        help="in --smoke mode, write the query log as "
                             "JSON lines to PATH (CI artifact)")
    args = parser.parse_args(argv)

    if args.smoke_crash:
        return run_smoke_crash(args)
    if args.smoke_ingest:
        return run_smoke_ingest(args)
    if args.smoke and getattr(args, "asyncio", False):
        return run_smoke_async(args)
    if args.smoke:
        return run_smoke(args)

    if getattr(args, "asyncio", False):
        server = _build_server(args, use_asyncio=True)
        if args.data_dir is not None:
            print(f"durable: data dir {args.data_dir}, "
                  f"{server.restored_entries} cuboid(s) restored",
                  flush=True)
        server.run()  # prints its own banner; drains on SIGTERM
        return 0

    server = _build_server(args)
    server.start()
    host, port = server.address
    print(f"repro query server on {host}:{port} "
          f"(tables: {', '.join(server.catalog.names())})")
    if server.store is not None:
        print(f"durable: data dir {args.data_dir}, "
              f"{server.restored_entries} cuboid(s) restored")
    print("Ctrl-C to stop.")
    server.serve_forever()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
