"""``python -m repro.serve`` -- run the query server (or its smoke test).

Default mode binds a TCP port, loads the demo datasets (the paper's
Table 3 sales data plus a synthetic fact table), and serves until
interrupted.  ``--smoke`` is the CI driver: it starts an in-process
server on an ephemeral port, hammers it with concurrent clients running
a mixed CUBE/ROLLUP/GROUP BY workload, and exits 0 only if every
client's every result matched a locally computed reference, the cache
registered at least one hit, and shutdown was clean.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.data import SyntheticSpec, synthetic_table
from repro.engine.catalog import Catalog
from repro.serve.cache import CachePolicy, CuboidCache
from repro.serve.client import QueryClient
from repro.serve.server import QueryServer
from repro.sql.executor import SQLSession


def _demo_catalog() -> Catalog:
    """The sales demo table plus a synthetic 3-dim fact table."""
    from repro.shell import _DATASETS

    catalog = Catalog()
    for name, loader in _DATASETS.items():
        catalog.register(name.upper(), loader())
    catalog.register("FACTS", synthetic_table(
        SyntheticSpec(cardinalities=(8, 4, 2), n_rows=600, seed=71)))
    return catalog


def _build_server(args: argparse.Namespace) -> QueryServer:
    policy = CachePolicy(budget_cells=args.cache_budget)
    return QueryServer(
        _demo_catalog(),
        cache=CuboidCache(policy=policy),
        host=args.host, port=args.port,
        max_inflight=args.max_inflight, max_queue=args.max_queue,
        statement_timeout=args.timeout,
        slow_query_ms=args.slow_query_ms)


#: the smoke workload -- repeated grouped queries over FACTS, designed
#: so later statements are answerable from the first CUBE's cuboids.
_SMOKE_QUERIES = [
    "SELECT d0, d1, d2, SUM(m) FROM FACTS GROUP BY CUBE d0, d1, d2",
    "SELECT d0, d1, SUM(m) FROM FACTS GROUP BY ROLLUP d0, d1",
    "SELECT d0, SUM(m) FROM FACTS GROUP BY d0",
    "SELECT d1, d0, SUM(m) FROM FACTS GROUP BY d1, d0",
    "SELECT d2, SUM(m) FROM FACTS GROUP BY d2",
    "SELECT Model, Year, SUM(Units) FROM SALES GROUP BY ROLLUP Model, Year",
]


def _canonical(table) -> list[str]:
    return sorted(repr(row) for row in table.rows)


def _smoke_client(address: tuple[str, int], queries: list[str],
                  references: dict[str, list[str]],
                  failures: list[str]) -> None:
    try:
        with QueryClient(*address, timeout=30.0) as client:
            for sql in queries:
                result = client.execute(sql)
                if _canonical(result) != references[sql]:
                    failures.append(f"result mismatch for: {sql}")
    except Exception as error:  # noqa: BLE001 -- smoke must report, not die
        failures.append(f"{type(error).__name__}: {error}")


def run_smoke(args: argparse.Namespace) -> int:
    args.port = 0  # ephemeral -- never collide in CI
    server = _build_server(args)

    # reference answers from a plain cache-less session on the same data
    reference_session = SQLSession(_demo_catalog())
    references = {sql: _canonical(reference_session.execute(sql))
                  for sql in _SMOKE_QUERIES}

    n_clients = args.smoke_clients
    failures: list[str] = []
    with server:
        address = server.address
        print(f"smoke: server on {address[0]}:{address[1]}, "
              f"{n_clients} clients")
        threads = []
        for i in range(n_clients):
            # rotate the workload so clients interleave different shapes
            queries = _SMOKE_QUERIES[i % len(_SMOKE_QUERIES):] \
                + _SMOKE_QUERIES[:i % len(_SMOKE_QUERIES)]
            thread = threading.Thread(
                target=_smoke_client,
                args=(address, queries, references, failures),
                name=f"smoke-client-{i}")
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=60.0)
            if thread.is_alive():
                failures.append(f"{thread.name} hung")
        with QueryClient(*address) as client:
            stats = client.stats()
    cache_stats = stats.get("cache", {})
    print(f"smoke: cache stats {cache_stats}")
    querylog_stats = stats.get("querylog", {})
    print(f"smoke: query log {querylog_stats}")
    if args.smoke_querylog:
        from repro.obs.querylog import QUERY_LOG
        QUERY_LOG.write_json_lines(args.smoke_querylog)
        print(f"smoke: query log written to {args.smoke_querylog} "
              f"({len(QUERY_LOG)} records)")
    if not failures and cache_stats.get("hits", 0) < 1:
        failures.append("expected at least one cache hit, got "
                        f"{cache_stats.get('hits', 0)}")
    for failure in failures:
        print(f"smoke: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("smoke: OK -- all clients consistent, cache hit, clean shutdown")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the demo catalog over the JSON wire protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7432,
                        help="TCP port (0 for ephemeral)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="statements executing concurrently")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="statements waiting for admission")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-statement deadline in seconds")
    parser.add_argument("--cache-budget", type=int, default=None,
                        help="cuboid cache budget in cells")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="mark statements at/over this latency as "
                             "slow (repro_slow_queries_total)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI smoke workload and exit")
    parser.add_argument("--smoke-clients", type=int, default=8,
                        help="concurrent clients in --smoke mode")
    parser.add_argument("--smoke-querylog", metavar="PATH", default=None,
                        help="in --smoke mode, write the query log as "
                             "JSON lines to PATH (CI artifact)")
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args)

    server = _build_server(args)
    server.start()
    host, port = server.address
    print(f"repro query server on {host}:{port} "
          f"(tables: {', '.join(server.catalog.names())})")
    print("Ctrl-C to stop.")
    server.serve_forever()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
