"""Line-delimited JSON wire protocol for the query server.

One request or response per line, UTF-8 JSON.  Requests:

    {"id": 1, "op": "query", "sql": "SELECT ..."}
    {"id": 2, "op": "ping"}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "close"}

Responses mirror the id:

    {"id": 1, "ok": true, "columns": [{"name": ..., "dtype": ...}],
     "rows": [[...], ...], "elapsed_ms": 1.2}
    {"id": 1, "ok": false,
     "error": {"type": "SQLSyntaxError", "message": "..."}}

The paper's ALL value is not JSON; it travels as the tagged object
``{"$": "ALL"}`` and is decoded back to the :data:`repro.types.ALL`
singleton, so a CUBE result round-trips bit-identically.  Dates,
timestamps, and other non-JSON scalars travel as strings (the engine's
ANY-typed columns accept them back).
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from repro.analysis import locktrack
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import ServeError
from repro.types import ALL, DataType

__all__ = [
    "decode_rows",
    "decode_table",
    "decode_value",
    "dump_message",
    "encode_rows",
    "encode_table",
    "encode_value",
    "parse_message",
    "read_message",
    "write_message",
]

_ALL_TAG = {"$": "ALL"}
_JSON_SCALARS = (str, int, float, bool, type(None))


def encode_value(value: Any) -> Any:
    """One cell to its JSON form (ALL -> tagged object)."""
    if value is ALL:
        return dict(_ALL_TAG)
    if isinstance(value, _JSON_SCALARS):
        return value
    return str(value)  # dates, decimals, ... -- stringly but lossless
    # enough for display; typed columns re-parse on their own terms


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` for the ALL tag."""
    if isinstance(value, dict) and value.get("$") == "ALL":
        return ALL
    return value


def encode_rows(rows: Any) -> list:
    """Bare rows (ingest payloads) to their JSON form, cell by cell."""
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(payload: Any) -> list[tuple]:
    """Inverse of :func:`encode_rows`; validates the list-of-rows shape
    (the ingest op feeds these straight into the catalog)."""
    if not isinstance(payload, list):
        raise ServeError("ingest rows must be a list of rows")
    rows = []
    for row in payload:
        if not isinstance(row, (list, tuple)):
            raise ServeError("each ingest row must be a list of values")
        rows.append(tuple(decode_value(v) for v in row))
    return rows


def encode_table(table: Table) -> dict:
    return {
        "columns": [{"name": column.name, "dtype": column.dtype.value}
                    for column in table.schema.columns],
        "rows": [[encode_value(v) for v in row] for row in table],
    }


def decode_table(payload: dict) -> Table:
    columns = []
    for spec in payload["columns"]:
        try:
            dtype = DataType(spec["dtype"])
        except ValueError:
            dtype = DataType.ANY
        columns.append(Column(spec["name"], dtype, all_allowed=True))
    rows = [tuple(decode_value(v) for v in row)
            for row in payload["rows"]]
    return Table(Schema(columns), rows, validate=False)


def dump_message(message: dict) -> bytes:
    """One message as its wire bytes (JSON line, newline-terminated)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_message(line: bytes) -> dict | None:
    """One received line to a message dict.

    ``None`` for an empty read (cleanly closed connection), ``{}`` for
    a blank line -- identical framing for the threaded and asyncio
    front ends, which both feed raw ``readline`` output here.
    """
    if not line:
        return None
    line = line.strip()
    if not line:
        return {}
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ServeError(f"malformed wire message: {error}") from None
    if not isinstance(message, dict):
        raise ServeError(
            f"wire message must be a JSON object, got {type(message).__name__}")
    return message


def write_message(stream: BinaryIO, message: dict) -> None:
    locktrack.note_blocking("write_message")
    stream.write(dump_message(message))
    stream.flush()


def read_message(stream: BinaryIO) -> dict | None:
    """The next message, or ``None`` on a cleanly closed connection."""
    locktrack.note_blocking("read_message")
    return parse_message(stream.readline())
