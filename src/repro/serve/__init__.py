"""Query serving: concurrent sessions + the semantic cuboid cache.

The subsystem where queries, caching, maintenance, resilience, and
observability meet:

- :class:`CuboidCache` -- the lattice-aware semantic cache; answers
  CUBE/ROLLUP/GROUP BY queries from cached cuboids by Iter_super
  re-aggregation (:mod:`repro.serve.cache`);
- :class:`QueryServer` / :class:`QueryClient` -- the threaded TCP
  service and its line-delimited-JSON client
  (:mod:`repro.serve.server`, :mod:`repro.serve.client`);
- :class:`AsyncQueryServer` -- the asyncio front end: same protocol,
  admission contract, and durability, one event loop instead of a
  thread per connection (:mod:`repro.serve.aio`);
- ``python -m repro.serve`` -- the CLI entry point (also hosts the CI
  smoke drivers: ``--smoke``, optionally ``--asyncio``).

See ``docs/SERVING.md`` for the protocol, the cache policy, and the
containment rules.
"""

from repro.serve.aio import AsyncAdmissionController, AsyncQueryServer
from repro.serve.cache import CacheEntry, CachePolicy, CuboidCache
from repro.serve.client import QueryClient
from repro.serve.server import (
    AdmissionController,
    QueryServer,
    VersionedRWLock,
    classify_statement,
)

__all__ = [
    "AdmissionController",
    "AsyncAdmissionController",
    "AsyncQueryServer",
    "CacheEntry",
    "CachePolicy",
    "CuboidCache",
    "QueryClient",
    "QueryServer",
    "VersionedRWLock",
    "classify_statement",
]
