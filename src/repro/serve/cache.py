"""The semantic cuboid cache: answer cube queries from cached cuboids.

Gray et al. §5's taxonomy is what makes answer reuse *sound*: for
distributive and algebraic aggregates, a coarser grouping set is an
``Iter_super`` fold over a finer cuboid, so a cached CUBE (or even a
plain GROUP BY core) can answer any later query whose grouping sets are
coarser-or-equal -- the containment/usability test Vassiliadis
formalizes for cube algebras.  Holistic aggregates (strict mode keeps
no mergeable scratchpad) can never be re-aggregated, so they bypass.

An entry is keyed **semantically**, not textually:

- the *source signature* -- the base/joined table names with their
  catalog versions, the WHERE predicate's structural repr, the join
  shape, and the ordered table-function keys.  A version moves on every
  DML through the catalog, so stale entries can never match again
  (explicit :meth:`CuboidCache.invalidate_table` additionally frees
  their memory immediately);
- the *dimension signatures* -- structural reprs of the grouping
  expressions, order-insensitive (a request's dims may be any subset,
  in any order, under any aliases);
- the *aggregate signatures* -- ``AggregateCall.key()`` tuples,
  subset-matched the same way.

The answering engine is :class:`~repro.compute.PartialCube` (the HRU
machinery): a miss that passes admission *computes the query through
it* -- one base scan builds the core plus the requested grouping sets,
the request is answered from those views, and the materialized handles
stay resident as the cache entry.  A later hit folds the cheapest
materialized ancestor instead of rescanning the fact table, which is
where the >=5x rows-scanned win comes from
(``repro_view_rows_scanned_total`` vs ``repro_cube_rows_scanned_total``).

Space is governed by the resilience cell accountant
(:class:`~repro.resilience.ExecutionContext`): every admitted entry
charges its materialized cells, and when residency exceeds the policy
budget, entries are evicted by **benefit-weighted LRU** -- lowest
``(hits+1) * benefit_per_hit / cells`` first, oldest use breaking ties
-- until the budget holds.

Thread safety: one re-entrant lock serializes probes, builds, and
invalidation; per-connection sessions in :mod:`repro.serve.server`
share a single cache instance behind it.
"""

from __future__ import annotations

import contextlib
import copy
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from repro.analysis import locktrack
from repro.compute.view_selection import PartialCube
from repro.core.grouping import Mask
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.errors import (
    DeltaRequiresInvalidationError,
    NotMergeableError,
    ResourceBudgetExceededError,
    ServeError,
)
from repro.obs import instrument, querylog, trace
from repro.resilience import context as rctx
from repro.resilience.context import ExecutionContext

__all__ = ["CachePolicy", "CacheEntry", "CuboidCache"]

#: A query's source signature: ((table, version), ...), WHERE repr,
#: join shape, ordered table-function keys.  Built by the SQL executor.
SourceSignature = tuple


@dataclass(frozen=True)
class CachePolicy:
    """Admission and eviction knobs.

    ``min_rows`` refuses to cache queries over tiny tables (the rescan
    is cheaper than the bookkeeping); ``admit_max_cells`` refuses
    cuboids whose materialized handles are too large to be worth
    keeping; ``max_dims`` bounds the lattice width a single entry may
    span; ``budget_cells`` is the cache-wide residency budget enforced
    by benefit-weighted LRU eviction (``None`` = unbounded).
    """

    min_rows: int = 0
    admit_max_cells: Optional[int] = None
    max_dims: int = 8
    budget_cells: Optional[int] = None


@dataclass
class CacheEntry:
    """One cached cuboid: the signatures it matches plus its engine."""

    source: SourceSignature
    dim_sigs: tuple[str, ...]
    dim_names: tuple[str, ...]
    agg_sigs: tuple[tuple, ...]
    agg_names: tuple[str, ...]
    engine: PartialCube
    cells: int
    base_rows: int
    hits: int = 0
    last_used: int = 0
    #: entry restored from a durable checkpoint rather than computed
    #: in this process; hits on it annotate the query log with
    #: ``recovered=True``
    recovered: bool = False
    dim_pos: dict = field(default_factory=dict)
    agg_pos: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dim_pos = {sig: i for i, sig in enumerate(self.dim_sigs)}
        self.agg_pos = {sig: i for i, sig in enumerate(self.agg_sigs)}

    @property
    def benefit_per_hit(self) -> int:
        """Base rows a hit avoids rescanning (floor 1: any hit beats
        nothing)."""
        return max(self.base_rows - self.cells, 1)

    def score(self) -> float:
        """Eviction score: expected saved work per resident cell."""
        return (self.hits + 1) * self.benefit_per_hit / max(self.cells, 1)

    def can_answer(self, source: SourceSignature,
                   dim_sigs: Sequence[str],
                   agg_sigs: Sequence[tuple]) -> bool:
        """Containment: same source, request dims/aggs are subsets."""
        return (self.source == source
                and all(sig in self.dim_pos for sig in dim_sigs)
                and all(sig in self.agg_pos for sig in agg_sigs))

    def translate_mask(self, mask: Mask,
                       dim_sigs: Sequence[str]) -> Mask:
        """Map a request-side mask (bit i = request dim i grouped) onto
        this entry's dimension positions."""
        out = 0
        for i, sig in enumerate(dim_sigs):
            if mask & (1 << i):
                out |= 1 << self.dim_pos[sig]
        return out


class CuboidCache:
    """The shared, lattice-aware semantic cache (see module docstring).

    ``serve`` is the single entry point the SQL executor probes; it
    returns the answer table on a hit *or* on an admissible miss (the
    miss computes through :class:`PartialCube`, and the result both
    answers the query and becomes the entry), and ``None`` when the
    query must take the normal planning path (holistic aggregates,
    duplicate signatures, admission refusal, budget breach mid-build).
    """

    def __init__(self, policy: CachePolicy | None = None) -> None:
        self.policy = policy if policy is not None else CachePolicy()
        self._lock = threading.RLock()
        self._entries: dict[tuple, CacheEntry] = {}
        self._clock = 0
        # the resilience cell accountant doubles as the space meter;
        # no budget on the context itself -- eviction enforces ours
        self._accountant = ExecutionContext()
        self.counters = {"hits": 0, "misses": 0, "bypasses": 0,
                         "admitted": 0, "rejected": 0,
                         "evicted_space": 0, "evicted_invalidated": 0,
                         "delta_merged": 0, "delta_invalidated": 0}
        # (cube -> watched table names) so repeated watch() calls never
        # stack duplicate mutation listeners; weak keys let a dropped
        # cube's registration disappear with it
        self._watched: "weakref.WeakKeyDictionary[Any, set[str]]" = (
            weakref.WeakKeyDictionary())

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """The cache lock with lock-order sanitizer bookkeeping.

        Re-entrant like the RLock it wraps; the sanitizer recognises
        nested acquires and records no self-edge."""
        with self._lock:
            locktrack.note_acquire("serve.cache")
            try:
                yield
            finally:
                locktrack.note_release("serve.cache")

    # -- public surface ----------------------------------------------------

    def serve(self, *, table: Table, source: SourceSignature,
              dim_items: Sequence, dim_sigs: Sequence[str],
              dim_names: Sequence[str], specs: Sequence,
              agg_sigs: Sequence[tuple], agg_names: Sequence[str],
              masks: Sequence[Mask]) -> Optional[Table]:
        """Answer a grouped query from the cache, or compute-and-admit.

        Returns the grouped relation (dims in request order under
        request names, then aggregates) or ``None`` for bypass."""
        dim_sigs = tuple(dim_sigs)
        agg_sigs = tuple(agg_sigs)
        querylog.annotate(
            signature=querylog.cuboid_signature(dim_sigs, agg_sigs))
        if self._bypasses(dim_sigs, agg_sigs, specs):
            self.counters["bypasses"] += 1
            instrument.record_cache_lookup("bypass")
            querylog.annotate(cache="bypass")
            return None
        with self._locked():
            self._clock += 1
            entry = self._probe(source, dim_sigs, agg_sigs)
            if entry is not None:
                return self._answer_hit(entry, dim_sigs, dim_names,
                                        agg_sigs, agg_names, masks)
            return self._answer_miss(table, source, dim_items, dim_sigs,
                                     dim_names, specs, agg_sigs,
                                     agg_names, masks)

    def invalidate_table(self, name: str) -> int:
        """Drop every entry derived from ``name``; returns the count.

        Version-keyed signatures already make stale entries unmatchable;
        this frees their memory eagerly (DML hooks and
        :meth:`watch` listeners call it)."""
        key = name.upper()
        dropped = 0
        with self._locked():
            for entry_key in list(self._entries):
                entry = self._entries[entry_key]
                if any(table_name == key
                       for table_name, _ in entry.source[0]):
                    self._evict(entry_key, reason="invalidated")
                    dropped += 1
        return dropped

    def watch(self, cube: Any, table_name: str) -> None:
        """Invalidate ``table_name``'s entries whenever the
        :class:`~repro.maintenance.MaterializedCube` mutates (its base
        table changes outside SQL DML).

        Idempotent per (cube, table): re-watching an already-watched
        pair registers nothing, so one mutation fires exactly one
        invalidation no matter how many times callers wired it up."""
        key = table_name.upper()
        with self._locked():
            watched = self._watched.setdefault(cube, set())
            if key in watched:
                return
            watched.add(key)
        cube.add_mutation_listener(
            lambda op: self.invalidate_table(key))

    def apply_delta(self, table_name: str, inserts: Sequence[tuple] = (),
                    deletes: Sequence[tuple] = (), *,
                    catalog: Any,
                    base_version: Optional[int] = None) -> dict[str, int]:
        """Fold a committed DML batch into every entry over ``table_name``
        instead of dropping them (Section 6 maintenance at the cache).

        ``inserts``/``deletes`` are raw source rows in the table's
        schema order; the catalog must already hold the batch, because
        surviving entries are re-keyed to its *post-batch* versions (the
        version-keyed source signature is what makes them matchable
        again).  Per entry the outcome is one of:

        - **merged** -- every aggregate absorbed the delta (insert
          folds, supported unapplies), the entry stays hot;
        - **invalidated** -- the entry is delta-ineligible (WHERE /
          join / table-function sources: delta rows cannot be filtered
          here) or a delete hit a delete-holistic scratchpad
          (:class:`~repro.errors.DeltaRequiresInvalidationError`); it
          is evicted exactly as :meth:`invalidate_table` would.

        ``base_version`` is the table's catalog version *before* the
        batch was applied.  When given, an entry whose stored version
        differs is invalidated rather than merged: it missed an earlier
        batch (a crashed flush, direct table mutation) and folding this
        delta into it would manufacture a state that never existed.

        Returns ``{"merged": n, "invalidated": m}`` and annotates the
        active query-log record with ``delta_merged`` so EXPLAIN
        ANALYZE and the ingest wire op surface the decision.
        """
        key = table_name.upper()
        merged = invalidated = 0
        with self._locked():
            with trace.span("cache.delta", table=key,
                            inserts=len(inserts),
                            deletes=len(deletes)) as span:
                for entry_key in list(self._entries):
                    entry = self._entries.get(entry_key)
                    if entry is None or all(
                            name != key for name, _ in entry.source[0]):
                        continue
                    if self._merge_delta(key, entry_key, entry, inserts,
                                         deletes, catalog=catalog,
                                         base_version=base_version):
                        merged += 1
                    else:
                        invalidated += 1
                self.counters["delta_merged"] += merged
                self.counters["delta_invalidated"] += invalidated
                span.set(merged=merged, invalidated=invalidated)
        querylog.annotate(delta_merged=merged > 0)
        return {"merged": merged, "invalidated": invalidated}

    def _delta_eligible(self, entry: CacheEntry) -> bool:
        """Entries a raw-row delta can be folded into: single-table
        sources with no WHERE/join/table-function shape (delta rows
        cannot be predicate-filtered at the cache), answered by an
        engine that kept its per-cell counts."""
        tables, where_sig, joins, tf_keys = entry.source
        if len(tables) != 1 or where_sig or joins or tf_keys:
            return False
        return isinstance(getattr(entry.engine, "_counts", None), dict)

    def _merge_delta(self, table_key: str, entry_key: tuple,
                     entry: CacheEntry,
                     inserts: Sequence[tuple], deletes: Sequence[tuple],
                     *, catalog: Any,
                     base_version: Optional[int] = None) -> bool:
        """Merge one entry (True) or evict it (False); lock held."""
        stored_version = dict(entry.source[0]).get(table_key)
        stale = (base_version is not None
                 and stored_version != base_version)
        if stale or not self._delta_eligible(entry):
            self._evict(entry_key, reason="invalidated")
            instrument.record_cache_delta("invalidated")
            return False
        try:
            ctx = rctx.current_context()
            if ctx is None:
                entry.engine.apply_delta(inserts, deletes)
            else:
                # restore the statement's resident count afterwards:
                # merged cells live on the cache accountant, not the
                # ingest request's budget
                with ctx.attempt():
                    entry.engine.apply_delta(inserts, deletes)
        except (DeltaRequiresInvalidationError,
                ResourceBudgetExceededError):
            self._evict(entry_key, reason="invalidated")
            instrument.record_cache_delta("invalidated")
            return False
        # re-key the entry to the post-batch catalog versions
        del self._entries[entry_key]
        self._accountant.release_cells(entry.cells)
        tables = tuple(
            (name, catalog.version(name) if name == table_key else version)
            for name, version in entry.source[0])
        entry.source = (tables,) + tuple(entry.source[1:])
        entry.cells = entry.engine.materialized_rows
        entry.base_rows = max(
            0, entry.base_rows + len(inserts) - len(deletes))
        new_key = (entry.source, entry.dim_sigs, entry.agg_sigs)
        self._entries[new_key] = entry
        self._accountant.charge_cells(entry.cells)
        self._enforce_budget(keep=new_key)
        instrument.set_cache_resident_cells(
            self._accountant.resident_cells)
        instrument.record_cache_delta("merged")
        return True

    def stats(self) -> dict:
        with self._locked():
            return {**self.counters,
                    "entries": len(self._entries),
                    "resident_cells": self._accountant.resident_cells}

    @property
    def change_token(self) -> int:
        """Monotone token that moves whenever the entry set changes
        (admissions + evictions); the server checkpoints the cache
        only when it has moved since the last checkpoint."""
        with self._locked():
            return (self.counters["admitted"]
                    + self.counters["evicted_space"]
                    + self.counters["evicted_invalidated"]
                    + self.counters["delta_merged"])

    # -- durable checkpointing ---------------------------------------------

    def dump_state(self) -> bytes:
        """Serialize the resident entries for a durable checkpoint.

        The entry list is snapshotted under the lock; the expensive
        pickling happens *outside* it (the serve package never blocks
        other statements on I/O-sized work while holding a lock).  The
        answering engines are pickled with their base rows trimmed --
        :meth:`PartialCube.answer_with_cost` folds materialized views
        only, never task rows -- so a checkpoint carries cuboids, not
        a copy of the fact table.  Entries whose scratchpads do not
        pickle (exotic UDAFs) are skipped, not fatal.
        """
        import dataclasses
        import pickle

        with self._locked():
            entries = list(self._entries.values())
        payload = []
        for entry in entries:
            engine = copy.copy(entry.engine)
            engine._task = dataclasses.replace(engine._task, rows=[])
            slim = dataclasses.replace(entry, engine=engine, hits=0)
            try:
                payload.append(pickle.dumps(slim, protocol=4))
            except Exception:  # noqa: BLE001 -- arbitrary user handles
                continue
        return pickle.dumps(payload, protocol=4)

    def restore_state(self, blob: bytes, *, catalog: Any) -> int:
        """Re-admit checkpointed entries; returns how many landed.

        Each entry is unpickled defensively and validated against the
        live catalog: every ``(table, version)`` in its source
        signature must match the catalog's current version, otherwise
        the table changed (or does not exist) since the checkpoint and
        the cuboid is silently dropped -- the containment key makes a
        stale entry unmatchable anyway, so dropping it just saves the
        memory.  Restored entries are marked ``recovered`` and start
        cold on the LRU clock.  Deserialization goes through the
        storage trust model's restricted unpickler
        (:mod:`repro.storage.serde`): a blob referencing globals
        outside the allowlist restores nothing instead of executing.
        """
        from repro.storage.serde import restricted_loads

        try:
            payload = restricted_loads(blob)
        except Exception:  # noqa: BLE001 -- a damaged blob restores nothing
            return 0
        restored = 0
        for raw in payload:
            try:
                entry = restricted_loads(raw)
            except Exception:  # noqa: BLE001
                continue
            if not isinstance(entry, CacheEntry):
                continue
            versions_ok = all(
                catalog.version(table_name) == version
                for table_name, version in entry.source[0])
            if not versions_ok:
                continue
            entry.recovered = True
            entry.hits = 0
            with self._locked():
                self._clock += 1
                entry.last_used = self._clock
                if self._admit(entry):
                    restored += 1
        return restored

    def clear(self) -> None:
        with self._locked():
            for entry_key in list(self._entries):
                self._evict(entry_key, reason="invalidated")

    def __len__(self) -> int:
        with self._locked():
            return len(self._entries)

    # -- probe / answer ----------------------------------------------------

    def _bypasses(self, dim_sigs: tuple, agg_sigs: tuple,
                  specs: Sequence) -> bool:
        if any(not spec.function.mergeable for spec in specs):
            return True  # holistic: no Iter_super re-aggregation
        if len(dim_sigs) > self.policy.max_dims:
            return True
        # duplicate signatures make the subset/permutation mapping
        # ambiguous (e.g. GROUP BY a, a under two aliases)
        if len(set(dim_sigs)) != len(dim_sigs):
            return True
        if len(set(agg_sigs)) != len(agg_sigs):
            return True
        return False

    def _probe(self, source: SourceSignature, dim_sigs: tuple,
               agg_sigs: tuple) -> Optional[CacheEntry]:
        for entry in self._entries.values():
            if entry.can_answer(source, dim_sigs, agg_sigs):
                return entry
        return None

    def _answer_hit(self, entry: CacheEntry, dim_sigs: tuple,
                    dim_names: Sequence[str], agg_sigs: tuple,
                    agg_names: Sequence[str],
                    masks: Sequence[Mask]) -> Table:
        entry.hits += 1
        entry.last_used = self._clock
        self.counters["hits"] += 1
        instrument.record_cache_lookup("hit")
        querylog.annotate(cache="hit")
        if entry.recovered:
            querylog.annotate(recovered=True)
        with trace.span("serve.answer", cache_hit=True,
                        grouping_sets=len(masks)) as span:
            scanned = 0
            strata: list[Table] = []
            for mask in dict.fromkeys(masks):
                answered, cost = entry.engine.answer_with_cost(
                    entry.translate_mask(mask, dim_sigs))
                scanned += cost
                strata.append(answered)
            result = self._project(entry, strata, dim_sigs, dim_names,
                                   agg_sigs, agg_names)
            span.set(rows_scanned=scanned, rows=len(result))
        querylog.add(rows_scanned=scanned)
        return result

    def _answer_miss(self, table: Table, source: SourceSignature,
                     dim_items: Sequence, dim_sigs: tuple,
                     dim_names: Sequence[str], specs: Sequence,
                     agg_sigs: tuple, agg_names: Sequence[str],
                     masks: Sequence[Mask]) -> Optional[Table]:
        self.counters["misses"] += 1
        instrument.record_cache_lookup("miss")
        querylog.annotate(cache="miss")
        if len(table) < self.policy.min_rows:
            return None  # not worth caching; normal path recomputes
        masks = tuple(dict.fromkeys(masks))
        try:
            # the query's own ExecutionContext (installed thread-locally
            # by the executor) meters the build; attempt() restores its
            # resident count afterwards so long-lived cache cells are
            # not billed against this one statement
            ctx = rctx.current_context()
            if ctx is None:
                engine = self._build_engine(table, dim_items, specs, masks)
            else:
                with ctx.attempt():
                    engine = self._build_engine(table, dim_items, specs,
                                                masks)
        except (NotMergeableError, ResourceBudgetExceededError):
            # over-budget builds fall back to the normal planning path,
            # which knows how to degrade to the external algorithm
            self.counters["bypasses"] += 1
            instrument.record_cache_lookup("bypass")
            querylog.annotate(cache="bypass")
            return None
        entry = CacheEntry(source=source, dim_sigs=dim_sigs,
                           dim_names=tuple(dim_names),
                           agg_sigs=agg_sigs,
                           agg_names=tuple(agg_names),
                           engine=engine,
                           cells=engine.materialized_rows,
                           base_rows=len(table),
                           last_used=self._clock)
        with trace.span("serve.answer", cache_hit=False,
                        grouping_sets=len(masks)) as span:
            strata = [engine.answer(entry.translate_mask(m, dim_sigs))
                      for m in masks]
            result = self._project(entry, strata, dim_sigs, dim_names,
                                   agg_sigs, agg_names)
            span.set(rows=len(result), admitted=self._admit(entry))
        return result

    def _build_engine(self, table: Table, dim_items: Sequence,
                      specs: Sequence,
                      masks: tuple[Mask, ...]) -> PartialCube:
        return PartialCube(table, list(dim_items), list(specs),
                           materialize=list(masks), universe=list(masks))

    def _project(self, entry: CacheEntry, strata: Sequence[Table],
                 dim_sigs: tuple, dim_names: Sequence[str],
                 agg_sigs: tuple, agg_names: Sequence[str]) -> Table:
        """Reorder/rename the entry's answer columns to the request:
        request dims (entry dims absent from the request are ALL-valued
        and dropped), then request aggregates."""
        n_entry_dims = len(entry.dim_sigs)
        indexes = [entry.dim_pos[sig] for sig in dim_sigs]
        indexes += [n_entry_dims + entry.agg_pos[sig] for sig in agg_sigs]
        names = list(dim_names) + list(agg_names)
        template = strata[0] if strata else None
        if template is None:
            raise ServeError("no strata to project")
        schema = Schema([template.schema.columns[i].renamed(name)
                         for i, name in zip(indexes, names)])
        out = Table(schema)
        for stratum in strata:
            for row in stratum:
                out.append(tuple(row[i] for i in indexes),
                           validate=False)
        return out

    # -- admission / eviction ----------------------------------------------

    def _admit(self, entry: CacheEntry) -> bool:
        policy = self.policy
        too_big = (policy.admit_max_cells is not None
                   and entry.cells > policy.admit_max_cells)
        over_budget = (policy.budget_cells is not None
                       and entry.cells > policy.budget_cells)
        if too_big or over_budget:
            self.counters["rejected"] += 1
            instrument.record_cache_admission("rejected")
            return False
        key = (entry.source, entry.dim_sigs, entry.agg_sigs)
        previous = self._entries.get(key)
        if previous is not None:
            self._accountant.release_cells(previous.cells)
        self._entries[key] = entry
        self._accountant.charge_cells(entry.cells)
        self.counters["admitted"] += 1
        instrument.record_cache_admission("admitted")
        self._enforce_budget(keep=key)
        instrument.set_cache_resident_cells(
            self._accountant.resident_cells)
        return True

    def _enforce_budget(self, *, keep: tuple) -> None:
        budget = self.policy.budget_cells
        if budget is None:
            return
        while (self._accountant.resident_cells > budget
               and len(self._entries) > 1):
            victim_key = min(
                (k for k in self._entries if k != keep),
                key=lambda k: (self._entries[k].score(),
                               self._entries[k].last_used))
            self._evict(victim_key, reason="space")

    def _evict(self, key: tuple, *, reason: str) -> None:
        entry = self._entries.pop(key)
        self._accountant.release_cells(entry.cells)
        self.counters[f"evicted_{reason}"] += 1
        instrument.record_cache_eviction(reason)
        instrument.set_cache_resident_cells(
            self._accountant.resident_cells)
