"""The asyncio serving front end: one event loop, many connections.

The threaded server (:mod:`repro.serve.server`) spends a thread per
connection; at hundreds of mostly-idle clients that is all stacks and
no work.  :class:`AsyncQueryServer` replaces the accept loop and the
per-connection threads with one event loop -- connections are
coroutines, so 500+ concurrent clients cost file descriptors, not
threads -- while **reusing every serving semantic** from the threaded
server it subclasses:

- the wire protocol is byte-identical
  (:func:`repro.serve.protocol.parse_message` /
  :func:`~repro.serve.protocol.dump_message` frame both front ends);
- **admission control** keeps the exact shed contract
  (``max_inflight`` executing, ``max_queue`` waiting, queue-full and
  deadline sheds hitting the same ``repro_serve_shed_total`` reasons)
  -- re-implemented on loop-confined state in
  :class:`AsyncAdmissionController` so waiting costs a Future, not a
  blocked thread;
- admitted statements run on a **bounded executor** (``max_inflight``
  threads) through the inherited ``_execute_locked`` -- the same
  versioned RW lock, ``ExecutionContext`` deadline/budget, query-log
  tracking, trace propagation, and post-query ``--data-dir``
  checkpointing as the threaded path, because it *is* that path;
- **graceful shutdown** (SIGTERM/SIGINT): stop accepting, drain
  in-flight and queued statements
  (``repro_serve_drained_queries_total``), checkpoint the data
  directory, then release every cluster resource --
  :func:`repro.cluster.pool.shutdown_pools` and
  :meth:`repro.cluster.slab.SlabManager.release_all` -- so a drained
  server leaves no worker processes and no ``/dev/shm`` segments
  behind (asserted by the shutdown tests).

The one thing deliberately *not* reused is the blocking admission
slot: an event loop must never block, so the async controller mirrors
its semantics instead of its implementation.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import signal
import time
from typing import AsyncIterator, Optional

from repro.errors import (
    QueryTimeoutError,
    ReproError,
    ServeError,
    ServerOverloadedError,
)
from repro.obs import instrument, querylog
from repro.obs.querylog import QUERY_LOG
from repro.resilience.context import ExecutionContext
from repro.serve import protocol
from repro.serve.server import QueryServer

__all__ = ["AsyncAdmissionController", "AsyncQueryServer"]

#: polling step for the shutdown drain (bounds how late the drain
#: notices the last statement finishing)
_DRAIN_POLL_S = 0.05


class AsyncAdmissionController:
    """The admission contract on loop-confined state.

    Same knobs and sheds as the threaded
    :class:`~repro.serve.server.AdmissionController`: at most
    ``max_inflight`` statements hold slots, at most ``max_queue`` wait,
    a full queue sheds immediately with
    :class:`~repro.errors.ServerOverloadedError` and a deadline passing
    while queued sheds with :class:`~repro.errors.QueryTimeoutError`.
    All state is touched only from the event loop thread, so no lock is
    needed -- which is exactly why this exists instead of the threaded
    controller (whose ``slot`` blocks the calling thread).
    """

    def __init__(self, max_inflight: int = 4, max_queue: int = 16) -> None:
        if max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ServeError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._inflight = 0
        self._queued = 0
        self._waiters: "list[asyncio.Future]" = []

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def busy(self) -> int:
        """Statements the drain must wait out (executing + queued)."""
        return self._inflight + self._queued

    def _publish(self) -> None:
        instrument.set_serve_inflight(self._inflight)
        instrument.set_serve_queue_depth(self._queued)

    def _release(self) -> None:
        self._inflight -= 1
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.done():
                waiter.set_result(None)
                break
        self._publish()

    async def _acquire(self, deadline: Optional[float]) -> None:
        if self._inflight < self.max_inflight:
            self._inflight += 1
            self._publish()
            return
        if self._queued >= self.max_queue:
            instrument.record_serve_shed("queue_full")
            raise ServerOverloadedError(
                f"server overloaded: {self._inflight} in flight, "
                f"{self._queued} queued (max_queue={self.max_queue})")
        self._queued += 1
        self._publish()
        try:
            while self._inflight >= self.max_inflight:
                waiter = asyncio.get_running_loop().create_future()
                self._waiters.append(waiter)
                timeout = None
                if deadline is not None:
                    timeout = deadline - time.monotonic()
                    if timeout <= 0:
                        instrument.record_serve_shed("deadline")
                        raise QueryTimeoutError(
                            "statement deadline passed while queued "
                            "for admission")
                try:
                    await asyncio.wait_for(waiter, timeout=timeout)
                except asyncio.TimeoutError:
                    instrument.record_serve_shed("deadline")
                    raise QueryTimeoutError(
                        "statement deadline passed while queued "
                        "for admission") from None
                finally:
                    if waiter in self._waiters:
                        self._waiters.remove(waiter)
        finally:
            self._queued -= 1
        self._inflight += 1
        self._publish()

    @contextlib.asynccontextmanager
    async def slot(self, deadline: Optional[float] = None
                   ) -> AsyncIterator[None]:
        await self._acquire(deadline)
        try:
            yield
        finally:
            self._release()


class AsyncQueryServer(QueryServer):
    """The event-loop front door (see module docstring).

    Construction is identical to :class:`QueryServer` (including
    ``--data-dir`` restore); only the serving machinery differs.  Use
    either the async lifecycle (``await start_async()`` ...
    ``await shutdown_async()``) or the synchronous :meth:`run` wrapper,
    which owns a loop and installs SIGTERM/SIGINT drain handlers.
    """

    def __init__(self, *args, drain_timeout: float = 30.0,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.drain_timeout = drain_timeout
        # replace the blocking controller with the loop-confined one;
        # same knobs, same contract, same metrics
        self.admission = AsyncAdmissionController(
            max_inflight=self.admission.max_inflight,
            max_queue=self.admission.max_queue)
        self._aserver: Optional[asyncio.base_events.Server] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._handlers: "set[asyncio.Task]" = set()
        self._stopping = False
        # bounded: admission guarantees at most max_inflight statements
        # execute; +1 keeps the checkpoint op off the query threads
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.admission.max_inflight + 1,
            thread_name_prefix="repro-aserve")

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._aserver is None or not self._aserver.sockets:
            raise ServeError("server not started")
        return self._aserver.sockets[0].getsockname()[:2]

    async def start_async(self) -> "AsyncQueryServer":
        if self._aserver is not None:
            raise ServeError("server already started")
        self._aserver = await asyncio.start_server(
            self._client_connected, host=self.host, port=self.port,
            backlog=1024)
        return self

    async def shutdown_async(self) -> None:
        """Graceful drain: stop accepting, finish what was admitted or
        queued, checkpoint, release cluster resources, stop."""
        if self._stopping:
            return
        self._stopping = True
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()
        draining = self.admission.busy
        if draining:
            instrument.record_serve_drain(draining)
        deadline = time.monotonic() + self.drain_timeout
        while self.admission.busy and time.monotonic() < deadline:
            await asyncio.sleep(_DRAIN_POLL_S)
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        instrument.set_async_connections(0)
        # closed transports surface as EOF in each handler's readline;
        # wait for them to exit on their own so no task ends cancelled
        handlers = [task for task in self._handlers if not task.done()]
        if handlers:
            done, pending = await asyncio.wait(handlers, timeout=5.0)
            for task in pending:  # pragma: no cover - wedged handler
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self.store is not None:
            loop = asyncio.get_running_loop()
            with contextlib.suppress(ReproError, OSError):
                await loop.run_in_executor(self._executor, self.checkpoint)
        # release multi-process resources: worker pools, then any
        # shared-memory slabs -- a drained server leaves /dev/shm clean
        from repro.cluster import MANAGER, shutdown_pools
        shutdown_pools()
        MANAGER.release_all()
        self._executor.shutdown(wait=True)
        if self.store is not None:
            with contextlib.suppress(OSError):
                self.store.close()

    async def serve_forever_async(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully."""
        if self._aserver is None:
            await self.start_async()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError,
                                         RuntimeError):
                    loop.remove_signal_handler(signum)
            await self.shutdown_async()

    def run(self) -> None:
        """Synchronous entry point: own loop, serve, drain on signal."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start_async()
        host, port = self.address
        print(f"repro query server (asyncio) on {host}:{port} "
              f"(tables: {', '.join(self.catalog.names())})", flush=True)
        await self.serve_forever_async()

    # make the threaded lifecycle unmistakably unavailable
    def start(self) -> "QueryServer":
        raise ServeError(
            "AsyncQueryServer has no threaded lifecycle; use "
            "start_async()/serve_forever_async() or run()")

    def shutdown(self) -> None:
        raise ServeError(
            "AsyncQueryServer has no threaded lifecycle; use "
            "shutdown_async()")

    # -- connections -------------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if self._stopping:
            writer.close()
            return
        instrument.record_serve_connection()
        instrument.record_serve_async_connection()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        instrument.set_async_connections(len(self._writers))
        session = self._make_session()
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._send(writer, {
                        "id": None, "ok": False,
                        "error": {"type": "ServeError",
                                  "message": "wire message too long"}})
                    break
                except (ConnectionError, OSError):
                    break
                try:
                    request = protocol.parse_message(line)
                except ServeError as error:
                    await self._send(writer, {
                        "id": None, "ok": False,
                        "error": {"type": "ServeError",
                                  "message": str(error)}})
                    continue
                if request is None:
                    break
                response = await self._handle_async(session, request)
                if response is None:  # close op
                    break
                try:
                    await self._send(writer, response)
                except (ConnectionError, OSError):
                    break
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._writers.discard(writer)
            instrument.set_async_connections(len(self._writers))
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(protocol.dump_message(message))
        await writer.drain()

    # -- request dispatch --------------------------------------------------

    async def _handle_async(self, session, request: dict
                            ) -> Optional[dict]:
        op = request.get("op", "query")
        if op == "query":
            request_id = request.get("id")
            instrument.record_serve_request(op)
            sql = request.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                return self._error(request_id, ServeError(
                    "query op needs a non-empty 'sql' string"))
            from repro.obs import trace
            trace_id = (self._valid_trace(request.get("trace"))
                        or trace.new_trace_id())
            return await self._run_query_async(session, request_id, sql,
                                               trace_id)
        if op == "ingest":
            # takes the exclusive lock: keep it off the event loop
            instrument.record_serve_request(op)
            return await self._run_ingest_async(request.get("id"),
                                                request)
        if op == "checkpoint":
            # page I/O: keep it off the event loop
            instrument.record_serve_request(op)
            request_id = request.get("id")
            if self.store is None:
                return self._error(request_id, ServeError(
                    "server has no data directory; start it with "
                    "--data-dir to enable checkpoints"))
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(self._executor, self.checkpoint)
            except ReproError as error:
                return self._error(request_id, error)
            return {"id": request_id, "ok": True,
                    "storage": self.store.stats()}
        # ping / stats / log / close / unknown: cheap, loop-side, and
        # semantically identical to the threaded server
        return self._handle(session, request)

    async def _run_query_async(self, session, request_id, sql: str,
                               trace_id: str) -> dict:
        started = time.perf_counter()
        ctx = ExecutionContext(timeout=self.statement_timeout,
                               memory_budget=self.memory_budget)
        loop = asyncio.get_running_loop()
        try:
            async with self.admission.slot(deadline=ctx.deadline):
                wait_ms = round((time.perf_counter() - started) * 1000.0,
                                3)
                return await loop.run_in_executor(
                    self._executor, self._finish_query, session,
                    request_id, sql, trace_id, ctx, started, wait_ms)
        except ReproError as error:
            # shed before admission: log it exactly as the threaded
            # server does (no awaits inside the tracked scope -- the
            # loop thread's pending-record stack must not interleave)
            self._log_shed(sql, trace_id, started, error)
            response = self._error(request_id, error)
            response["trace"] = trace_id
            return response

    async def _run_ingest_async(self, request_id, request: dict) -> dict:
        """Async ingest: loop-side admission, executor-side tail (the
        inherited ``_finish_ingest`` -- write lock + submit/flush)."""
        started = time.perf_counter()
        table = request.get("table")
        if not isinstance(table, str) or not table.strip():
            return self._error(request_id, ServeError(
                "ingest op needs a non-empty 'table' string"))
        from repro.obs import trace
        trace_id = (self._valid_trace(request.get("trace"))
                    or trace.new_trace_id())
        ctx = ExecutionContext(timeout=self.statement_timeout,
                               memory_budget=self.memory_budget)
        loop = asyncio.get_running_loop()
        try:
            async with self.admission.slot(deadline=ctx.deadline):
                wait_ms = round(
                    (time.perf_counter() - started) * 1000.0, 3)
                return await loop.run_in_executor(
                    self._executor, self._finish_ingest, request_id,
                    request, table, trace_id, started, wait_ms)
        except ReproError as error:
            self._log_shed(f"INGEST {table.upper()}", trace_id, started,
                           error)
            response = self._error(request_id, error)
            response["trace"] = trace_id
            return response

    def _finish_query(self, session, request_id, sql: str, trace_id: str,
                      ctx: ExecutionContext, started: float,
                      wait_ms: float) -> dict:
        """Executor-side tail of an admitted statement: the inherited
        lock + execute + query log + checkpoint pipeline."""
        try:
            with QUERY_LOG.track(statement=sql, trace_id=trace_id):
                querylog.annotate(admission_wait_ms=wait_ms)
                result = self._execute_locked(session, sql, ctx)
        except ReproError as error:
            response = self._error(request_id, error)
            response["trace"] = trace_id
            return response
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        payload = protocol.encode_table(result)
        self._maybe_checkpoint()
        return {"id": request_id, "ok": True,
                "columns": payload["columns"], "rows": payload["rows"],
                "elapsed_ms": round(elapsed_ms, 3),
                "trace": trace_id}

    @staticmethod
    def _log_shed(sql: str, trace_id: str, started: float,
                  error: ReproError) -> None:
        try:
            with QUERY_LOG.track(statement=sql, trace_id=trace_id):
                querylog.annotate(admission_wait_ms=round(
                    (time.perf_counter() - started) * 1000.0, 3))
                raise error
        except ReproError:
            pass
