"""A minimal client for the query server's JSON wire protocol.

Used by the shell's ``\\connect`` and by the smoke/CI drivers; one
socket, synchronous request/response, server errors re-raised as their
original :mod:`repro.errors` class when the name resolves (so
``except SQLSyntaxError`` works the same against a remote server as
against a local session).
"""

from __future__ import annotations

import socket
from typing import Any

from repro import errors as _errors
from repro.engine.table import Table
from repro.errors import ServeError
from repro.obs import trace
from repro.serve import protocol

__all__ = ["QueryClient"]


def _rebuild_error(payload: dict) -> Exception:
    """The server-side error as its original class when possible."""
    name = payload.get("type", "ServeError")
    message = payload.get("message", "remote error")
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            return cls(message)
        except TypeError:
            pass  # classes with mandatory structured args
    return ServeError(f"{name}: {message}")


class QueryClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7432, *,
                 timeout: float | None = 30.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as error:
            raise ServeError(
                f"cannot connect to {host}:{port}: {error}") from None
        self._stream = self._sock.makefile("rwb")
        self._next_id = 0
        self._closed = False
        self.last_elapsed_ms: float | None = None
        #: trace id of the last query (client-generated, echoed by the
        #: server in both ok and error responses)
        self.last_trace_id: str | None = None

    # -- plumbing ----------------------------------------------------------

    def _request(self, op: str, **fields: Any) -> dict:
        if self._closed:
            raise ServeError("client is closed")
        self._next_id += 1
        message = {"id": self._next_id, "op": op, **fields}
        try:
            protocol.write_message(self._stream, message)
            response = protocol.read_message(self._stream)
        except OSError as error:
            raise ServeError(f"connection lost: {error}") from None
        if response is None:
            raise ServeError("server closed the connection")
        if "trace" in response:
            self.last_trace_id = response["trace"]
        if not response.get("ok"):
            raise _rebuild_error(response.get("error", {}))
        return response

    # -- operations --------------------------------------------------------

    def execute(self, sql: str) -> Table:
        """Run one statement remotely; returns the result relation
        (ALL values decoded back to the singleton).

        Each call generates a fresh trace id, sends it with the
        request, and records the id the server echoed back in
        :attr:`last_trace_id` -- the handle that joins this call to
        the server's query-log record and span tree."""
        trace_id = trace.new_trace_id()
        self.last_trace_id = trace_id
        response = self._request("query", sql=sql, trace=trace_id)
        self.last_elapsed_ms = response.get("elapsed_ms")
        return protocol.decode_table(response)

    def ingest(self, table: str, *, inserts: Any = (), deletes: Any = (),
               updates: Any = (), flush: bool = False) -> dict:
        """Stream DML at the server's ingest op.

        ``inserts``/``deletes`` are iterables of rows, ``updates`` of
        ``(old_row, new_row)`` pairs.  ``flush=True`` forces the
        server to apply the batch before replying (read-your-writes
        regardless of the server's coalescing thresholds).  Returns
        ``{"table", "buffered", "flushed", "pending"}``."""
        trace_id = trace.new_trace_id()
        self.last_trace_id = trace_id
        response = self._request(
            "ingest", table=table, trace=trace_id,
            inserts=protocol.encode_rows(inserts),
            deletes=protocol.encode_rows(deletes),
            updates=[[protocol.encode_rows([old])[0],
                      protocol.encode_rows([new])[0]]
                     for old, new in updates],
            flush=flush)
        self.last_elapsed_ms = response.get("elapsed_ms")
        return {"table": response.get("table"),
                "buffered": response.get("buffered"),
                "flushed": response.get("flushed"),
                "pending": response.get("pending")}

    def ping(self) -> bool:
        return bool(self._request("ping").get("pong"))

    def stats(self) -> dict:
        """Server-side stats: cache counters, admission state, tables."""
        return self._request("stats").get("stats", {})

    def checkpoint(self) -> dict:
        """Force a durable checkpoint on a ``--data-dir`` server;
        returns the store's stats.  Raises
        :class:`~repro.errors.ServeError` when the server has no data
        directory."""
        return self._request("checkpoint").get("storage", {})

    def log(self, n: int = 50, **filters: Any) -> dict:
        """The server's recent query records + workload history.

        ``filters`` pass through to the ``log`` op (``kind=``,
        ``outcome=``, ``slow=``)."""
        response = self._request("log", n=n, **filters)
        return {"records": response.get("records", []),
                "workload": response.get("workload", []),
                "summary": response.get("summary", {})}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_message(self._stream,
                                   {"id": 0, "op": "close"})
        except OSError:
            pass
        for resource in (self._stream, self._sock):
            try:
                resource.close()
            except OSError:
                pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
