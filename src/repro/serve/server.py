"""The concurrent query service: threaded TCP server over SQLSessions.

Architecture (the ROADMAP's "serves heavy traffic" north star, scaled
to a reference implementation):

- one **listener thread** accepts connections; each connection gets a
  thread and its own :class:`~repro.sql.SQLSession` -- sessions share
  the catalog and one :class:`~repro.serve.cache.CuboidCache`;
- a **versioned read/write lock** orders statements: SELECT and plain
  EXPLAIN run shared (concurrent readers), DML/DDL and EXPLAIN ANALYZE
  run exclusive.  DML is exclusive for catalog consistency; EXPLAIN
  ANALYZE because it installs a process-global tracer
  (:func:`repro.obs.trace.use_tracer`), which concurrent readers would
  pollute.  The lock's version counter bumps on every write release --
  a cheap global "something changed" epoch the stats op reports;
- an **admission controller** bounds concurrency: at most
  ``max_inflight`` statements execute, at most ``max_queue`` wait, and
  a queued statement whose :class:`ExecutionContext` deadline passes is
  shed with :class:`~repro.errors.QueryTimeoutError` instead of running
  a query nobody is waiting for.  Queue-full rejections raise
  :class:`~repro.errors.ServerOverloadedError`
  (``repro_serve_shed_total{reason=queue_full}``).

Per-connection resilience: every query statement runs under a fresh
``ExecutionContext`` carrying the server's ``statement_timeout`` and
``memory_budget``, so one slow or hungry client degrades or times out
alone.  Contexts are thread-local (see :mod:`repro.resilience.context`),
which is what makes concurrent sessions safe at all.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
from typing import Iterator, Optional

from repro.analysis import locktrack
from repro.engine.catalog import Catalog
from repro.maintenance.ingest import StreamIngestor
from repro.errors import (
    QueryTimeoutError,
    ReproError,
    ServeError,
    ServerOverloadedError,
)
from repro.obs import instrument, querylog, trace
from repro.obs.querylog import QUERY_LOG
from repro.resilience.context import ExecutionContext
from repro.serve import protocol
from repro.serve.cache import CuboidCache
from repro.sql.executor import SQLSession

__all__ = ["AdmissionController", "QueryServer", "VersionedRWLock"]


class VersionedRWLock:
    """Writer-priority readers/writer lock with a change epoch.

    Readers share; a writer excludes everyone and bumps ``version`` on
    release.  Waiting writers block *new* readers (writer priority), so
    DML cannot starve behind a stream of SELECTs.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._version = 0

    @property
    def version(self) -> int:
        with self._cond:
            return self._version

    #: Name the lock-order sanitizer tracks this lock under.
    SANITIZER_NAME = "serve.rwlock"

    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        locktrack.note_acquire(self.SANITIZER_NAME)
        try:
            yield
        finally:
            locktrack.note_release(self.SANITIZER_NAME)
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        locktrack.note_acquire(self.SANITIZER_NAME)
        try:
            yield
        finally:
            locktrack.note_release(self.SANITIZER_NAME)
            with self._cond:
                self._writer = False
                self._version += 1
                self._cond.notify_all()


class AdmissionController:
    """Bounded concurrency with deadline shedding.

    ``slot`` blocks until an execution slot frees up; it refuses
    immediately when the wait queue is full (queue_full shed) and gives
    up when the caller's deadline passes while queued (deadline shed).
    """

    def __init__(self, max_inflight: int = 4, max_queue: int = 16) -> None:
        if max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ServeError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    def _publish(self) -> None:
        instrument.set_serve_inflight(self._inflight)
        instrument.set_serve_queue_depth(self._queued)

    @contextlib.contextmanager
    def slot(self, deadline: Optional[float] = None) -> Iterator[None]:
        with self._cond:
            if self._inflight >= self.max_inflight \
                    and self._queued >= self.max_queue:
                instrument.record_serve_shed("queue_full")
                raise ServerOverloadedError(
                    f"server overloaded: {self._inflight} in flight, "
                    f"{self._queued} queued (max_queue={self.max_queue})")
            self._queued += 1
            self._publish()
            try:
                while self._inflight >= self.max_inflight:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            instrument.record_serve_shed("deadline")
                            raise QueryTimeoutError(
                                "statement deadline passed while queued "
                                "for admission")
                    self._cond.wait(timeout=remaining)
            finally:
                self._queued -= 1
            self._inflight += 1
            self._publish()
        try:
            yield
        finally:
            with self._cond:
                self._inflight -= 1
                self._publish()
                self._cond.notify()


def classify_statement(sql: str) -> str:
    """``read`` for SELECT / plain EXPLAIN, ``write`` for DML/DDL and
    EXPLAIN ANALYZE (the latter swaps the process-global tracer)."""
    tokens = sql.strip().rstrip(";").split()
    if not tokens:
        return "read"
    first = tokens[0].upper()
    if first in ("INSERT", "DELETE", "UPDATE", "CREATE", "DROP"):
        return "write"
    if first == "EXPLAIN" and len(tokens) > 1 \
            and tokens[1].upper() == "ANALYZE":
        return "write"
    return "read"


class QueryServer:
    """The TCP front door (see module docstring).

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  ``python -m repro.serve`` wraps this class.
    """

    def __init__(self, catalog: Catalog | None = None, *,
                 cache: CuboidCache | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 4, max_queue: int = 16,
                 statement_timeout: Optional[float] = None,
                 memory_budget: Optional[int] = None,
                 slow_query_ms: Optional[float] = None,
                 data_dir: Optional[str] = None,
                 checkpoint_every: int = 1,
                 ingest_max_ops: int = 256,
                 ingest_max_age_s: float = 0.5,
                 ingest_chaos=None) -> None:
        """``data_dir`` makes the server durable: the serve cache's
        cuboid entries are checkpointed into a
        :class:`~repro.storage.CubeStore` there after queries (every
        ``checkpoint_every``-th entry-set change) and on shutdown, and
        restored at construction -- so a restarted server answers its
        first repeated query from a recovered cuboid instead of a cold
        rebuild."""
        self.catalog = catalog if catalog is not None else Catalog()
        self.cache = cache if cache is not None else CuboidCache()
        self.host = host
        self.port = port
        self.statement_timeout = statement_timeout
        self.memory_budget = memory_budget
        self.slow_query_ms = slow_query_ms
        self.lock = VersionedRWLock()
        self.admission = AdmissionController(max_inflight=max_inflight,
                                             max_queue=max_queue)
        self.ingestor = StreamIngestor(self.catalog, self.cache,
                                       max_ops=ingest_max_ops,
                                       max_age_s=ingest_max_age_s,
                                       chaos=ingest_chaos)
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._stop = threading.Event()
        self._started = False
        self.store = None
        self.restored_entries = 0
        self._checkpoint_every = max(1, checkpoint_every)
        self._checkpoint_lock = threading.Lock()
        self._checkpointed_token = 0
        if data_dir is not None:
            from repro.storage import CubeStore
            self.store = CubeStore(data_dir)
            blob = self.store.load_cache()
            if blob is not None:
                self.restored_entries = self.cache.restore_state(
                    blob, catalog=self.catalog)
            self._checkpointed_token = self.cache.change_token

    @contextlib.contextmanager
    def _conn_locked(self) -> Iterator[None]:
        """``_conn_lock`` with lock-order sanitizer bookkeeping."""
        with self._conn_lock:
            locktrack.note_acquire("serve.connections")
            try:
                yield
            finally:
                locktrack.note_release("serve.connections")

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise ServeError("server not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "QueryServer":
        if self._started:
            raise ServeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.2)  # lets the accept loop poll _stop
        self._listener = listener
        self._started = True
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="repro-serve-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def serve_forever(self) -> None:
        if not self._started:
            self.start()
        try:
            while not self._stop.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, close live connections, join all threads."""
        self._stop.set()
        with self._conn_locked():
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with contextlib.suppress(ReproError):
            self.ingestor.flush()  # buffered ops must not die with us
        if self.store is not None:
            with contextlib.suppress(ReproError, OSError):
                self.checkpoint()
            with contextlib.suppress(OSError):
                self.store.close()

    def __enter__(self) -> "QueryServer":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conn_locked():
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _make_session(self) -> SQLSession:
        return SQLSession(self.catalog, cache=self.cache,
                          statement_timeout=self.statement_timeout,
                          memory_budget=self.memory_budget,
                          slow_query_ms=self.slow_query_ms)

    def _serve_connection(self, conn: socket.socket) -> None:
        instrument.record_serve_connection()
        session = self._make_session()
        stream = conn.makefile("rwb")
        try:
            while not self._stop.is_set():
                try:
                    request = protocol.read_message(stream)
                except ServeError as error:
                    protocol.write_message(stream, {
                        "id": None, "ok": False,
                        "error": {"type": "ServeError",
                                  "message": str(error)}})
                    continue
                except OSError:
                    break
                if request is None:
                    break
                response = self._handle(session, request)
                if response is None:  # close op
                    break
                try:
                    protocol.write_message(stream, response)
                except OSError:
                    break
        finally:
            with self._conn_locked():
                self._connections.discard(conn)
            try:
                stream.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    # -- request dispatch ----------------------------------------------------

    def _handle(self, session: SQLSession,
                request: dict) -> Optional[dict]:
        request_id = request.get("id")
        op = request.get("op", "query")
        instrument.record_serve_request(op)
        if op == "close":
            return None
        if op == "ping":
            return {"id": request_id, "ok": True, "pong": True}
        if op == "stats":
            return {"id": request_id, "ok": True,
                    "stats": self._stats()}
        if op == "log":
            return self._log_op(request_id, request)
        if op == "checkpoint":
            if self.store is None:
                return self._error(request_id, ServeError(
                    "server has no data directory; start it with "
                    "--data-dir to enable checkpoints"))
            try:
                self.checkpoint()
            except ReproError as error:
                return self._error(request_id, error)
            return {"id": request_id, "ok": True,
                    "storage": self.store.stats()}
        if op == "query":
            sql = request.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                return self._error(request_id, ServeError(
                    "query op needs a non-empty 'sql' string"))
            trace_id = (self._valid_trace(request.get("trace"))
                        or trace.new_trace_id())
            return self._run_query(session, request_id, sql, trace_id)
        if op == "ingest":
            return self._run_ingest(request_id, request)
        return self._error(request_id,
                           ServeError(f"unknown op {op!r}"))

    @staticmethod
    def _valid_trace(value) -> Optional[str]:
        """A usable client-supplied trace id, or ``None``.

        The id travels into log records and span exports, so anything
        malformed -- wrong type, empty, oversized, whitespace or
        control characters -- is discarded and the server generates
        its own (the client is never failed over its trace header)."""
        if not isinstance(value, str):
            return None
        value = value.strip()
        if not value or len(value) > 64:
            return None
        if any(ch.isspace() or not ch.isprintable() for ch in value):
            return None
        return value

    def _stats(self) -> dict:
        stats = {
            "cache": self.cache.stats(),
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "catalog_version": self.lock.version,
            "tables": self.catalog.names(),
            "querylog": QUERY_LOG.summary(),
            "ingest": self.ingestor.snapshot(),
        }
        if self.store is not None:
            stats["storage"] = {**self.store.stats(),
                                "restored_entries": self.restored_entries}
        return stats

    def _log_op(self, request_id, request: dict) -> dict:
        """The ``log`` op: recent query records + workload history."""
        n = request.get("n", 50)
        if isinstance(n, bool) or not isinstance(n, int) or n < 0:
            return self._error(request_id, ServeError(
                "log op 'n' must be a non-negative integer"))
        kind = request.get("kind")
        outcome = request.get("outcome")
        if kind is not None and not isinstance(kind, str):
            return self._error(request_id, ServeError(
                "log op 'kind' must be a string"))
        if outcome is not None and not isinstance(outcome, str):
            return self._error(request_id, ServeError(
                "log op 'outcome' must be a string"))
        slow = request.get("slow")
        if slow is not None and not isinstance(slow, bool):
            return self._error(request_id, ServeError(
                "log op 'slow' must be a boolean"))
        records = QUERY_LOG.snapshot(n, kind=kind, outcome=outcome,
                                     slow=slow)
        return {"id": request_id, "ok": True,
                "records": [record.to_dict() for record in records],
                "workload": QUERY_LOG.history.snapshot(),
                "summary": QUERY_LOG.summary()}

    def _run_query(self, session: SQLSession, request_id,
                   sql: str, trace_id: str) -> dict:
        started = time.perf_counter()
        ctx = ExecutionContext(timeout=self.statement_timeout,
                               memory_budget=self.memory_budget)
        try:
            with QUERY_LOG.track(statement=sql, trace_id=trace_id):
                result = self._execute_admitted(session, sql, ctx,
                                                started)
        except ReproError as error:
            response = self._error(request_id, error)
            response["trace"] = trace_id
            return response
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        payload = protocol.encode_table(result)
        self._maybe_checkpoint()
        return {"id": request_id, "ok": True,
                "columns": payload["columns"], "rows": payload["rows"],
                "elapsed_ms": round(elapsed_ms, 3),
                "trace": trace_id}

    @staticmethod
    def parse_ingest(request: dict) -> tuple[list, list, list]:
        """Decode an ingest request's row payloads.

        ``inserts`` and ``deletes`` are lists of rows; ``updates`` is a
        list of ``[old_row, new_row]`` pairs.  Shared with the asyncio
        front end."""
        inserts = protocol.decode_rows(request.get("inserts", []))
        deletes = protocol.decode_rows(request.get("deletes", []))
        payload = request.get("updates", [])
        if not isinstance(payload, list):
            raise ServeError(
                "ingest updates must be a list of [old, new] row pairs")
        updates = []
        for pair in payload:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ServeError(
                    "each ingest update must be an [old, new] row pair")
            old, new = protocol.decode_rows(list(pair))
            updates.append((old, new))
        return inserts, deletes, updates

    def _run_ingest(self, request_id, request: dict) -> dict:
        """The ``ingest`` wire op: buffer (and maybe flush) streamed
        DML through the :class:`StreamIngestor`.  Classified as a
        write -- it takes an admission slot and the exclusive lock, so
        backpressure and shedding behave exactly like SQL DML."""
        started = time.perf_counter()
        table = request.get("table")
        if not isinstance(table, str) or not table.strip():
            return self._error(request_id, ServeError(
                "ingest op needs a non-empty 'table' string"))
        trace_id = (self._valid_trace(request.get("trace"))
                    or trace.new_trace_id())
        ctx = ExecutionContext(timeout=self.statement_timeout,
                               memory_budget=self.memory_budget)
        try:
            with self.admission.slot(deadline=ctx.deadline):
                wait_ms = round(
                    (time.perf_counter() - started) * 1000.0, 3)
                return self._finish_ingest(request_id, request, table,
                                           trace_id, started, wait_ms)
        except ReproError as error:
            response = self._error(request_id, error)
            response["trace"] = trace_id
            return response

    def _finish_ingest(self, request_id, request: dict, table: str,
                       trace_id: str, started: float,
                       wait_ms: float) -> dict:
        """Admitted tail of the ingest op; the asyncio front end calls
        this from an executor thread after its own admission."""
        force_flush = request.get("flush", False)
        if not isinstance(force_flush, bool):
            return self._error(request_id, ServeError(
                "ingest op 'flush' must be a boolean"))
        try:
            inserts, deletes, updates = self.parse_ingest(request)
            n_ops = len(inserts) + len(deletes) + len(updates)
            statement = f"INGEST {table.upper()} ({n_ops} ops)"
            with QUERY_LOG.track("ingest", statement=statement,
                                 trace_id=trace_id):
                querylog.annotate(admission_wait_ms=wait_ms)
                with self.lock.write():
                    outcome = self.ingestor.submit(
                        table, inserts=inserts, deletes=deletes,
                        updates=updates)
                    if force_flush and outcome["flushed"] is None:
                        outcome["flushed"] = self.ingestor.flush(table)
        except ReproError as error:
            response = self._error(request_id, error)
            response["trace"] = trace_id
            return response
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._maybe_checkpoint()
        return {"id": request_id, "ok": True, "table": table.upper(),
                "buffered": outcome["buffered"],
                "flushed": outcome["flushed"],
                "pending": self.ingestor.pending_ops(),
                "elapsed_ms": round(elapsed_ms, 3),
                "trace": trace_id}

    def _execute_admitted(self, session: SQLSession, sql: str,
                          ctx: ExecutionContext, started: float):
        """Admission + lock + execute, annotating the admission wait
        (on sheds too: a record whose whole life was the queue should
        say so)."""
        admitted = False
        try:
            with self.admission.slot(deadline=ctx.deadline):
                admitted = True
                querylog.annotate(admission_wait_ms=round(
                    (time.perf_counter() - started) * 1000.0, 3))
                return self._execute_locked(session, sql, ctx)
        except (ServerOverloadedError, QueryTimeoutError):
            if not admitted:
                querylog.annotate(admission_wait_ms=round(
                    (time.perf_counter() - started) * 1000.0, 3))
            raise

    def _execute_locked(self, session: SQLSession, sql: str,
                        ctx: ExecutionContext):
        """The admitted core every front end shares: classify, take the
        versioned RW lock, execute.  The asyncio server calls this from
        an executor thread after its own (async) admission."""
        if self.ingestor.pending_ops():
            # read-your-writes: a query never observes the catalog
            # behind a buffered ingest batch -- flush first, under the
            # exclusive lock like any write
            with self.lock.write():
                self.ingestor.flush()
        guard = (self.lock.write()
                 if classify_statement(sql) == "write"
                 else self.lock.read())
        with guard:
            return session.execute(sql, context=ctx)

    # -- durability --------------------------------------------------------

    def checkpoint(self) -> None:
        """Persist the serve cache (and any attached cubes) to the
        store.  Serialization and page I/O run outside every serve-
        layer lock -- the admission slot and RW lock were released
        before this is called, and :meth:`CuboidCache.dump_state` only
        holds the cache lock for its in-memory snapshot."""
        if self.store is None:
            raise ServeError("server has no data directory")
        token = self.cache.change_token
        self.store.checkpoint(cache_state=self.cache.dump_state())
        self._checkpointed_token = token

    def _maybe_checkpoint(self) -> None:
        """Post-query checkpoint: runs after the statement released
        admission and the RW lock, only when the cache's entry set
        moved, and never concurrently with itself (a busy checkpoint
        skips -- the next query picks the change up)."""
        if self.store is None:
            return
        token = self.cache.change_token
        if token - self._checkpointed_token < self._checkpoint_every:
            return
        if not self._checkpoint_lock.acquire(blocking=False):
            return
        try:
            with contextlib.suppress(ReproError, OSError):
                self.checkpoint()
        finally:
            self._checkpoint_lock.release()

    @staticmethod
    def _error(request_id, error: Exception) -> dict:
        return {"id": request_id, "ok": False,
                "error": {"type": type(error).__name__,
                          "message": str(error)}}
