"""Scalar SQL functions.

Registers into the process-wide scalar-function registry the functions
the paper's queries use as computed grouping columns (Section 2's
histogram fix): calendar bucketing (``Day``, ``Month``, ``Year``,
``Week``...) and geography (``Nation``, ``Country``, ``Continent`` over
the synthetic world of :mod:`repro.data.weather`), plus a handful of
generic scalar helpers.

Importing this module (which :mod:`repro.sql` does) performs the
registration once.
"""

from __future__ import annotations

import datetime
import math
from typing import Any

from repro.engine.expressions import scalar_functions
from repro.data.weather import continent_of, nation_of

__all__ = ["register_builtin_functions"]


def _coerce_datetime(value: Any) -> datetime.date | datetime.datetime:
    if isinstance(value, (datetime.datetime, datetime.date)):
        return value
    # repro: allow-S004 -- TypeError is the signal base.py diagnoses
    raise TypeError(f"expected a date/timestamp, got {value!r}")


def day(value: Any) -> datetime.date:
    """``Day(Time)``: the calendar day containing a timestamp."""
    moment = _coerce_datetime(value)
    if isinstance(moment, datetime.datetime):
        return moment.date()
    return moment


def month(value: Any) -> str:
    """``Month(Time)`` as 'YYYY-MM' (sorts chronologically)."""
    moment = _coerce_datetime(value)
    return f"{moment.year:04d}-{moment.month:02d}"


def year(value: Any) -> int:
    """``Year(Time)``."""
    return _coerce_datetime(value).year

def week(value: Any) -> str:
    """``Week(Time)`` as 'YYYY-Www' (ISO week).

    Weeks deliberately do *not* nest inside months or years -- the
    Section 3.6 lattice example ("some weeks are partly in two years").
    """
    moment = _coerce_datetime(value)
    iso = moment.isocalendar()
    return f"{iso[0]:04d}-W{iso[1]:02d}"


def quarter(value: Any) -> str:
    """``Quarter(Time)`` as 'YYYY-Qn'."""
    moment = _coerce_datetime(value)
    return f"{moment.year:04d}-Q{(moment.month - 1) // 3 + 1}"


def weekday(value: Any) -> str:
    """``Weekday(Time)``: Mon..Sun (the analyst categories of 3.6)."""
    names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    return names[_coerce_datetime(value).weekday()]


def hour(value: Any) -> int:
    moment = _coerce_datetime(value)
    if isinstance(moment, datetime.datetime):
        return moment.hour
    return 0


def register_builtin_functions() -> None:
    """Idempotently register all built-in scalar functions."""
    entries = {
        "DAY": day,
        "MONTH": month,
        "YEAR": year,
        "WEEK": week,
        "QUARTER": quarter,
        "WEEKDAY": weekday,
        "HOUR": hour,
        # the paper uses both Nation(...) and Country(...) for the same
        # thing in different sections
        "NATION": nation_of,
        "COUNTRY": nation_of,
        "CONTINENT": continent_of,
        "ABS": abs,
        "ROUND": round,
        "FLOOR": math.floor,
        "CEIL": math.ceil,
        "SQRT": math.sqrt,
        "UPPER": lambda s: str(s).upper(),
        "LOWER": lambda s: str(s).lower(),
        "LENGTH": lambda s: len(str(s)),
        "BUCKET": lambda v, size: int(v // size) * size,
    }
    for name, fn in entries.items():
        scalar_functions.register(name, fn, replace=True)


register_builtin_functions()
