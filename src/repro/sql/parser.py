"""Recursive-descent SQL parser for the paper's dialect.

The grammar (Section 3.2's extension, plus enough SQL-92 to run every
query printed in the paper)::

    statement   := select ( UNION [ALL] select )* [ORDER BY order_list] [;]
    select      := SELECT [DISTINCT] select_list
                   [FROM table_ref { JOIN table_ref (USING (cols) | ON expr) }]
                   [WHERE expr]
                   [GROUP BY group_clause]
                   [HAVING expr]
    select_list := * | item {, item}          item := expr [[AS] ident]
    group_clause:= [agg_list] [ROLLUP agg_list] [CUBE agg_list]
    agg_list    := expr [AS ident] {, expr [AS ident]}

Function-call names are resolved while parsing: aggregate registry
names become :class:`AggregateCall`, Red Brick whole-column functions
become :class:`TableFunctionCall`, ``GROUPING`` becomes
:class:`GroupingCall`, everything else a scalar
:class:`~repro.engine.expressions.FunctionCall`.
"""

from __future__ import annotations

from typing import Optional

from repro.aggregates.registry import AggregateRegistry, default_registry
from repro.engine.expressions import (
    Arithmetic,
    Between,
    BooleanExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    NotExpr,
)
from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    TABLE_FUNCTIONS,
    AggregateCall,
    CreateTableStmt,
    DeleteStmt,
    ExplainStmt,
    GroupClause,
    GroupingCall,
    InsertStmt,
    JoinClause,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    TableFunctionCall,
    TableRef,
    UnionStmt,
    UpdateStmt,
)
from repro.sql.tokens import Token, TokenType, tokenize

__all__ = ["parse", "parse_expression", "Parser"]


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, tokens: list[Token], *,
                 registry: AggregateRegistry | None = None) -> None:
        self.tokens = tokens
        self.position = 0
        self.registry = registry or default_registry

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check_keyword(self, *names: str) -> bool:
        return self.current.is_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        if not self.check_keyword(name):
            self._fail(f"expected {name}")
        return self.advance()

    def check_symbol(self, symbol: str) -> bool:
        return (self.current.type is TokenType.SYMBOL
                and self.current.value == symbol)

    def accept_symbol(self, symbol: str) -> bool:
        if self.check_symbol(symbol):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> Token:
        if not self.check_symbol(symbol):
            self._fail(f"expected {symbol!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.type is not TokenType.IDENT:
            self._fail("expected identifier")
        return self.advance().value

    def _fail(self, message: str) -> None:
        token = self.current
        raise SQLSyntaxError(f"{message}, found {token.value or 'EOF'!r}",
                             line=token.line, column=token.column)

    # -- statements -------------------------------------------------------

    def parse_any_statement(self):
        """Dispatch on the statement kind (SELECT / INSERT / DELETE /
        UPDATE / CREATE TABLE)."""
        if self.check_keyword("INSERT"):
            return self.parse_insert()
        if self.check_keyword("DELETE"):
            return self.parse_delete()
        if self.check_keyword("UPDATE"):
            return self.parse_update()
        if self.check_keyword("CREATE"):
            return self.parse_create_table()
        if self.check_keyword("EXPLAIN"):
            self.advance()
            # ANALYZE is deliberately not a reserved keyword (columns may
            # be named "analyze"); it only means something right here.
            analyze = False
            if (self.current.type is TokenType.IDENT
                    and self.current.value.upper() == "ANALYZE"):
                self.advance()
                analyze = True
            return ExplainStmt(statement=self.parse_statement(),
                               analyze=analyze)
        return self.parse_statement()

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.check_symbol("("):
            self.advance()
            names = [self.expect_ident()]
            while self.accept_symbol(","):
                names.append(self.expect_ident())
            self.expect_symbol(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self.accept_symbol(","):
            rows.append(self._parse_value_row())
        self.accept_symbol(";")
        self._expect_eof()
        return InsertStmt(table=table, columns=columns, rows=rows)

    def _parse_value_row(self) -> tuple:
        self.expect_symbol("(")
        values = [self._parse_signed_literal()]
        while self.accept_symbol(","):
            values.append(self._parse_signed_literal())
        self.expect_symbol(")")
        return tuple(values)

    def _parse_signed_literal(self):
        if self.accept_symbol("-"):
            value = self.parse_literal_value()
            return -value
        return self.parse_literal_value()

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        self.accept_symbol(";")
        self._expect_eof()
        return DeleteStmt(table=table, where=where)

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        self.accept_symbol(";")
        self._expect_eof()
        return UpdateStmt(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> tuple[str, Expression]:
        column = self.expect_ident()
        self.expect_symbol("=")
        return (column, self.parse_expr())

    def parse_create_table(self) -> CreateTableStmt:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self._parse_column_def()]
        while self.accept_symbol(","):
            columns.append(self._parse_column_def())
        self.expect_symbol(")")
        self.accept_symbol(";")
        self._expect_eof()
        return CreateTableStmt(table=table, columns=columns)

    def _parse_column_def(self) -> tuple[str, str, bool]:
        name = self.expect_ident()
        type_name = self.expect_ident()
        nullable = True
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            nullable = False
        return (name, type_name, nullable)

    def _expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            self._fail("unexpected trailing input")

    def parse_statement(self) -> Statement:
        selects = [self.parse_select()]
        all_flags: list[bool] = []
        while self.accept_keyword("UNION"):
            all_flags.append(self.accept_keyword("ALL"))
            selects.append(self.parse_select())
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self.parse_order_list()
        self.accept_symbol(";")
        if self.current.type is not TokenType.EOF:
            self._fail("unexpected trailing input")
        if len(selects) == 1:
            return Statement(body=selects[0], order_by=order_by)
        return Statement(body=UnionStmt(selects=selects, all_flags=all_flags),
                         order_by=order_by)

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = self.parse_select_list()
        table: Optional[TableRef] = None
        joins: list[JoinClause] = []
        if self.accept_keyword("FROM"):
            table = self.parse_table_ref()
            while self.accept_keyword("JOIN"):
                joined = self.parse_table_ref()
                if self.accept_keyword("USING"):
                    self.expect_symbol("(")
                    columns = [self.expect_ident()]
                    while self.accept_symbol(","):
                        columns.append(self.expect_ident())
                    self.expect_symbol(")")
                    joins.append(JoinClause(table=joined,
                                            using=tuple(columns)))
                elif self.accept_keyword("ON"):
                    joins.append(JoinClause(table=joined,
                                            on=self.parse_expr()))
                else:
                    self._fail("expected USING or ON after JOIN")
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group: Optional[GroupClause] = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group = self.parse_group_clause()
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        return SelectStmt(items=items, table=table, joins=joins, where=where,
                          group=group, having=having, distinct=distinct)

    def parse_table_ref(self) -> TableRef:
        # CUBE / ROLLUP are keywords but legal table names (the paper's
        # Section 4 example queries a table literally called "cube")
        if self.check_keyword("CUBE", "ROLLUP"):
            name = self.advance().value.lower()
        else:
            name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def parse_select_list(self) -> list[SelectItem]:
        items: list[SelectItem] = []
        while True:
            if self.check_symbol("*"):
                self.advance()
                items.append(SelectItem(expression=Star()))
            else:
                expr = self.parse_expr()
                alias = None
                if self.accept_keyword("AS"):
                    alias = self.expect_ident()
                elif self.current.type is TokenType.IDENT:
                    alias = self.advance().value
                items.append(SelectItem(expression=expr, alias=alias))
            if not self.accept_symbol(","):
                break
        return items

    def parse_group_clause(self) -> GroupClause:
        """``[<plain>] [ROLLUP <list>] [CUBE <list>]``; commas between the
        clause kinds (as the Figure 5 query writes them) are tolerated."""
        clause = GroupClause()
        bucket = clause.plain
        while True:
            if self.check_keyword("ROLLUP"):
                self.advance()
                bucket = clause.rollup
            elif self.check_keyword("CUBE"):
                self.advance()
                bucket = clause.cube
            bucket.append(self.parse_group_item())
            if self.accept_symbol(","):
                continue
            if self.check_keyword("ROLLUP", "CUBE"):
                continue
            break
        if clause.is_empty():
            self._fail("empty GROUP BY clause")
        return clause

    def parse_group_item(self) -> tuple[Expression, Optional[str]]:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return (expr, alias)

    def parse_order_list(self) -> list[OrderItem]:
        items = [self.parse_order_item()]
        while self.accept_symbol(","):
            items.append(self.parse_order_item())
        return items

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression=expr, descending=descending)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        operands = [left]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return left
        return BooleanExpr("OR", operands)

    def parse_and(self) -> Expression:
        left = self.parse_not()
        operands = [left]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return left
        return BooleanExpr("AND", operands)

    def parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return NotExpr(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        token = self.current
        if token.type is TokenType.SYMBOL and token.value in (
                "=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return Comparison(token.value, left, right)
        negated = False
        if self.check_keyword("NOT"):
            # NOT IN / NOT BETWEEN / NOT LIKE
            lookahead = self.tokens[self.position + 1]
            if lookahead.is_keyword("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            values = self.parse_value_set()
            expr: Expression = InList(left, values)
            return NotExpr(expr) if negated else expr
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            expr = Between(left, low, high)
            return NotExpr(expr) if negated else expr
        if self.accept_keyword("LIKE"):
            pattern_token = self.current
            if pattern_token.type is not TokenType.STRING:
                self._fail("LIKE expects a string pattern")
            self.advance()
            return LikeExpr(left, pattern_token.value, negated=negated)
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated=is_negated)
        return left

    def parse_value_set(self) -> list:
        """``IN`` list: parenthesized, or the paper's brace form
        ``IN {'Ford', 'Chevy'}``."""
        if self.accept_symbol("{"):
            closer = "}"
        elif self.accept_symbol("("):
            closer = ")"
        else:
            self._fail("expected ( or { after IN")
        values = [self.parse_literal_value()]
        while self.accept_symbol(","):
            values.append(self.parse_literal_value())
        self.expect_symbol(closer)
        return values

    def parse_literal_value(self):
        token = self.current
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.type is TokenType.NUMBER:
            self.advance()
            return _number(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return None
        if token.is_keyword("TRUE"):
            self.advance()
            return True
        if token.is_keyword("FALSE"):
            self.advance()
            return False
        self._fail("expected a literal value")

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.current.type is TokenType.SYMBOL \
                and self.current.value in ("+", "-"):
            op = self.advance().value
            left = Arithmetic(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.current.type is TokenType.SYMBOL \
                and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = Arithmetic(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expression:
        if self.check_symbol("-"):
            self.advance()
            return Arithmetic("-", Literal(0), self.parse_unary())
        if self.check_symbol("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(_number(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("ALL"):
            # the ALL value as a coordinate literal -- the Section 4
            # shorthand `total(ALL, ALL, ALL)` addresses the global cell
            from repro.types import ALL as ALL_VALUE
            self.advance()
            return Literal(ALL_VALUE)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if self.check_symbol("("):
            self.advance()
            if self.check_keyword("SELECT"):
                subquery = self.parse_select()
                # allow UNIONs inside scalar subqueries
                selects = [subquery]
                all_flags: list[bool] = []
                while self.accept_keyword("UNION"):
                    all_flags.append(self.accept_keyword("ALL"))
                    selects.append(self.parse_select())
                self.expect_symbol(")")
                if len(selects) == 1:
                    body: "SelectStmt | UnionStmt" = selects[0]
                else:
                    body = UnionStmt(selects=selects, all_flags=all_flags)
                return ScalarSubquery(Statement(body=body))
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.type is TokenType.IDENT:
            return self.parse_identifier_expression()
        self._fail("expected an expression")

    def parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            branches.append((condition, value))
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        if not branches:
            self._fail("CASE needs at least one WHEN")
        return CaseExpr(branches, default)

    def parse_identifier_expression(self) -> Expression:
        name = self.expect_ident()
        if self.accept_symbol("."):
            # qualified column: the qualifier is dropped after FROM-
            # resolution (USING-style joins surface unqualified names)
            column = self.expect_ident()
            return ColumnRef(column)
        if not self.check_symbol("("):
            return ColumnRef(name)
        return self.parse_call(name)

    def parse_call(self, name: str) -> Expression:
        self.expect_symbol("(")
        upper = name.upper()

        if upper == "GROUPING":
            column = self.expect_ident()
            self.expect_symbol(")")
            return GroupingCall(column)

        distinct = self.accept_keyword("DISTINCT")

        if self.check_symbol("*"):
            self.advance()
            self.expect_symbol(")")
            return AggregateCall(upper, "*", distinct=distinct)

        args: list[Expression] = []
        if not self.check_symbol(")"):
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
        self.expect_symbol(")")

        if upper in TABLE_FUNCTIONS:
            extra = tuple(self._literal_args(args[1:], upper))
            if not args:
                self._fail(f"{name} needs an argument")
            return TableFunctionCall(upper, args[0], extra_args=extra)
        if upper in self.registry or distinct:
            if not args:
                self._fail(f"aggregate {name} needs an argument or *")
            extra = tuple(self._literal_args(args[1:], upper))
            return AggregateCall(upper, args[0], distinct=distinct,
                                 extra_args=extra)
        return FunctionCall(name, args)

    def _literal_args(self, args: list[Expression], name: str) -> list:
        values = []
        for arg in args:
            if not isinstance(arg, Literal):
                self._fail(f"{name} extra arguments must be literals")
            values.append(arg.value)
        return values


def _number(text: str) -> int | float:
    if "." in text:
        return float(text)
    return int(text)


def parse(sql: str, *, registry: AggregateRegistry | None = None) -> Statement:
    """Parse one SELECT statement (possibly a UNION with ORDER BY)."""
    return Parser(tokenize(sql), registry=registry).parse_statement()


def parse_any(sql: str, *, registry: AggregateRegistry | None = None):
    """Parse any supported statement: SELECT, INSERT, DELETE, UPDATE,
    or CREATE TABLE."""
    return Parser(tokenize(sql), registry=registry).parse_any_statement()


def parse_expression(sql: str, *,
                     registry: AggregateRegistry | None = None) -> Expression:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = Parser(tokenize(sql), registry=registry)
    expr = parser.parse_expr()
    if parser.current.type is not TokenType.EOF:
        parser._fail("unexpected trailing input")
    return expr
