"""Static analysis over parsed SQL -- the counting used to reproduce
Table 2 ("SQL Aggregates in Standard Benchmarks").

The paper counted, for each benchmark's query set, how many aggregate
function invocations and how many GROUP BY clauses appear.  These
helpers walk our AST and produce the same counts for any statement.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.expressions import (
    Arithmetic,
    Between,
    BooleanExpr,
    CaseExpr,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    NotExpr,
)
from repro.sql.ast_nodes import (
    AggregateCall,
    ScalarSubquery,
    SelectStmt,
    Star,
    Statement,
    UnionStmt,
)

__all__ = ["count_aggregates", "count_group_bys", "iter_statements",
           "iter_selects", "iter_expressions", "iter_aggregate_calls"]


def iter_statements(statement: Statement) -> Iterator[Statement]:
    """This statement plus every scalar-subquery statement nested
    anywhere inside it -- select clauses *and* ORDER BY keys --
    depth-first."""
    yield statement
    for expr in _statement_expressions(statement):
        for node in _walk(expr):
            if isinstance(node, ScalarSubquery):
                yield from iter_statements(node.statement)


def iter_selects(statement: Statement) -> Iterator[SelectStmt]:
    """Every SELECT in a statement, including UNION branches and scalar
    subqueries (depth-first)."""
    for nested in iter_statements(statement):
        body = nested.body
        if isinstance(body, UnionStmt):
            yield from body.selects
        else:
            yield body


def _statement_expressions(statement: Statement) -> Iterator[Expression]:
    """Top-level expression roots: every SELECT clause in the body plus
    the statement-level ORDER BY keys (aggregates are legal there, e.g.
    ``ORDER BY SUM(Units) DESC``, so Table 2 counts must see them)."""
    body = statement.body
    selects = body.selects if isinstance(body, UnionStmt) else [body]
    for select in selects:
        yield from _select_expressions(select)
    for item in statement.order_by:
        yield item.expression


def _select_expressions(select: SelectStmt) -> Iterator[Expression]:
    for item in select.items:
        if not isinstance(item.expression, Star):
            yield item.expression
    if select.where is not None:
        yield select.where
    if select.group is not None:
        for expr, _ in select.group.all_items():
            yield expr
    if select.having is not None:
        yield select.having
    for join in select.joins:
        if join.on is not None:
            yield join.on


def _walk(expr: Expression) -> Iterator[Expression]:
    yield expr
    children: list[Expression] = []
    if isinstance(expr, (Arithmetic, Comparison)):
        children = [expr.left, expr.right]
    elif isinstance(expr, BooleanExpr):
        children = list(expr.operands)
    elif isinstance(expr, NotExpr):
        children = [expr.operand]
    elif isinstance(expr, (InList, IsNull, LikeExpr)):
        children = [expr.operand]
    elif isinstance(expr, Between):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.branches:
            children.extend((condition, value))
        if expr.default is not None:
            children.append(expr.default)
    elif isinstance(expr, FunctionCall):
        children = list(expr.args)
    elif isinstance(expr, AggregateCall):
        if expr.argument != "*":
            children = [expr.argument]
    for child in children:
        yield from _walk(child)


def iter_expressions(statement: Statement) -> Iterator[Expression]:
    for nested in iter_statements(statement):
        for expr in _statement_expressions(nested):
            yield from _walk(expr)


def iter_aggregate_calls(statement: Statement) -> Iterator[AggregateCall]:
    for expr in iter_expressions(statement):
        if isinstance(expr, AggregateCall):
            yield expr


def count_aggregates(statement: Statement) -> int:
    """Aggregate-function invocations in the statement (Table 2's
    "Aggregates" column)."""
    return sum(1 for _ in iter_aggregate_calls(statement))


def count_group_bys(statement: Statement) -> int:
    """GROUP BY clauses in the statement (Table 2's "GROUP BYs"
    column)."""
    return sum(1 for select in iter_selects(statement)
               if select.group is not None)
