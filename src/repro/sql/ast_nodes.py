"""SQL AST.

Statement-level nodes are plain dataclasses.  Scalar expressions reuse
the engine's :class:`~repro.engine.expressions.Expression` tree
directly, extended with three SQL-only node kinds that the planner must
rewrite before evaluation:

- :class:`AggregateCall` -- ``SUM(x)``, ``COUNT(*)``, ``COUNT(DISTINCT
  x)``...; becomes a reference to a grouped output column;
- :class:`GroupingCall` -- the paper's ``GROUPING(col)`` (Section 3.4);
- :class:`TableFunctionCall` -- Red Brick's whole-column functions
  (``N_tile``, ``Rank``, ``Ratio_To_Total``, ``Cumulative``,
  ``Running_Sum``, ``Running_Average``); becomes a precomputed derived
  column;
- :class:`ScalarSubquery` -- an uncorrelated ``(SELECT ...)`` used as a
  value (the Section 4 percent-of-total query); evaluated at plan time.

Evaluating any of these directly raises, which turns "planner forgot a
rewrite" bugs into loud failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.engine.expressions import Expression
from repro.errors import SQLPlanError

__all__ = [
    "AggregateCall",
    "GroupingCall",
    "TableFunctionCall",
    "ScalarSubquery",
    "SelectItem",
    "Star",
    "TableRef",
    "JoinClause",
    "GroupClause",
    "OrderItem",
    "SelectStmt",
    "UnionStmt",
    "Statement",
    "InsertStmt",
    "DeleteStmt",
    "UpdateStmt",
    "CreateTableStmt",
    "ExplainStmt",
]

TABLE_FUNCTIONS = frozenset({
    "RANK", "N_TILE", "NTILE", "RATIO_TO_TOTAL", "CUMULATIVE",
    "RUNNING_SUM", "RUNNING_AVERAGE",
})


class _Unevaluable(Expression):
    """Base for SQL-only expression nodes the planner must rewrite."""

    def evaluate(self, row) -> Any:
        raise SQLPlanError(
            f"{type(self).__name__} must be rewritten by the planner "
            "before evaluation")


class AggregateCall(_Unevaluable):
    """An aggregate-function call in a select list or HAVING clause."""

    __slots__ = ("name", "argument", "distinct", "extra_args")

    def __init__(self, name: str, argument: "Expression | str",
                 distinct: bool = False,
                 extra_args: tuple = ()) -> None:
        self.name = name.upper()
        self.argument = argument  # Expression or "*"
        self.distinct = distinct
        self.extra_args = extra_args

    def references(self) -> frozenset[str]:
        if self.argument == "*":
            return frozenset()
        return self.argument.references()

    def default_name(self) -> str:
        if self.argument == "*":
            inner = "*"
        else:
            inner = self.argument.default_name()
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"

    def key(self) -> tuple:
        """Structural identity so identical calls share one computed
        column (``SUM(Sales)`` used twice is computed once)."""
        arg = self.argument if isinstance(self.argument, str) \
            else repr(self.argument)
        return (self.name, arg, self.distinct, self.extra_args)

    def __repr__(self) -> str:
        return self.default_name()


class GroupingCall(_Unevaluable):
    """``GROUPING(column)`` (Section 3.4)."""

    __slots__ = ("column",)

    def __init__(self, column: str) -> None:
        self.column = column

    def references(self) -> frozenset[str]:
        return frozenset((self.column,))

    def default_name(self) -> str:
        return f"GROUPING({self.column})"

    def __repr__(self) -> str:
        return self.default_name()


class TableFunctionCall(_Unevaluable):
    """A Red Brick whole-column function call (Section 1.2)."""

    __slots__ = ("name", "argument", "extra_args")

    def __init__(self, name: str, argument: Expression,
                 extra_args: tuple = ()) -> None:
        self.name = name.upper()
        self.argument = argument
        self.extra_args = extra_args

    def references(self) -> frozenset[str]:
        return self.argument.references()

    def default_name(self) -> str:
        parts = [self.argument.default_name()]
        parts.extend(str(a) for a in self.extra_args)
        return f"{self.name}({', '.join(parts)})"

    def key(self) -> tuple:
        return (self.name, repr(self.argument), self.extra_args)

    def __repr__(self) -> str:
        return self.default_name()


class ScalarSubquery(_Unevaluable):
    """An uncorrelated subquery used as a scalar value."""

    __slots__ = ("statement",)

    def __init__(self, statement: "Statement") -> None:
        self.statement = statement

    def references(self) -> frozenset[str]:
        return frozenset()

    def default_name(self) -> str:
        return "(subquery)"

    def __repr__(self) -> str:
        return "ScalarSubquery(...)"


@dataclass
class Star:
    """``SELECT *``."""


@dataclass
class SelectItem:
    expression: "Expression | Star"
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, Star):
            return "*"
        return self.expression.default_name()


@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None


@dataclass
class JoinClause:
    table: TableRef
    using: tuple[str, ...] = ()
    on: Optional[Expression] = None


@dataclass
class GroupClause:
    """The Section 3.2 grouping clause: plain + ROLLUP + CUBE lists.

    Each entry is ``(expression, alias or None)``; aliases name the
    output columns (``Day(Time) AS day``).
    """

    plain: list[tuple[Expression, Optional[str]]] = field(default_factory=list)
    rollup: list[tuple[Expression, Optional[str]]] = field(default_factory=list)
    cube: list[tuple[Expression, Optional[str]]] = field(default_factory=list)

    def all_items(self) -> list[tuple[Expression, Optional[str]]]:
        return list(self.plain) + list(self.rollup) + list(self.cube)

    def is_empty(self) -> bool:
        return not (self.plain or self.rollup or self.cube)


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class SelectStmt:
    items: list[SelectItem]
    table: Optional[TableRef] = None
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[Expression] = None
    group: Optional[GroupClause] = None
    having: Optional[Expression] = None
    distinct: bool = False


@dataclass
class UnionStmt:
    """``select UNION [ALL] select ...`` with a trailing ORDER BY."""

    selects: list[SelectStmt]
    all_flags: list[bool]  # all_flags[i]: UNION ALL between select i and i+1


@dataclass
class Statement:
    """A full statement: the select/union body plus final ORDER BY."""

    body: "SelectStmt | UnionStmt"
    order_by: list[OrderItem] = field(default_factory=list)


@dataclass
class InsertStmt:
    """``INSERT INTO t [(cols)] VALUES (...), (...)``.

    Section 6's maintenance scenario is driven through these: inserts
    made via SQL fire the catalog triggers that keep materialized cubes
    fresh.
    """

    table: str
    columns: tuple[str, ...]  # empty = positional
    rows: list[tuple]


@dataclass
class DeleteStmt:
    """``DELETE FROM t [WHERE expr]``."""

    table: str
    where: Optional[Expression] = None


@dataclass
class UpdateStmt:
    """``UPDATE t SET col = expr, ... [WHERE expr]`` -- executed as
    DELETE + INSERT per row, exactly how Section 6 defines update."""

    table: str
    assignments: list[tuple[str, Expression]]
    where: Optional[Expression] = None


@dataclass
class CreateTableStmt:
    """``CREATE TABLE t (col TYPE [NOT NULL], ...)``."""

    table: str
    columns: list[tuple[str, str, bool]]  # (name, type name, nullable)


@dataclass
class ExplainStmt:
    """``EXPLAIN SELECT ...``: the plan, not the rows.

    Section 2's complaint about the union-of-GROUP-BYs workaround is
    that "the resulting representation of aggregation is too complex to
    analyze for optimization"; a first-class CUBE clause makes the plan
    analyzable, and EXPLAIN shows it: the grouping specification, the
    grouping-set count, the chosen algorithm with its rationale, and
    the estimated result size.

    With ``analyze=True`` (``EXPLAIN ANALYZE ...``) the statement is
    actually executed under a tracer and the rendered span tree -- wall
    clock per step plus the machine-independent
    :class:`~repro.compute.stats.ComputeStats` counters -- is returned
    instead of the static plan.
    """

    statement: "Statement"
    analyze: bool = False
