"""SQL execution: AST -> relational plan -> Table.

The execution pipeline for one SELECT:

1. **FROM** -- catalog lookup plus joins (hash join for USING, nested
   loop for ON);
2. **scalar subqueries** -- uncorrelated ``(SELECT ...)`` expressions
   are evaluated once and replaced by literals (the Section 4
   percent-of-total pattern);
3. **WHERE** -- row filter;
4. **table functions** -- Red Brick whole-column functions (``N_tile``,
   ``Rank``...) are computed over the filtered input and become derived
   columns, so they can serve as grouping columns (the paper's
   ``GROUP BY N_tile(Temp, 10) AS Percentile`` query);
5. **grouping** -- plain / ROLLUP / CUBE per the Section 3.2 clause,
   executed by the :mod:`repro.compute` machinery with automatic
   algorithm choice;
6. **HAVING**, **select-list projection** (with ``GROUPING()``
   rewritten to an ALL test), **DISTINCT**;
7. statement level: **UNION [ALL]** folding and **ORDER BY**.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.aggregates.registry import AggregateRegistry, default_registry
from repro.core.grouping import GroupingSpec
from repro.compute.base import build_task
from repro.compute.optimizer import choose_algorithm, make_algorithm
from repro.engine.catalog import Catalog
from repro.engine.expressions import (
    Arithmetic,
    Between,
    BooleanExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    NotExpr,
)
from repro.engine.groupby import AggregateSpec, hash_group_by
from repro.engine.join import hash_join, nested_loop_join
from repro.engine.operators import distinct as distinct_op
from repro.engine.operators import filter_rows, union_all, union_distinct
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import ResilienceError, SQLExecutionError, SQLPlanError
from repro.obs import instrument, querylog, trace
from repro.obs.trace import Tracer, render_span_rows, use_tracer
from repro.resilience import context as rctx
from repro.sql import functions as _functions  # noqa: F401  (registers)
from repro.sql.ast_nodes import (
    AggregateCall,
    CreateTableStmt,
    DeleteStmt,
    ExplainStmt,
    GroupClause,
    GroupingCall,
    InsertStmt,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    TableFunctionCall,
    UnionStmt,
    UpdateStmt,
)
from repro.sql.parser import parse, parse_any
from repro.aggregates import redbrick
from repro.types import ALL, DataType, NullMode, sort_key

__all__ = ["SQLSession", "execute"]


# -- expression rewriting ------------------------------------------------------


def transform(expr: Expression,
              mapper: Callable[[Expression], Optional[Expression]]
              ) -> Expression:
    """Bottom-up rewrite: ``mapper`` may replace any node; children of
    un-replaced nodes are rebuilt recursively."""
    replacement = mapper(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, transform(expr.left, mapper),
                          transform(expr.right, mapper))
    if isinstance(expr, Comparison):
        return Comparison(expr.op, transform(expr.left, mapper),
                          transform(expr.right, mapper))
    if isinstance(expr, BooleanExpr):
        return BooleanExpr(expr.op,
                           [transform(o, mapper) for o in expr.operands])
    if isinstance(expr, NotExpr):
        return NotExpr(transform(expr.operand, mapper))
    if isinstance(expr, InList):
        return InList(transform(expr.operand, mapper), expr.values)
    if isinstance(expr, Between):
        return Between(transform(expr.operand, mapper),
                       transform(expr.low, mapper),
                       transform(expr.high, mapper))
    if isinstance(expr, IsNull):
        return IsNull(transform(expr.operand, mapper), negated=expr.negated)
    if isinstance(expr, LikeExpr):
        return LikeExpr(transform(expr.operand, mapper), expr.pattern,
                        negated=expr.negated)
    if isinstance(expr, CaseExpr):
        branches = [(transform(c, mapper), transform(v, mapper))
                    for c, v in expr.branches]
        default = transform(expr.default, mapper) \
            if expr.default is not None else None
        return CaseExpr(branches, default)
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name,
                            [transform(a, mapper) for a in expr.args],
                            registry=expr.registry,
                            propagate_null=expr.propagate_null)
    if isinstance(expr, AggregateCall):
        argument = expr.argument
        if argument != "*":
            argument = transform(argument, mapper)
        return AggregateCall(expr.name, argument, distinct=expr.distinct,
                             extra_args=expr.extra_args)
    if isinstance(expr, TableFunctionCall):
        return TableFunctionCall(expr.name,
                                 transform(expr.argument, mapper),
                                 extra_args=expr.extra_args)
    return expr


def contains(expr: Expression, kind: type) -> bool:
    found = False

    def probe(node: Expression) -> Optional[Expression]:
        nonlocal found
        if isinstance(node, kind):
            found = True
        return None

    transform(expr, probe)
    return found


class _IsAllTest(Expression):
    """Rewritten ``GROUPING(col)``: TRUE iff the column carries ALL."""

    __slots__ = ("column",)

    def __init__(self, column: str) -> None:
        self.column = column

    def evaluate(self, row) -> bool:
        return row.get(self.column) is ALL

    def references(self) -> frozenset[str]:
        return frozenset((self.column,))

    def default_name(self) -> str:
        return f"GROUPING({self.column})"


_TABLE_FUNCTION_IMPL = {
    "RANK": lambda values, extra: redbrick.rank(values),
    "N_TILE": lambda values, extra: redbrick.n_tile(values, int(extra[0])),
    "NTILE": lambda values, extra: redbrick.n_tile(values, int(extra[0])),
    "RATIO_TO_TOTAL": lambda values, extra: redbrick.ratio_to_total(values),
    "CUMULATIVE": lambda values, extra: redbrick.cumulative(values),
    "RUNNING_SUM": lambda values, extra: redbrick.running_sum(
        values, int(extra[0])),
    "RUNNING_AVERAGE": lambda values, extra: redbrick.running_average(
        values, int(extra[0])),
}


class SQLSession:
    """A catalog plus execution options.

    ``null_mode`` selects between the paper's "real" ALL representation
    (:attr:`~repro.types.NullMode.ALL_VALUE`, the default) and the
    Section 3.4 minimalist design where ALL prints as NULL (use
    ``GROUPING()`` in the select list to discriminate).

    ``strict=True`` runs the :mod:`repro.lint` semantic checks on every
    SELECT before execution and raises
    :class:`~repro.errors.LintError` on error-severity findings;
    warnings never block.  EXPLAIN always reports the diagnostics
    (as ``lint`` steps) without raising.

    ``algorithm`` pins the cube algorithm for grouped queries (a name
    from :data:`repro.compute.optimizer.ALGORITHMS`) instead of letting
    the optimizer choose -- the knob EXPLAIN ANALYZE uses to profile
    one strategy against another on the same query.  ``dense_budget``
    (cells) caps the Section 5 dense-array allocation the optimizer may
    commit to (array algorithm, columnar dense route); above it the
    sparse strategies take over.

    ``statement_timeout`` (seconds) gives every statement a deadline: a
    statement still running when it expires raises
    :class:`~repro.errors.QueryTimeoutError` at the next cooperative
    checkpoint.  ``memory_budget`` (cells) caps resident scratchpads;
    an in-memory cube that crosses it degrades to the external
    algorithm mid-flight (see :mod:`repro.resilience`).

    ``slow_query_ms`` marks any statement whose end-to-end latency
    reaches the threshold: its query-log record gets ``slow=True`` and
    ``repro_slow_queries_total{kind=...}`` increments (see
    docs/OBSERVABILITY.md).

    ``cache`` is an optional :class:`~repro.serve.CuboidCache` (shared
    across sessions by the query server): grouped SELECTs probe it
    before planning -- a containment hit re-aggregates a cached cuboid
    instead of rescanning the base table, and appears as a
    ``serve.answer`` span with ``cache_hit=True`` in EXPLAIN ANALYZE.
    DML through this session invalidates the mutated table's entries.
    """

    def __init__(self, catalog: Catalog | None = None, *,
                 registry: AggregateRegistry | None = None,
                 null_mode: NullMode = NullMode.ALL_VALUE,
                 strict: bool = False,
                 algorithm: str | None = None,
                 statement_timeout: float | None = None,
                 memory_budget: int | None = None,
                 dense_budget: int = 1 << 20,
                 cache: Any | None = None,
                 slow_query_ms: float | None = None) -> None:
        if statement_timeout is not None and statement_timeout < 0:
            raise ResilienceError(
                f"statement_timeout must be >= 0, got {statement_timeout}")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ResilienceError(
                f"slow_query_ms must be >= 0, got {slow_query_ms}")
        if memory_budget is not None and memory_budget < 1:
            raise ResilienceError(
                f"memory_budget must be at least 1 cell, got {memory_budget}")
        if dense_budget < 1:
            raise ResilienceError(
                f"dense_budget must be at least 1 cell, got {dense_budget}")
        self.catalog = catalog if catalog is not None else Catalog()
        self.registry = registry or default_registry
        self.null_mode = null_mode
        self.strict = strict
        self.algorithm = algorithm
        self.statement_timeout = statement_timeout
        self.memory_budget = memory_budget
        self.dense_budget = dense_budget
        self.cache = cache
        self.slow_query_ms = slow_query_ms
        #: the span roots from the most recent EXPLAIN ANALYZE -- kept
        #: so tools can export the same tree the rows rendered
        #: (spans_to_json_lines / spans_to_collapsed share span ids
        #: with the rendered plan)
        self.last_analyze_roots: list = []

    def register(self, name: str, table: Table, *,
                 replace: bool = False) -> Table:
        return self.catalog.register(name, table, replace=replace)

    # -- entry points -----------------------------------------------------

    def execute(self, sql: str, *,
                context: "Any" = None) -> Table:
        """Parse and run one statement (SELECT or DML/DDL).

        DML statements return a one-row ``rows_affected`` relation;
        CREATE TABLE returns an empty relation with the new schema.
        Inserts and deletes go through the catalog, so triggers fire --
        SQL is a full driver for Section 6's maintained cubes.

        ``context`` overrides the session's per-statement
        :class:`~repro.resilience.ExecutionContext` (built from
        ``statement_timeout`` / ``memory_budget``); pass one to share a
        cancellation token with another thread (the shell's Ctrl-C
        handler does).
        """
        with querylog.track(statement=sql):
            statement = parse_any(sql, registry=self.registry)
            kind, runner = self._dispatch(statement)
            querylog.annotate(kind=kind)
            ctx = context if context is not None else self._make_context()
            started = time.perf_counter()
            with trace.span("sql.query", kind=kind):
                if ctx is None:
                    result = runner()
                else:
                    with rctx.use_context(ctx):
                        ctx.check("sql.query")
                        result = runner()
            elapsed = time.perf_counter() - started
            instrument.record_query(elapsed, kind=kind)
            querylog.add(rows=len(result))
            if self.slow_query_ms is not None \
                    and elapsed * 1000.0 >= self.slow_query_ms:
                instrument.record_slow_query(kind)
                querylog.annotate(slow=True)
            return result

    def _make_context(self):
        """A fresh per-statement context, or None when the session sets
        no resilience options (the deadline must start at execute time,
        not session construction)."""
        if self.statement_timeout is None and self.memory_budget is None:
            return None
        from repro.resilience import ExecutionContext
        return ExecutionContext(timeout=self.statement_timeout,
                                memory_budget=self.memory_budget)

    def _dispatch(self, statement) -> tuple[str, Callable[[], Table]]:
        """Statement kind label plus the thunk that runs it."""
        if isinstance(statement, ExplainStmt):
            if statement.analyze:
                return ("explain_analyze",
                        lambda: self.explain_analyze(statement.statement))
            return "explain", lambda: self.explain(statement.statement)
        if isinstance(statement, InsertStmt):
            return "insert", lambda: self._run_insert(statement)
        if isinstance(statement, DeleteStmt):
            return "delete", lambda: self._run_delete(statement)
        if isinstance(statement, UpdateStmt):
            return "update", lambda: self._run_update(statement)
        if isinstance(statement, CreateTableStmt):
            return "create", lambda: self._run_create(statement)
        return "select", lambda: self.run(statement)

    @staticmethod
    def _affected(count: int) -> Table:
        return Table(Schema([Column("rows_affected", DataType.INTEGER)]),
                     [(count,)])

    def _invalidate_cache(self, table_name: str) -> None:
        """Drop cached cuboids derived from a mutated table.  The
        version-keyed source signature already makes them unmatchable
        (the catalog bumped the version); this frees their memory."""
        if self.cache is not None:
            self.cache.invalidate_table(table_name)

    def _run_insert(self, statement: InsertStmt) -> Table:
        table = self.catalog.get(statement.table)
        names = table.schema.names
        for values in statement.rows:
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise SQLExecutionError(
                        f"INSERT row has {len(values)} values for "
                        f"{len(statement.columns)} named columns")
                mapping = dict(zip(statement.columns, values))
                unknown = set(statement.columns) - set(names)
                if unknown:
                    raise SQLExecutionError(
                        f"INSERT names unknown columns {sorted(unknown)}")
                row = tuple(mapping.get(name) for name in names)
            else:
                if len(values) != len(names):
                    raise SQLExecutionError(
                        f"INSERT row has {len(values)} values; table has "
                        f"{len(names)} columns")
                row = values
            self.catalog.insert(statement.table, row)
        self._invalidate_cache(statement.table)
        return self._affected(len(statement.rows))

    def _matching_rows(self, table: Table,
                       where: Optional[Expression]) -> list[tuple]:
        if where is None:
            return list(table.rows)
        names = table.schema.names
        return [row for row in table
                if where.evaluate(dict(zip(names, row))) is True]

    def _run_delete(self, statement: DeleteStmt) -> Table:
        table = self.catalog.get(statement.table)
        victims = self._matching_rows(table, statement.where)
        for row in victims:
            self.catalog.delete(statement.table, row)
        self._invalidate_cache(statement.table)
        return self._affected(len(victims))

    def _run_update(self, statement: UpdateStmt) -> Table:
        table = self.catalog.get(statement.table)
        names = table.schema.names
        for column, _ in statement.assignments:
            table.schema.index_of(column)  # validate early
        victims = self._matching_rows(table, statement.where)
        for old_row in victims:
            context = dict(zip(names, old_row))
            updates = {column: expr.evaluate(context)
                       for column, expr in statement.assignments}
            new_row = tuple(updates.get(name, value)
                            for name, value in zip(names, old_row))
            # UPDATE = DELETE + INSERT (Section 6)
            self.catalog.update(statement.table, old_row, new_row)
        self._invalidate_cache(statement.table)
        return self._affected(len(victims))

    def _run_create(self, statement: CreateTableStmt) -> Table:
        columns = []
        for name, type_name, nullable in statement.columns:
            try:
                dtype = DataType(type_name.upper())
            except ValueError:
                raise SQLExecutionError(
                    f"unknown column type {type_name!r}; have "
                    f"{[t.value for t in DataType]}") from None
            columns.append(Column(name, dtype, nullable=nullable))
        table = Table(Schema(columns))
        self.catalog.register(statement.table, table)
        self._invalidate_cache(statement.table)
        return table

    # -- EXPLAIN ----------------------------------------------------------

    def explain(self, statement: Statement) -> Table:
        """The plan as a (step, detail) relation -- no rows computed.

        Exposes what Section 2 says the union-of-GROUP-BYs hides from
        the optimizer: the grouping structure, the number of grouping
        sets, the selected algorithm and its rationale, and the
        estimated result cardinality via the Π(Ci+1) law.
        """
        steps: list[tuple[str, str]] = []
        body = statement.body
        selects = body.selects if isinstance(body, UnionStmt) else [body]
        for position, select in enumerate(selects):
            prefix = f"branch {position}: " if len(selects) > 1 else ""
            steps.extend(self._explain_select(select, prefix))
        if len(selects) > 1:
            steps.append(("union", f"{len(selects)} branches"))
        if statement.order_by:
            keys = ", ".join(
                item.expression.default_name()
                + (" DESC" if item.descending else "")
                for item in statement.order_by)
            steps.append(("order by", keys))
        for diagnostic in self._lint(statement):
            steps.append(("lint", diagnostic.format_line()))
        return Table(Schema([Column("step", DataType.STRING),
                             Column("detail", DataType.STRING)]), steps)

    def explain_analyze(self, statement: Statement) -> Table:
        """``EXPLAIN ANALYZE``: execute, then render the observed plan.

        The statement runs for real (rows are computed and discarded)
        under a private :class:`~repro.obs.trace.Tracer`, so spans are
        collected even when session-wide tracing is off and nothing
        leaks into a tracer the caller may have installed.  The result
        is the span tree as (step, detail) rows: indentation shows
        nesting, each row carries the wall-clock duration, and cube
        spans append their :class:`ComputeStats` counters.
        """
        tracer = Tracer()
        started = time.perf_counter()
        with use_tracer(tracer):
            with tracer.span("sql.query", kind="select"):
                result = self.run(statement)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.last_analyze_roots = tracer.roots
        header = f"{len(result)} rows in {elapsed_ms:.2f} ms"
        if tracer.roots:
            header += f"  trace={tracer.roots[0].trace_id}"
        steps: list[tuple[str, str]] = [("analyze", header)]
        for root in tracer.roots:
            steps.extend(render_span_rows(root))
        return Table(Schema([Column("step", DataType.STRING),
                             Column("detail", DataType.STRING)]), steps)

    def _lint(self, statement: Statement):
        """Run the static checks against the session's catalog."""
        from repro.lint import lint_statement
        return lint_statement(statement, catalog=self.catalog,
                              registry=self.registry,
                              null_mode=self.null_mode)

    def _explain_select(self, select: SelectStmt,
                        prefix: str) -> list[tuple[str, str]]:
        import math

        from repro.compute.optimizer import explain_choice

        steps: list[tuple[str, str]] = []
        if select.table is not None:
            steps.append((f"{prefix}scan", select.table.name))
            for join in select.joins:
                how = (f"USING ({', '.join(join.using)})" if join.using
                       else "ON <predicate>")
                steps.append((f"{prefix}join",
                              f"{join.table.name} {how}"))
        if select.where is not None:
            steps.append((f"{prefix}filter", repr(select.where)))

        group = select.group
        if group is not None:
            spec = GroupingSpec(
                plain=tuple(alias or expr.default_name()
                            for expr, alias in group.plain),
                rollup=tuple(alias or expr.default_name()
                             for expr, alias in group.rollup),
                cube=tuple(alias or expr.default_name()
                           for expr, alias in group.cube))
            steps.append((f"{prefix}group", spec.describe()))
            steps.append((f"{prefix}grouping sets",
                          str(spec.set_count())))
            # estimate result size + algorithm on the real input when
            # the table resolves
            if select.table is not None and select.table.name in \
                    self.catalog:
                table = self._run_from(select)
                resolved = self._resolve_subqueries_in_select(select)
                table, rewritten = self._materialize_table_functions(
                    table, resolved)
                dims = [(expr, alias or expr.default_name())
                        for expr, alias in rewritten.group.all_items()]
                probe = self._collect_aggregate_specs(rewritten)
                if not probe:
                    from repro.aggregates.distributive import CountStar
                    probe = [AggregateSpec(function=CountStar(),
                                           input="*", name="__n")]
                task = build_task(table, dims, probe,
                                  spec.grouping_sets())
                cardinalities = task.cardinalities()
                estimate = math.prod(c + 1 for c in cardinalities) \
                    if cardinalities else 1
                steps.append((
                    f"{prefix}cardinalities",
                    ", ".join(f"{name}={c}" for (_, name), c
                              in zip(dims, cardinalities))))
                steps.append((f"{prefix}estimated rows",
                              f"<= {estimate} (Π(Ci+1) law)"))
                from repro.core.lattice import CubeLattice
                lattice = CubeLattice(task.dims, task.masks)
                expected = lattice.expected_cube_cells(
                    cardinalities, len(task.rows))
                steps.append((f"{prefix}expected rows",
                              f"~ {expected} (sparse estimate, "
                              f"T={len(task.rows)})"))
                steps.append((f"{prefix}algorithm",
                              explain_choice(
                                  task, dense_budget=self.dense_budget)))
        if select.having is not None:
            steps.append((f"{prefix}having", repr(select.having)))
        if select.distinct:
            steps.append((f"{prefix}distinct", ""))
        return steps

    def run(self, statement: Statement) -> Table:
        if self.strict:
            from repro.lint import require_clean
            require_clean(self._lint(statement))
        body = statement.body
        if isinstance(body, UnionStmt):
            result = self._run_select(body.selects[0])
            for flag, select in zip(body.all_flags, body.selects[1:]):
                branch = self._run_select(select)
                branch = self._align_schemas(result, branch)
                result = union_all(result, branch) if flag \
                    else union_distinct(result, branch)
        else:
            result = self._run_select(body)
        if statement.order_by:
            result = self._order(result, statement.order_by)
        return result

    # -- select pipeline -----------------------------------------------------

    def _run_select(self, select: SelectStmt) -> Table:
        rctx.checkpoint("sql.from")
        table = self._run_from(select)

        subquery_free = self._resolve_subqueries_in_select(select)

        if subquery_free.where is not None:
            rctx.checkpoint("sql.where")
            where = subquery_free.where
            if contains(where, AggregateCall):
                raise SQLPlanError("aggregates are not allowed in WHERE")
            table = filter_rows(table, where)

        source = self._cache_source_signature(subquery_free) \
            if self.cache is not None else None

        table, rewritten = self._materialize_table_functions(
            table, subquery_free)

        has_aggregates = any(
            not isinstance(item.expression, Star)
            and contains(item.expression, AggregateCall)
            for item in rewritten.items)
        if rewritten.having is not None:
            has_aggregates = has_aggregates or contains(
                rewritten.having, AggregateCall)

        if rewritten.group is None and not has_aggregates:
            result = self._project_plain(table, rewritten.items)
        else:
            result = self._run_grouped(table, rewritten, source=source)

        if rewritten.distinct:
            result = distinct_op(result)
        if self.null_mode is NullMode.NULL_WITH_GROUPING:
            result = self._replace_all_with_null(result)
        return result

    def _run_from(self, select: SelectStmt) -> Table:
        if select.table is None:
            return Table(Schema([Column("__dummy", DataType.INTEGER)]),
                         [(0,)])
        table = self.catalog.get(select.table.name)
        for join in select.joins:
            right = self.catalog.get(join.table.name)
            if join.using:
                table = hash_join(table, right,
                                  list(join.using), list(join.using))
            else:
                table = nested_loop_join(table, right, join.on)
        return table

    def _resolve_subqueries_in_select(self, select: SelectStmt) -> SelectStmt:
        def resolve(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, ScalarSubquery):
                return Literal(self._scalar(expr))
            return None

        items = [item if isinstance(item.expression, Star)
                 else SelectItem(transform(item.expression, resolve),
                                 item.alias)
                 for item in select.items]
        where = transform(select.where, resolve) \
            if select.where is not None else None
        having = transform(select.having, resolve) \
            if select.having is not None else None
        group = select.group
        if group is not None:
            group = GroupClause(
                plain=[(transform(e, resolve), a) for e, a in group.plain],
                rollup=[(transform(e, resolve), a) for e, a in group.rollup],
                cube=[(transform(e, resolve), a) for e, a in group.cube])
        return SelectStmt(items=items, table=select.table,
                          joins=select.joins, where=where, group=group,
                          having=having, distinct=select.distinct)

    def _scalar(self, subquery: ScalarSubquery) -> Any:
        result = self.run(subquery.statement)
        if len(result) != 1 or len(result.schema) != 1:
            raise SQLExecutionError(
                f"scalar subquery returned {len(result)} rows x "
                f"{len(result.schema)} columns; needs exactly 1 x 1")
        return result.rows[0][0]

    def _cache_source_signature(self,
                                select: SelectStmt) -> Optional[tuple]:
        """The semantic-cache source key for a (subquery-resolved,
        pre-table-function) SELECT: the base/joined tables with their
        catalog versions, the WHERE predicate's structural repr, the
        join shape, and the *ordered* table-function keys.

        The table-function keys matter because the rewrite names
        derived columns positionally (``__tf0_rank``): two queries
        grouping different RANK() arguments would otherwise collide on
        the same dimension repr.  ``None`` (no base table, or an
        unknown one) disables caching for this query.
        """
        if select.table is None or select.table.name not in self.catalog:
            return None
        tables = [(select.table.name.upper(),
                   self.catalog.version(select.table.name))]
        joins = []
        for join in select.joins:
            if join.table.name not in self.catalog:
                return None
            tables.append((join.table.name.upper(),
                           self.catalog.version(join.table.name)))
            joins.append((join.table.name.upper(),
                          tuple(join.using) if join.using
                          else repr(join.on)))
        tf_keys: list[tuple] = []

        def collect(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, TableFunctionCall):
                key = expr.key()
                if key not in tf_keys:
                    tf_keys.append(key)
            return None

        # same collection order as _materialize_table_functions, so
        # positional __tfN names map to the same calls
        for item in select.items:
            if not isinstance(item.expression, Star):
                transform(item.expression, collect)
        if select.group is not None:
            for expr, _ in select.group.all_items():
                transform(expr, collect)
        if select.having is not None:
            transform(select.having, collect)

        where_sig = repr(select.where) if select.where is not None else ""
        return (tuple(tables), where_sig, tuple(joins), tuple(tf_keys))

    def _materialize_table_functions(
            self, table: Table,
            select: SelectStmt) -> tuple[Table, SelectStmt]:
        """Compute Red Brick whole-column functions as derived columns."""
        calls: dict[tuple, TableFunctionCall] = {}

        def collect(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, TableFunctionCall):
                calls.setdefault(expr.key(), expr)
            return None

        for item in select.items:
            if not isinstance(item.expression, Star):
                transform(item.expression, collect)
        if select.group is not None:
            for expr, _ in select.group.all_items():
                transform(expr, collect)
        if select.having is not None:
            transform(select.having, collect)
        if not calls:
            return table, select

        names = table.schema.names
        derived_names: dict[tuple, str] = {}
        columns = list(table.schema.columns)
        new_column_values: list[list] = []
        for position, (key, call) in enumerate(calls.items()):
            impl = _TABLE_FUNCTION_IMPL.get(call.name)
            if impl is None:
                raise SQLPlanError(f"unknown table function {call.name}")
            values = [call.argument.evaluate(dict(zip(names, row)))
                      for row in table]
            derived = impl(values, call.extra_args)
            column_name = f"__tf{position}_{call.name.lower()}"
            derived_names[key] = column_name
            columns.append(Column(column_name, DataType.ANY))
            new_column_values.append(derived)

        out = Table(Schema(columns))
        for row_index, row in enumerate(table):
            extra = tuple(vals[row_index] for vals in new_column_values)
            out.append(row + extra, validate=False)

        def rewrite(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, TableFunctionCall):
                return ColumnRef(derived_names[expr.key()])
            return None

        items = [item if isinstance(item.expression, Star)
                 else SelectItem(transform(item.expression, rewrite),
                                 item.alias)
                 for item in select.items]
        group = select.group
        if group is not None:
            group = GroupClause(
                plain=[(transform(e, rewrite), a) for e, a in group.plain],
                rollup=[(transform(e, rewrite), a) for e, a in group.rollup],
                cube=[(transform(e, rewrite), a) for e, a in group.cube])
        having = transform(select.having, rewrite) \
            if select.having is not None else None
        return out, SelectStmt(items=items, table=select.table,
                               joins=select.joins, where=select.where,
                               group=group, having=having,
                               distinct=select.distinct)

    # -- plain (non-grouped) projection ------------------------------------

    def _project_plain(self, table: Table,
                       items: list[SelectItem]) -> Table:
        columns: list[Column] = []
        evaluators: list[Expression | None] = []  # None = expand Star
        for item in items:
            if isinstance(item.expression, Star):
                columns.extend(table.schema.columns)
                evaluators.append(None)
            else:
                name = item.alias or item.expression.default_name()
                if isinstance(item.expression, ColumnRef) \
                        and item.expression.name in table.schema:
                    columns.append(
                        table.schema.column(item.expression.name)
                        .renamed(name))
                else:
                    columns.append(Column(name, DataType.ANY,
                                          all_allowed=True))
                evaluators.append(item.expression)
        schema = Schema(self._dedupe_names(columns))
        names = table.schema.names
        out = Table(schema)
        for row in table:
            context = dict(zip(names, row))
            values: list[Any] = []
            for evaluator in evaluators:
                if evaluator is None:
                    values.extend(row)
                else:
                    values.append(evaluator.evaluate(context))
            out.append(tuple(values), validate=False)
        return out

    @staticmethod
    def _dedupe_names(columns: list[Column]) -> list[Column]:
        seen: dict[str, int] = {}
        out = []
        for column in columns:
            name = column.name
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[column.name]}"
            else:
                seen[name] = 0
            out.append(column.renamed(name))
        return out

    # -- grouped execution -------------------------------------------------

    def _run_grouped(self, table: Table, select: SelectStmt, *,
                     source: Optional[tuple] = None) -> Table:
        group = select.group

        # dimension list with output aliases
        dims: list[tuple[Expression, str]] = []
        plain_names: list[str] = []
        rollup_names: list[str] = []
        cube_names: list[str] = []
        if group is not None:
            for bucket, names_out in ((group.plain, plain_names),
                                      (group.rollup, rollup_names),
                                      (group.cube, cube_names)):
                for expr, alias in bucket:
                    name = alias or expr.default_name()
                    dims.append((expr, name))
                    names_out.append(name)

        # collect aggregate calls from select list and HAVING
        agg_calls: dict[tuple, AggregateCall] = {}

        def collect(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, AggregateCall):
                agg_calls.setdefault(expr.key(), expr)
            return None

        for item in select.items:
            if isinstance(item.expression, Star):
                raise SQLPlanError("SELECT * cannot be combined with "
                                   "GROUP BY or aggregates")
            transform(item.expression, collect)
        if select.having is not None:
            transform(select.having, collect)

        specs: list[AggregateSpec] = []
        agg_names: dict[tuple, str] = {}
        agg_sigs: list[tuple] = []
        taken = {name for _, name in dims}
        for position, (key, call) in enumerate(agg_calls.items()):
            fn = self._make_aggregate(call)
            name = call.default_name()
            if name in taken:
                name = f"{name}#{position}"
            taken.add(name)
            agg_names[key] = name
            agg_sigs.append(key)
            specs.append(AggregateSpec(function=fn, input=call.argument,
                                       name=name))
        if not specs:
            # GROUP BY with no aggregates: count rows invisibly so the
            # grouping machinery still has work; column dropped later
            from repro.aggregates.distributive import CountStar
            hidden = "__rows"
            specs.append(AggregateSpec(function=CountStar(), input="*",
                                       name=hidden))
            agg_names[("__rows",)] = hidden
            # structurally this is COUNT(*): a cached explicit COUNT(*)
            # column can serve it, and vice versa
            agg_sigs.append(("COUNT", "*", False, ()))

        # the workload-history identity: the same order-insensitive
        # dim/agg signatures the semantic cache keys on
        querylog.annotate(signature=querylog.cuboid_signature(
            tuple(repr(expr) for expr, _ in dims), tuple(agg_sigs)))

        if not dims:
            grouped = hash_group_by(table, [], specs).table
        else:
            rctx.checkpoint("sql.group")
            spec = GroupingSpec(plain=tuple(plain_names),
                                rollup=tuple(rollup_names),
                                cube=tuple(cube_names))
            grouped = None
            if self.cache is not None and source is not None:
                grouped = self.cache.serve(
                    table=table, source=source,
                    dim_items=dims,
                    dim_sigs=tuple(repr(expr) for expr, _ in dims),
                    dim_names=tuple(name for _, name in dims),
                    specs=specs,
                    agg_sigs=tuple(agg_sigs),
                    agg_names=tuple(s.name for s in specs),
                    masks=tuple(spec.grouping_sets()))
            if grouped is None:
                task = build_task(table, dims, specs,
                                  spec.grouping_sets())
                algorithm = (make_algorithm(self.algorithm)
                             if self.algorithm
                             else choose_algorithm(
                                 task, memory_budget=self.memory_budget,
                                 dense_budget=self.dense_budget))
                grouped = algorithm.compute(task).table

        # rewrite select/having expressions against the grouped schema
        dim_name_set = {name for _, name in dims}

        # the Section 4 shorthand: an aggregate's select alias becomes a
        # cell-addressing function -- `SUM(Sales) AS total` makes
        # `total(ALL, ALL, ALL)` the global-cell value
        alias_cells = self._alias_cell_lookup(select, agg_calls, agg_names,
                                              dims, grouped)

        def rewrite(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, AggregateCall):
                return ColumnRef(agg_names[expr.key()])
            if isinstance(expr, GroupingCall):
                if expr.column not in dim_name_set:
                    raise SQLPlanError(
                        f"GROUPING({expr.column}) references a column "
                        "that is not grouped")
                return _IsAllTest(expr.column)
            if isinstance(expr, FunctionCall) and alias_cells is not None:
                resolved = alias_cells(expr)
                if resolved is not None:
                    return resolved
            return None

        if select.having is not None:
            having = transform(select.having, rewrite)
            grouped = filter_rows(grouped, having)

        out_items = []
        for item in select.items:
            rewritten = transform(item.expression, rewrite)
            self._check_grouped_references(rewritten, dim_name_set,
                                           set(agg_names.values()))
            out_items.append(SelectItem(rewritten, item.alias))
        return self._project_plain(grouped, out_items)

    def _collect_aggregate_specs(self,
                                 select: SelectStmt) -> list[AggregateSpec]:
        """The query's aggregate calls as specs (used by EXPLAIN so the
        algorithm choice reflects the real functions, e.g. a holistic
        MEDIAN routing to the 2^N-algorithm)."""
        calls: dict[tuple, AggregateCall] = {}

        def collect(expr: Expression) -> Optional[Expression]:
            if isinstance(expr, AggregateCall):
                calls.setdefault(expr.key(), expr)
            return None

        for item in select.items:
            if not isinstance(item.expression, Star):
                transform(item.expression, collect)
        if select.having is not None:
            transform(select.having, collect)
        return [AggregateSpec(function=self._make_aggregate(call),
                              input=call.argument,
                              name=f"__agg{i}")
                for i, (_, call) in enumerate(calls.items())]

    def _alias_cell_lookup(self, select: SelectStmt, agg_calls: dict,
                           agg_names: dict, dims: list,
                           grouped: Table):
        """Build the Section 4 alias-addressing resolver.

        Returns a callable mapping a :class:`FunctionCall` whose name is
        an aggregate's select alias and whose arguments are coordinate
        literals to the addressed cell's value, or None when no aliases
        exist.  ``total(ALL, ALL, ALL)`` is the paper's shorthand for
        the nested percent-of-total subquery.
        """
        aliases: dict[str, str] = {}
        for item in select.items:
            if item.alias and isinstance(item.expression, AggregateCall):
                aliases[item.alias.upper()] = agg_names[
                    item.expression.key()]
        if not aliases:
            return None

        dim_names = [name for _, name in dims]
        dim_idx = [grouped.schema.index_of(name) for name in dim_names]
        cells: dict[tuple, tuple] = {
            tuple(row[i] for i in dim_idx): row for row in grouped}

        def resolve(call: FunctionCall) -> Optional[Expression]:
            column = aliases.get(call.name.upper())
            if column is None:
                return None
            if len(call.args) != len(dim_names):
                raise SQLPlanError(
                    f"{call.name}(...) addresses a {len(dim_names)}-"
                    f"dimensional cube; got {len(call.args)} coordinates")
            coords = []
            for arg in call.args:
                if not isinstance(arg, Literal):
                    raise SQLPlanError(
                        f"{call.name}(...) coordinates must be literals "
                        "or ALL")
                coords.append(arg.value)
            row = cells.get(tuple(coords))
            if row is None:
                raise SQLPlanError(
                    f"{call.name}{tuple(coords)} addresses no cube cell")
            return Literal(row[grouped.schema.index_of(column)])

        return resolve

    def _check_grouped_references(self, expr: Expression,
                                  dims: set[str], aggs: set[str]) -> None:
        """Enforce the SQL rule the paper's Section 3.5 discusses: every
        output column must be grouped or aggregated (decorations are
        provided by :mod:`repro.core.decorations`, not bare SQL)."""
        allowed = dims | aggs
        for name in expr.references():
            if name not in allowed:
                raise SQLPlanError(
                    f"column {name!r} is neither grouped nor aggregated; "
                    "add it to GROUP BY or use repro.core decorations")

    def _make_aggregate(self, call: AggregateCall):
        name = call.name
        if call.distinct:
            if name == "COUNT":
                fn = self.registry.create("COUNT_DISTINCT")
            else:
                raise SQLPlanError(
                    f"DISTINCT is only supported with COUNT, not {name}")
        elif name == "COUNT" and call.argument == "*":
            fn = self.registry.create("COUNT(*)")
        else:
            fn = self.registry.create(name, *call.extra_args)
        # SQL runs holistic functions in strict mode, so the optimizer
        # routes them through the 2^N-algorithm exactly as Section 5
        # prescribes (carrying mode is a library-level research knob)
        from repro.aggregates.holistic import HolisticAggregate
        if isinstance(fn, HolisticAggregate):
            fn.carrying = False
        return fn

    # -- output post-processing ------------------------------------------------

    def _replace_all_with_null(self, table: Table) -> Table:
        out = Table(table.schema)
        for row in table:
            out.append(tuple(None if v is ALL else v for v in row),
                       validate=False)
        return out

    def _align_schemas(self, left: Table, right: Table) -> Table:
        if len(left.schema) != len(right.schema):
            raise SQLExecutionError(
                "UNION branches have different column counts")
        if left.schema.names == right.schema.names:
            return right
        renamed = Schema([
            column.renamed(name) for column, name
            in zip(right.schema.columns, left.schema.names)])
        return Table(renamed, right.rows, validate=False)

    def _order(self, table: Table, order_items: list[OrderItem]) -> Table:
        names = table.schema.names
        decorated = []
        for row in table:
            context = dict(zip(names, row))
            keys = []
            for item in order_items:
                value = item.expression.evaluate(context)
                keys.append(sort_key(value))
            decorated.append((keys, row))
        for position in range(len(order_items) - 1, -1, -1):
            decorated.sort(key=lambda pair: pair[0][position],
                           reverse=order_items[position].descending)
        out = table.empty_like()
        out.extend((row for _, row in decorated), validate=False)
        return out


def execute(sql: str, catalog: Catalog, *,
            registry: AggregateRegistry | None = None,
            null_mode: NullMode = NullMode.ALL_VALUE,
            strict: bool = False) -> Table:
    """One-shot convenience: run ``sql`` against ``catalog``."""
    session = SQLSession(catalog, registry=registry, null_mode=null_mode,
                         strict=strict)
    return session.execute(sql)
