"""SQL front-end for the paper's dialect.

Covers every query literally printed in the paper: the standard
aggregate queries of Section 1.1, the union-of-GROUP-BYs of Section 2,
the ``GROUP BY ... ROLLUP ... CUBE ...`` syntax of Section 3.2 (the
standards-track infix notation the paper describes), ``GROUPING()``
(Section 3.4), computed grouping columns (``Day(Time) AS day``), the
Red Brick table functions (``N_tile``, ``Rank``...), HAVING, ORDER BY,
UNION [ALL], joins, and uncorrelated scalar subqueries (the Section 4
percent-of-total query).
"""

from repro.sql.tokens import tokenize, Token, TokenType
from repro.sql.parser import parse, parse_any, parse_expression
from repro.sql.executor import execute, SQLSession
from repro.sql.analysis import count_aggregates, count_group_bys

__all__ = [
    "SQLSession",
    "Token",
    "TokenType",
    "count_aggregates",
    "count_group_bys",
    "execute",
    "parse",
    "parse_any",
    "parse_expression",
    "tokenize",
]
