"""SQL tokenizer.

Hand-rolled single-pass lexer producing a flat token list the
recursive-descent parser consumes.  Tracks line/column for error
messages.  The dialect's quirks:

- string literals use single quotes with ``''`` escaping;
- the paper writes set literals in braces (``Model IN {'Ford',
  'Chevy'}``), so ``{`` and ``}`` are punctuation;
- identifiers are case-preserving but keyword recognition is
  case-insensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "CUBE", "ROLLUP", "HAVING",
    "ORDER", "UNION", "ALL", "DISTINCT", "AS", "AND", "OR", "NOT", "IN",
    "BETWEEN", "IS", "NULL", "TRUE", "FALSE", "JOIN", "ON", "USING",
    "CASE", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC", "LIKE",
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
    "CREATE", "TABLE", "EXPLAIN",
})

_TWO_CHAR_SYMBOLS = ("<>", "<=", ">=", "!=")
_ONE_CHAR_SYMBOLS = "(),.;*/+-=<>%{}"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"{self.type.value}({self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        ch = text[position]

        if ch == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if ch in " \t\r":
            position += 1
            continue
        if ch == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline < 0 else newline
            continue

        if ch == "'":
            start_line, start_col = line, column()
            position += 1
            chars: list[str] = []
            while True:
                if position >= length:
                    raise SQLSyntaxError("unterminated string literal",
                                         line=start_line, column=start_col)
                ch = text[position]
                if ch == "'":
                    if position + 1 < length and text[position + 1] == "'":
                        chars.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                if ch == "\n":
                    line += 1
                    line_start = position + 1
                chars.append(ch)
                position += 1
            tokens.append(Token(TokenType.STRING, "".join(chars),
                                start_line, start_col))
            continue

        if ch.isdigit() or (ch == "." and position + 1 < length
                            and text[position + 1].isdigit()):
            start_line, start_col = line, column()
            start = position
            seen_dot = False
            while position < length:
                ch = text[position]
                if ch.isdigit():
                    position += 1
                elif ch == "." and not seen_dot and position + 1 < length \
                        and text[position + 1].isdigit():
                    seen_dot = True
                    position += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:position],
                                start_line, start_col))
            continue

        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column()
            start = position
            while position < length and (text[position].isalnum()
                                         or text[position] == "_"):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper,
                                    start_line, start_col))
            else:
                tokens.append(Token(TokenType.IDENT, word,
                                    start_line, start_col))
            continue

        two = text[position:position + 2]
        if two in _TWO_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, two, line, column()))
            position += 2
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, ch, line, column()))
            position += 1
            continue

        raise SQLSyntaxError(f"unexpected character {ch!r}",
                             line=line, column=column())

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
