"""Scalar expression trees.

Expressions are evaluated against a *row context*: a mapping from column
name to value.  They power WHERE predicates, computed grouping columns
("histograms over computed categories", Section 2 -- e.g.
``Day(Time) AS day``), aggregate inputs, and decorations.

NULL and ALL propagate through arithmetic and comparisons the SQL way:
any operation touching a non-value yields NULL (three-valued logic is
collapsed to "NULL is not true" at predicate boundaries).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ExpressionError
from repro.types import ALL, is_null_or_all, sort_key

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Arithmetic",
    "Comparison",
    "BooleanExpr",
    "NotExpr",
    "FunctionCall",
    "InList",
    "Between",
    "IsNull",
    "CaseExpr",
    "ScalarFunctionRegistry",
    "scalar_functions",
    "col",
    "lit",
]

RowContext = Mapping[str, Any]


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, row: RowContext) -> Any:
        raise NotImplementedError

    def references(self) -> frozenset[str]:
        """Column names this expression reads."""
        raise NotImplementedError

    def default_name(self) -> str:
        """Name used for the output column when no alias is given."""
        return repr(self)

    # sugar -------------------------------------------------------------

    def __add__(self, other: "Expression | Any") -> "Arithmetic":
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other: "Expression | Any") -> "Arithmetic":
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other: "Expression | Any") -> "Arithmetic":
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other: "Expression | Any") -> "Arithmetic":
        return Arithmetic("/", self, _wrap(other))

    def eq(self, other: "Expression | Any") -> "Comparison":
        return Comparison("=", self, _wrap(other))

    def ne(self, other: "Expression | Any") -> "Comparison":
        return Comparison("<>", self, _wrap(other))

    def lt(self, other: "Expression | Any") -> "Comparison":
        return Comparison("<", self, _wrap(other))

    def le(self, other: "Expression | Any") -> "Comparison":
        return Comparison("<=", self, _wrap(other))

    def gt(self, other: "Expression | Any") -> "Comparison":
        return Comparison(">", self, _wrap(other))

    def ge(self, other: "Expression | Any") -> "Comparison":
        return Comparison(">=", self, _wrap(other))

    def is_in(self, values: Iterable[Any]) -> "InList":
        return InList(self, list(values))

    def between(self, low: Any, high: Any) -> "Between":
        return Between(self, _wrap(low), _wrap(high))

    def and_(self, other: "Expression") -> "BooleanExpr":
        return BooleanExpr("AND", [self, other])

    def or_(self, other: "Expression") -> "BooleanExpr":
        return BooleanExpr("OR", [self, other])

    def negate(self) -> "NotExpr":
        return NotExpr(self)


def _wrap(value: Any) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


class ColumnRef(Expression):
    """Reference to a named column in the row context."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: RowContext) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(
                f"column {self.name!r} not present in row context "
                f"(have {sorted(row)})") from None

    def references(self) -> frozenset[str]:
        return frozenset((self.name,))

    def default_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: RowContext) -> Any:
        return self.value

    def references(self) -> frozenset[str]:
        return frozenset()

    def default_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class Arithmetic(Expression):
    """Binary arithmetic with SQL NULL propagation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: RowContext) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if is_null_or_all(lhs) or is_null_or_all(rhs):
            return None
        try:
            return _ARITH_OPS[self.op](lhs, rhs)
        except ZeroDivisionError:
            return None
        except TypeError as exc:
            raise ExpressionError(
                f"cannot evaluate {lhs!r} {self.op} {rhs!r}") from exc

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def default_name(self) -> str:
        return f"({self.left.default_name()}{self.op}{self.right.default_name()})"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(Expression):
    """Binary comparison; NULL/ALL operands yield NULL (unknown).

    Per Section 3.3 the set interpretation guides ``=`` on ALL: ALL
    equals only ALL.  We special-case equality so ``col = ALL`` works in
    cube-addressing predicates; ordering comparisons treat ALL like NULL.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: RowContext) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if self.op in ("=", "<>", "!="):
            if lhs is ALL or rhs is ALL:
                result = lhs is rhs
                return result if self.op == "=" else not result
            if lhs is None or rhs is None:
                return None
            return _CMP_OPS[self.op](lhs, rhs)
        if is_null_or_all(lhs) or is_null_or_all(rhs):
            return None
        if type(lhs) is not type(rhs) and not (
                isinstance(lhs, (int, float)) and isinstance(rhs, (int, float))):
            return _CMP_OPS[self.op](sort_key(lhs), sort_key(rhs))
        return _CMP_OPS[self.op](lhs, rhs)

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def default_name(self) -> str:
        return f"({self.left.default_name()}{self.op}{self.right.default_name()})"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanExpr(Expression):
    """N-ary AND / OR with three-valued logic."""

    __slots__ = ("op", "operands")

    def __init__(self, op: str, operands: Sequence[Expression]) -> None:
        if op not in ("AND", "OR"):
            raise ExpressionError(f"unknown boolean operator {op!r}")
        if not operands:
            raise ExpressionError(f"{op} needs at least one operand")
        self.op = op
        self.operands = list(operands)

    def evaluate(self, row: RowContext) -> Any:
        saw_null = False
        for operand in self.operands:
            value = operand.evaluate(row)
            if value is None:
                saw_null = True
            elif self.op == "AND" and not value:
                return False
            elif self.op == "OR" and value:
                return True
        if saw_null:
            return None
        return self.op == "AND"

    def references(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for operand in self.operands:
            out |= operand.references()
        return out

    def __repr__(self) -> str:
        inner = f" {self.op} ".join(repr(o) for o in self.operands)
        return f"({inner})"


class NotExpr(Expression):
    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, row: RowContext) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not value

    def references(self) -> frozenset[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


class InList(Expression):
    __slots__ = ("operand", "values")

    def __init__(self, operand: Expression, values: Sequence[Any]) -> None:
        self.operand = operand
        self.values = list(values)

    def evaluate(self, row: RowContext) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return value in self.values

    def references(self) -> frozenset[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"{self.operand!r} IN {self.values!r}"


class Between(Expression):
    __slots__ = ("operand", "low", "high")

    def __init__(self, operand: Expression, low: Expression,
                 high: Expression) -> None:
        self.operand = operand
        self.low = low
        self.high = high

    def evaluate(self, row: RowContext) -> Any:
        value = self.operand.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        if is_null_or_all(value) or is_null_or_all(low) or is_null_or_all(high):
            return None
        return low <= value <= high

    def references(self) -> frozenset[str]:
        return (self.operand.references() | self.low.references()
                | self.high.references())

    def __repr__(self) -> str:
        return f"{self.operand!r} BETWEEN {self.low!r} AND {self.high!r}"


class LikeExpr(Expression):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any one char)."""

    __slots__ = ("operand", "pattern", "negated", "_compiled")

    def __init__(self, operand: Expression, pattern: str, *,
                 negated: bool = False) -> None:
        import re
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern)
        self._compiled = re.compile(f"^{regex}$", re.DOTALL)

    def evaluate(self, row: RowContext) -> Any:
        value = self.operand.evaluate(row)
        if is_null_or_all(value):
            return None
        result = self._compiled.match(str(value)) is not None
        return not result if self.negated else result

    def references(self) -> frozenset[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        negation = "NOT " if self.negated else ""
        return f"{self.operand!r} {negation}LIKE {self.pattern!r}"


class IsNull(Expression):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expression, *, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def evaluate(self, row: RowContext) -> Any:
        result = self.operand.evaluate(row) is None
        return not result if self.negated else result

    def references(self) -> frozenset[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"{self.operand!r} IS {'NOT ' if self.negated else ''}NULL"


class CaseExpr(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    __slots__ = ("branches", "default")

    def __init__(self, branches: Sequence[tuple[Expression, Expression]],
                 default: Expression | None = None) -> None:
        if not branches:
            raise ExpressionError("CASE needs at least one WHEN branch")
        self.branches = list(branches)
        self.default = default

    def evaluate(self, row: RowContext) -> Any:
        for condition, value in self.branches:
            if condition.evaluate(row) is True:
                return value.evaluate(row)
        if self.default is not None:
            return self.default.evaluate(row)
        return None

    def references(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for condition, value in self.branches:
            out |= condition.references() | value.references()
        if self.default is not None:
            out |= self.default.references()
        return out

    def __repr__(self) -> str:
        return f"CASE({len(self.branches)} branches)"


class ScalarFunctionRegistry:
    """Named scalar functions usable in expressions and SQL text.

    The paper's histogram examples rely on functions over grouping
    columns -- ``Day(Time)``, ``Nation(Latitude, Longitude)`` -- which the
    SQL front-end resolves through this registry.  Names are
    case-insensitive, as in SQL.
    """

    def __init__(self) -> None:
        self._functions: dict[str, Callable[..., Any]] = {}

    def register(self, name: str, fn: Callable[..., Any], *,
                 replace: bool = False) -> None:
        key = name.upper()
        if key in self._functions and not replace:
            raise ExpressionError(f"scalar function {name!r} already registered")
        self._functions[key] = fn

    def get(self, name: str) -> Callable[..., Any]:
        try:
            return self._functions[name.upper()]
        except KeyError:
            raise ExpressionError(f"unknown scalar function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)


#: Process-wide default registry; `repro.sql.functions` populates it.
scalar_functions = ScalarFunctionRegistry()


class FunctionCall(Expression):
    """Call to a registered scalar function; NULL/ALL args yield NULL."""

    __slots__ = ("name", "args", "registry", "propagate_null")

    def __init__(self, name: str, args: Sequence[Expression], *,
                 registry: ScalarFunctionRegistry | None = None,
                 propagate_null: bool = True) -> None:
        self.name = name
        self.args = list(args)
        self.registry = registry if registry is not None else scalar_functions
        self.propagate_null = propagate_null

    def evaluate(self, row: RowContext) -> Any:
        fn = self.registry.get(self.name)
        values = [arg.evaluate(row) for arg in self.args]
        if self.propagate_null and any(is_null_or_all(v) for v in values):
            return None
        return fn(*values)

    def references(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.references()
        return out

    def default_name(self) -> str:
        inner = ",".join(a.default_name() for a in self.args)
        return f"{self.name}({inner})"

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(repr(a) for a in self.args)})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor: ``col('Model')``."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor: ``lit(1994)``."""
    return Literal(value)
