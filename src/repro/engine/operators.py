"""Row-at-a-time relational operators: filter, project, sort, union,
distinct, limit.

These are the building blocks under GROUP BY (Figure 2) and under the
naive union-of-GROUP-BYs cube computation (Section 2's "64-way union").
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TableError
from repro.engine.expressions import ColumnRef, Expression
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.types import DataType, sort_key

__all__ = [
    "filter_rows",
    "project",
    "sort",
    "union_all",
    "union_distinct",
    "distinct",
    "limit",
]


def filter_rows(table: Table, predicate: Expression) -> Table:
    """WHERE: keep rows for which the predicate is *true* (not NULL)."""
    names = table.schema.names
    out = table.empty_like()
    for row in table:
        if predicate.evaluate(dict(zip(names, row))) is True:
            out.append(row, validate=False)
    return out


def _output_column(expr: Expression, alias: str | None,
                   schema: Schema) -> Column:
    name = alias or expr.default_name()
    if isinstance(expr, ColumnRef) and expr.name in schema:
        return schema.column(expr.name).renamed(name)
    return Column(name, DataType.ANY, nullable=True, all_allowed=True)


def project(table: Table,
            items: Sequence[Expression | tuple[Expression, str] | str]) -> Table:
    """SELECT-list projection.

    Each item is a column name, an expression, or an
    ``(expression, alias)`` pair.
    """
    normalized: list[tuple[Expression, str | None]] = []
    for item in items:
        if isinstance(item, str):
            normalized.append((ColumnRef(item), item))
        elif isinstance(item, tuple):
            expr, alias = item
            normalized.append((expr, alias))
        elif isinstance(item, Expression):
            normalized.append((item, None))
        else:
            raise TableError(f"cannot project {item!r}")
    out_schema = Schema([
        _output_column(expr, alias, table.schema)
        for expr, alias in normalized
    ])
    names = table.schema.names
    out = Table(out_schema)
    for row in table:
        context = dict(zip(names, row))
        out.append(tuple(expr.evaluate(context) for expr, _ in normalized),
                   validate=False)
    return out


def sort(table: Table, keys: Sequence[str | tuple[str, bool]]) -> Table:
    """ORDER BY.  Each key is a column name or ``(name, descending)``.

    Uses the library-wide total order (:func:`repro.types.sort_key`), so
    NULL and ALL rows land at the end in ascending order -- the layout
    report writers expect for sub-total rows.
    """
    specs: list[tuple[int, bool]] = []
    for key in keys:
        if isinstance(key, tuple):
            name, descending = key
        else:
            name, descending = key, False
        specs.append((table.schema.index_of(name), descending))

    rows = list(table.rows)
    # stable multi-key sort: apply keys right-to-left
    for idx, descending in reversed(specs):
        rows.sort(key=lambda row: sort_key(row[idx]), reverse=descending)
    out = table.empty_like()
    out.extend(rows, validate=False)
    return out


def _check_union_compatible(left: Table, right: Table) -> None:
    if len(left.schema) != len(right.schema):
        raise TableError(
            f"UNION arity mismatch: {len(left.schema)} vs {len(right.schema)}")


def union_all(*tables: Table) -> Table:
    """UNION ALL: concatenation keeping duplicates."""
    if not tables:
        raise TableError("union_all needs at least one table")
    first = tables[0]
    out = first.empty_like()
    for table in tables:
        _check_union_compatible(first, table)
        out.extend(table.rows, validate=False)
    return out


def union_distinct(*tables: Table) -> Table:
    """SQL UNION: concatenation with duplicate elimination."""
    return distinct(union_all(*tables))


def distinct(table: Table) -> Table:
    """Duplicate elimination preserving first-seen order."""
    seen: set = set()
    out = table.empty_like()
    for row in table:
        if row not in seen:
            seen.add(row)
            out.append(row, validate=False)
    return out


def limit(table: Table, n: int) -> Table:
    """First ``n`` rows."""
    if n < 0:
        raise TableError("limit must be non-negative")
    out = table.empty_like()
    out.extend(table.rows[:n], validate=False)
    return out
