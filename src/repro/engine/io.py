"""CSV import/export for tables.

A practical necessity for a library whose outputs are relations: cube
results round-trip through CSV (the ALL sentinel serialized as the
reserved token ``ALL`` and NULL as an empty field), and fact tables
load from files with type coercion against a declared schema.
"""

from __future__ import annotations

import csv
import datetime
import io
from typing import IO, Any

from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.errors import TableError
from repro.types import ALL, DataType

__all__ = ["write_csv", "read_csv", "to_csv_text", "from_csv_text"]

_ALL_TOKEN = "ALL"


def _serialize(value: Any) -> str:
    if value is None:
        return ""
    if value is ALL:
        return _ALL_TOKEN
    if isinstance(value, datetime.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def _parse(text: str, dtype: DataType) -> Any:
    if text == "":
        return None
    if text == _ALL_TOKEN:
        return ALL
    if dtype is DataType.INTEGER:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOLEAN:
        lowered = text.lower()
        if lowered in ("true", "1", "t", "yes"):
            return True
        if lowered in ("false", "0", "f", "no"):
            return False
        raise TableError(f"cannot parse boolean {text!r}")
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(text)
    if dtype is DataType.TIMESTAMP:
        return datetime.datetime.fromisoformat(text)
    if dtype is DataType.ANY:
        # best effort: int, then float, then string
        for parser in (int, float):
            try:
                return parser(text)
            except ValueError:
                continue
        return text
    return text


def write_csv(table: Table, stream: IO[str]) -> None:
    """Write a table (header + rows) to a text stream.

    ALL cells become the token ``ALL`` and NULLs empty fields; a value
    column that could legitimately contain the *string* ``"ALL"`` would
    be ambiguous, so writing such a table raises.
    """
    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(table.schema.names)
    all_cols = [c.all_allowed for c in table.schema.columns]
    for row in table:
        for position, value in enumerate(row):
            if value == _ALL_TOKEN and not all_cols[position] \
                    and isinstance(value, str):
                raise TableError(
                    f"column {table.schema.names[position]!r} holds the "
                    f"string 'ALL', which is reserved for the ALL "
                    "sentinel in CSV output")
        writer.writerow([_serialize(v) for v in row])


def read_csv(stream: IO[str], schema: Schema, *,
             name: str = "") -> Table:
    """Read a table from a text stream, coercing to ``schema``.

    The CSV header must match the schema's column names exactly (and in
    order) -- a loud failure beats silently misaligned columns.
    """
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        raise TableError("CSV stream is empty (no header)") from None
    if tuple(header) != schema.names:
        raise TableError(
            f"CSV header {header} does not match schema "
            f"{list(schema.names)}")
    table = Table(schema, name=name)
    for line_number, row in enumerate(reader, start=2):
        if len(row) != len(schema):
            raise TableError(
                f"line {line_number}: {len(row)} fields for "
                f"{len(schema)} columns")
        values = tuple(_parse(text, column.dtype)
                       for text, column in zip(row, schema.columns))
        table.append(values)
    return table


def to_csv_text(table: Table) -> str:
    """The table as a CSV string."""
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


def from_csv_text(text: str, schema: Schema, *, name: str = "") -> Table:
    """Parse a CSV string into a table."""
    return read_csv(io.StringIO(text), schema, name=name)
