"""The one-grouping GROUP BY operator (Figure 2 of the paper).

"GROUP BY is an unusual relational operator: it partitions the relation
into disjoint tuple sets and then aggregates over each set."  Both
classic physical strategies are provided:

- :func:`hash_group_by` -- one scan, hash table keyed by the grouping
  values (Graefe's in-memory recommendation quoted in Section 5);
- :func:`sort_group_by` -- sort on the grouping attributes, then a
  sequential scan emitting a group per key run (the strategy the paper
  recommends for ROLLUP, whose answer must be sorted anyway).

Grouping keys may be computed expressions (``Day(Time) AS day``), which
is the paper's fix for the histogram problem of Section 2.

Both return finalized tables; pass ``keep_handles=True`` to also get the
per-group scratchpads, which is what cube-from-core and the maintenance
layer need (handles are mergeable via Iter_super for distributive and
algebraic functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.aggregates.base import AggregateFunction, Handle
from repro.engine.expressions import ColumnRef, Expression
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import TableError
from repro.obs import instrument, trace
from repro.types import DataType, sort_key_tuple

__all__ = ["AggregateSpec", "GroupByResult", "hash_group_by", "sort_group_by",
           "normalize_keys"]


@dataclass
class AggregateSpec:
    """One requested aggregate: a function instance, its input, a name.

    ``input`` is a column name, an :class:`Expression`, or ``"*"`` for
    COUNT(*)-style row counting (the row itself is irrelevant; the
    function is fed the integer 1).
    """

    function: AggregateFunction
    input: Expression | str
    name: str

    def __post_init__(self) -> None:
        if isinstance(self.input, str) and self.input != "*":
            self.input = ColumnRef(self.input)

    def evaluate_input(self, context: dict[str, Any]) -> Any:
        if self.input == "*":
            return 1
        return self.input.evaluate(context)

    def output_column(self) -> Column:
        return Column(self.name, DataType.ANY, nullable=True,
                      all_allowed=False)


@dataclass
class GroupByResult:
    """A finalized GROUP BY result plus (optionally) the live handles."""

    table: Table
    handles: dict[tuple, list[Handle]] | None = None


KeySpec = str | Expression | tuple[Expression, str]


def normalize_keys(keys: Sequence[KeySpec]) -> list[tuple[Expression, str]]:
    """Normalize grouping keys to (expression, output name) pairs."""
    normalized: list[tuple[Expression, str]] = []
    seen: set[str] = set()
    for key in keys:
        if isinstance(key, str):
            pair = (ColumnRef(key), key)
        elif isinstance(key, tuple):
            pair = key
        elif isinstance(key, Expression):
            pair = (key, key.default_name())
        else:
            raise TableError(f"cannot use {key!r} as a grouping key")
        if pair[1] in seen:
            raise TableError(f"duplicate grouping output name {pair[1]!r}")
        seen.add(pair[1])
        normalized.append(pair)
    return normalized


def _output_schema(table: Table, keys: list[tuple[Expression, str]],
                   specs: Sequence[AggregateSpec]) -> Schema:
    columns: list[Column] = []
    for expr, alias in keys:
        if isinstance(expr, ColumnRef) and expr.name in table.schema:
            columns.append(
                table.schema.column(expr.name).renamed(alias).with_all_allowed())
        else:
            columns.append(Column(alias, DataType.ANY, all_allowed=True))
    for spec in specs:
        columns.append(spec.output_column())
    return Schema(columns)


def _finalize(groups: "dict[tuple, list[Handle]] | Iterable[tuple[tuple, list[Handle]]]",
              specs: Sequence[AggregateSpec],
              schema: Schema, *, keep_handles: bool) -> GroupByResult:
    items = groups.items() if isinstance(groups, dict) else groups
    out = Table(schema)
    kept: dict[tuple, list[Handle]] = {}
    for key, handles in items:
        values = tuple(spec.function.end(handle)
                       for spec, handle in zip(specs, handles))
        out.append(key + values, validate=False)
        if keep_handles:
            kept[key] = handles
    return GroupByResult(table=out, handles=kept if keep_handles else None)


def hash_group_by(table: Table, keys: Sequence[KeySpec],
                  specs: Sequence[AggregateSpec], *,
                  keep_handles: bool = False) -> GroupByResult:
    """One-scan hash aggregation.

    With an empty ``keys`` list this degenerates to the scalar aggregate
    of Section 1.1 (``SELECT AVG(Temp) FROM Weather``): exactly one
    output row, even over an empty input.
    """
    normalized = normalize_keys(keys)
    schema = _output_schema(table, normalized, specs)
    names = table.schema.names

    with trace.span("groupby.hash", rows=len(table),
                    keys=",".join(a for _, a in normalized) or "()") as span:
        groups: dict[tuple, list[Handle]] = {}
        if not normalized:
            groups[()] = [spec.function.start() for spec in specs]
        for row in table:
            context = dict(zip(names, row))
            key = tuple(expr.evaluate(context) for expr, _ in normalized)
            handles = groups.get(key)
            if handles is None:
                handles = [spec.function.start() for spec in specs]
                groups[key] = handles
            for position, spec in enumerate(specs):
                value = spec.evaluate_input(context)
                if spec.function.accepts(value):
                    handles[position] = spec.function.next(
                        handles[position], value)
        span.set(groups=len(groups))
    instrument.record_groupby("hash", len(table), len(groups))
    return _finalize(groups, specs, schema, keep_handles=keep_handles)


def sort_group_by(table: Table, keys: Sequence[KeySpec],
                  specs: Sequence[AggregateSpec], *,
                  keep_handles: bool = False) -> GroupByResult:
    """Sort-then-scan aggregation.

    Produces the same bag of rows as :func:`hash_group_by` (asserted by
    the property-based tests) with output sorted by the grouping key --
    the physical plan ROLLUP prefers since "the user often wants the
    answer set in a sorted order, so the sort must be done anyway".
    """
    normalized = normalize_keys(keys)
    schema = _output_schema(table, normalized, specs)
    names = table.schema.names

    if not normalized:
        return hash_group_by(table, keys, specs, keep_handles=keep_handles)

    with trace.span("groupby.sort", rows=len(table),
                    keys=",".join(a for _, a in normalized)) as span:
        keyed_rows: list[tuple[tuple, dict[str, Any]]] = []
        for row in table:
            context = dict(zip(names, row))
            key = tuple(expr.evaluate(context) for expr, _ in normalized)
            keyed_rows.append((key, context))
        keyed_rows.sort(key=lambda pair: sort_key_tuple(pair[0]))

        ordered_groups: list[tuple[tuple, list[Handle]]] = []
        current_key: tuple | None = None
        handles: list[Handle] = []
        for key, context in keyed_rows:
            if current_key is None or key != current_key:
                current_key = key
                handles = [spec.function.start() for spec in specs]
                ordered_groups.append((key, handles))
            for position, spec in enumerate(specs):
                value = spec.evaluate_input(context)
                if spec.function.accepts(value):
                    handles[position] = spec.function.next(
                        handles[position], value)
        span.set(groups=len(ordered_groups))
    instrument.record_groupby("sort", len(table), len(ordered_groups))
    return _finalize(ordered_groups, specs, schema, keep_handles=keep_handles)
