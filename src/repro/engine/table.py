"""Row-oriented tables.

``Table`` is the relation type everything in this library consumes and
produces: the base fact tables, the GROUP BY core, and the cube itself
("the novelty is that cubes are relations" -- Section 1 of the paper).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import TableError
from repro.engine.schema import Column, Schema
from repro.types import ALL, DataType, display_value, sort_key_tuple

__all__ = ["Table", "rows_equal_as_bags"]

Row = tuple


class Table:
    """An in-memory relation: a schema plus a list of row tuples.

    Rows are validated against the schema on insertion (pass
    ``validate=False`` to skip for bulk loads of trusted data).  Tables
    compare equal as *bags* of rows -- relational results are unordered
    multisets, and cube algorithms are validated against each other with
    bag equality.
    """

    __slots__ = ("schema", "_rows", "name")

    def __init__(self, schema: Schema | Sequence, rows: Iterable[Sequence] = (),
                 *, validate: bool = True, name: str = "") -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self.name = name
        self._rows: list[Row] = []
        self.extend(rows, validate=validate)

    # -- construction --------------------------------------------------

    @classmethod
    def from_dicts(cls, records: Sequence[dict], *, name: str = "",
                   schema: Schema | None = None) -> "Table":
        """Build a table from dict records, inferring a schema if absent."""
        if schema is None:
            if not records:
                raise TableError(
                    "cannot infer a schema from zero records; pass schema=")
            names = list(records[0].keys())
            columns = []
            for col_name in names:
                dtype = DataType.ANY
                for record in records:
                    value = record.get(col_name)
                    if value is not None and value is not ALL:
                        dtype = DataType.infer(value)
                        break
                columns.append(Column(col_name, dtype))
            schema = Schema(columns)
        rows = [tuple(record.get(col, None) for col in schema.names)
                for record in records]
        return cls(schema, rows, name=name)

    def empty_like(self) -> "Table":
        return Table(self.schema, name=self.name)

    # -- mutation -------------------------------------------------------

    def append(self, row: Sequence[Any], *, validate: bool = True) -> None:
        row = tuple(row)
        if validate:
            self.schema.validate_row(row)
        self._rows.append(row)

    def extend(self, rows: Iterable[Sequence[Any]], *,
               validate: bool = True) -> None:
        for row in rows:
            self.append(row, validate=validate)

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count removed."""
        kept = [row for row in self._rows if not predicate(row)]
        removed = len(self._rows) - len(kept)
        self._rows[:] = kept
        return removed

    def delete_row(self, row: Sequence[Any]) -> bool:
        """Delete one occurrence of ``row``; True if a row was removed."""
        target = tuple(row)
        try:
            self._rows.remove(target)
        except ValueError:
            return False
        return True

    # -- access ---------------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:  # an empty relation is still a relation
        return True

    def column_index(self, name: str) -> int:
        return self.schema.index_of(name)

    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self._rows]

    def columns(self, names: Sequence[str] | None = None
                ) -> dict[str, list[Any]]:
        """Column-major extraction: {name: values in row order}.

        One transposition pass instead of a :meth:`column_values` scan
        per column -- the shape the columnar compute backend batches
        from.  ``names`` defaults to every column, in schema order.
        """
        if names is None:
            names = self.schema.names
        indexes = [self.schema.index_of(name) for name in names]
        if not self._rows:
            return {name: [] for name in names}
        transposed = list(zip(*self._rows))
        return {name: list(transposed[idx])
                for name, idx in zip(names, indexes)}

    def distinct_values(self, name: str, *,
                        include_all: bool = False) -> list[Any]:
        """Sorted distinct values of a column.

        By default the ALL sentinel is excluded, matching the paper's
        ``ALL()`` function which expands to the set of *real* values.
        """
        idx = self.schema.index_of(name)
        seen = set()
        for row in self._rows:
            value = row[idx]
            if value is ALL and not include_all:
                continue
            seen.add(value)
        return sorted(seen, key=lambda v: sort_key_tuple((v,)))

    def row_dicts(self) -> Iterator[dict[str, Any]]:
        names = self.schema.names
        for row in self._rows:
            yield dict(zip(names, row))

    # -- comparison -----------------------------------------------------

    def as_bag(self) -> Counter:
        return Counter(self._rows)

    def equals_bag(self, other: "Table") -> bool:
        """Bag (multiset) equality, ignoring row order; schemas must have
        the same column names in the same order."""
        return (self.schema.names == other.schema.names
                and self.as_bag() == other.as_bag())

    def sorted_rows(self) -> list[Row]:
        return sorted(self._rows, key=sort_key_tuple)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.equals_bag(other)

    def __hash__(self) -> int:  # tables are mutable; identity hash
        return id(self)

    # -- display ----------------------------------------------------------

    def to_ascii(self, *, max_rows: int | None = None) -> str:
        """Plain-text rendering used by the examples and reports."""
        names = self.schema.names
        rows = self._rows if max_rows is None else self._rows[:max_rows]
        cells = [[display_value(v) for v in row] for row in rows]
        widths = [len(n) for n in names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        out = [sep,
               "|" + "|".join(f" {n:<{w}} " for n, w in zip(names, widths))
               + "|",
               sep]
        for row in cells:
            out.append(
                "|" + "|".join(f" {c:<{w}} " for c, w in zip(row, widths))
                + "|")
        out.append(sep)
        if max_rows is not None and len(self._rows) > max_rows:
            out.append(f"... {len(self._rows) - max_rows} more rows")
        return "\n".join(out)

    def __repr__(self) -> str:
        label = self.name or "Table"
        return f"<{label} {len(self._rows)} rows x {len(self.schema)} cols>"


def rows_equal_as_bags(left: Iterable[Sequence], right: Iterable[Sequence]) -> bool:
    """Bag equality over raw row iterables (used by algorithm cross-checks)."""
    return Counter(map(tuple, left)) == Counter(map(tuple, right))
