"""Schemas: ordered, typed column lists.

Includes the paper's proposed ``ALL [NOT] ALLOWED`` column attribute
(Section 3.3): columns that may carry the ALL sentinel in derived cube
relations declare ``all_allowed=True`` (the default for grouping outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import (
    DuplicateColumnError,
    TypeMismatchError,
    UnknownColumnError,
)
from repro.types import ALL, DataType

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``nullable`` governs NULL admission; ``all_allowed`` governs the ALL
    sentinel (the paper's proposed column attribute, Section 3.3).
    """

    name: str
    dtype: DataType = DataType.ANY
    nullable: bool = True
    all_allowed: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            # repro: allow-S004 -- construction-time misuse (ValueError)
            raise ValueError("column name must be non-empty")
        if isinstance(self.dtype, str):
            object.__setattr__(self, "dtype", DataType(self.dtype.upper()))
        elif not isinstance(self.dtype, DataType):
            # repro: allow-S004 -- construction-time misuse (TypeError)
            raise TypeError(f"dtype must be a DataType, got {self.dtype!r}")

    def validate(self, value: Any) -> None:
        """Raise :class:`TypeMismatchError` if ``value`` is inadmissible."""
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(
                    f"column {self.name!r} is NOT NULL but got NULL")
            return
        if value is ALL:
            if not self.all_allowed:
                raise TypeMismatchError(
                    f"column {self.name!r} is ALL NOT ALLOWED but got ALL")
            return
        if not self.dtype.validate(value):
            raise TypeMismatchError(
                f"column {self.name!r} expects {self.dtype.value}, "
                f"got {value!r} ({type(value).__name__})")

    def with_all_allowed(self) -> "Column":
        """Copy of this column that admits the ALL sentinel."""
        if self.all_allowed:
            return self
        return replace(self, all_allowed=True)

    def renamed(self, name: str) -> "Column":
        return replace(self, name=name)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely-named columns."""

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None)

    def __init__(self, columns: Iterable[Column | tuple | str]) -> None:
        normalized: list[Column] = []
        for item in columns:
            if isinstance(item, Column):
                normalized.append(item)
            elif isinstance(item, str):
                normalized.append(Column(item))
            elif isinstance(item, tuple):
                normalized.append(Column(*item))
            else:
                # repro: allow-S004 -- construction-time misuse (TypeError)
                raise TypeError(f"cannot build a Column from {item!r}")
        index: dict[str, int] = {}
        for pos, column in enumerate(normalized):
            if column.name in index:
                raise DuplicateColumnError(
                    f"duplicate column name {column.name!r}")
            index[column.name] = pos
        object.__setattr__(self, "columns", tuple(normalized))
        object.__setattr__(self, "_index", index)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: int | str) -> Column:
        if isinstance(key, int):
            return self.columns[key]
        return self.columns[self.index_of(key)]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def index_of(self, name: str) -> int:
        """Position of column ``name``; raises :class:`UnknownColumnError`."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(
                f"unknown column {name!r}; have {list(self.names)}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def validate_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise TypeMismatchError(
                f"row has {len(row)} values, schema has "
                f"{len(self.columns)} columns")
        for column, value in zip(self.columns, row):
            column.validate(value)

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to ``names``."""
        return Schema([self.column(name) for name in names])

    def concat(self, other: "Schema", *, prefix_on_clash: str = "") -> "Schema":
        """Concatenate two schemas, optionally prefixing clashing names."""
        merged: list[Column] = list(self.columns)
        taken = set(self.names)
        for column in other.columns:
            name = column.name
            if name in taken:
                if not prefix_on_clash:
                    raise DuplicateColumnError(
                        f"column {name!r} exists in both schemas")
                name = f"{prefix_on_clash}{name}"
                if name in taken:
                    raise DuplicateColumnError(
                        f"column {name!r} still clashes after prefixing")
            merged.append(column.renamed(name))
            taken.add(name)
        return Schema(merged)

    def renamed(self, mapping: dict[str, str]) -> "Schema":
        """Schema with columns renamed per ``mapping`` (missing keys kept)."""
        return Schema([
            column.renamed(mapping.get(column.name, column.name))
            for column in self.columns
        ])

    def with_all_allowed(self, names: Iterable[str]) -> "Schema":
        """Mark the given columns as admitting ALL (for cube outputs)."""
        wanted = set(names)
        for name in wanted:
            self.index_of(name)  # raise early on unknown names
        return Schema([
            column.with_all_allowed() if column.name in wanted else column
            for column in self.columns
        ])

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{c.name}:{c.dtype.value}" for c in self.columns)
        return f"Schema({inner})"
