"""A tiny database catalog: named tables plus insert/delete triggers.

Section 6 reports that SQL Server customers "define triggers on the
underlying tables so that when the tables change, the cube is
dynamically updated" -- the maintenance package attaches exactly such
triggers through this catalog.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.engine.table import Table
from repro.errors import CatalogError

__all__ = ["Catalog"]

InsertTrigger = Callable[[tuple], None]
DeleteTrigger = Callable[[tuple], None]


class Catalog:
    """Named tables with trigger dispatch on mutation.

    Every table carries a **version**: a monotonically increasing
    counter bumped on registration and on every mutation routed through
    the catalog (:meth:`insert`, :meth:`delete`, :meth:`update`).  The
    semantic cuboid cache (:mod:`repro.serve.cache`) keys cached
    answers on the versions of every table a query read, so DML
    invalidates stale entries implicitly: a version that moved can
    never match again.  Mutating a :class:`Table` object directly
    (bypassing the catalog) does *not* bump the version -- SQL DML and
    trigger-maintained cubes always go through here.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._versions: dict[str, int] = {}
        self._insert_triggers: dict[str, list[InsertTrigger]] = {}
        self._delete_triggers: dict[str, list[DeleteTrigger]] = {}

    # -- registration ----------------------------------------------------

    def register(self, name: str, table: Table, *,
                 replace: bool = False) -> Table:
        key = name.upper()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already registered")
        table.name = name
        self._tables[key] = table
        self._bump(key)
        return table

    def version(self, name: str) -> int:
        """The table's mutation counter (0 for never-registered names).

        Versions survive :meth:`drop`, so a dropped-and-recreated table
        never aliases cache entries from its previous incarnation.
        """
        return self._versions.get(name.upper(), 0)

    def _bump(self, key: str) -> None:
        self._versions[key] = self._versions.get(key, 0) + 1

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)

    def drop(self, name: str) -> None:
        key = name.upper()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        self._insert_triggers.pop(key, None)
        self._delete_triggers.pop(key, None)

    # -- triggers ----------------------------------------------------------

    def on_insert(self, name: str, trigger: InsertTrigger) -> None:
        self.get(name)  # validate existence
        self._insert_triggers.setdefault(name.upper(), []).append(trigger)

    def on_delete(self, name: str, trigger: DeleteTrigger) -> None:
        self.get(name)
        self._delete_triggers.setdefault(name.upper(), []).append(trigger)

    # -- mutation with trigger dispatch --------------------------------------

    def insert(self, name: str, row: Sequence[Any]) -> None:
        table = self.get(name)
        table.append(row)
        self._bump(name.upper())
        stored = tuple(row)
        for trigger in self._insert_triggers.get(name.upper(), []):
            trigger(stored)

    def insert_many(self, name: str, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(name, row)

    def delete(self, name: str, row: Sequence[Any]) -> bool:
        """Delete one occurrence of ``row``; triggers fire only when a
        row was actually removed."""
        table = self.get(name)
        removed = table.delete_row(row)
        if removed:
            self._bump(name.upper())
            stored = tuple(row)
            for trigger in self._delete_triggers.get(name.upper(), []):
                trigger(stored)
        return removed

    def update(self, name: str, old_row: Sequence[Any],
               new_row: Sequence[Any]) -> bool:
        """UPDATE = DELETE + INSERT, as Section 6 treats it."""
        if not self.delete(name, old_row):
            return False
        self.insert(name, new_row)
        return True
