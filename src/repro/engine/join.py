"""Joins: hash equi-join and general nested-loop join.

Needed for the star/snowflake queries of Section 3.6 (fact table joined
to dimension tables before cubing) and for decorations fetched through a
dimension (Section 3.5's ``sales JOIN department USING
(department_number)`` example).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.expressions import Expression
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.errors import TableError

__all__ = ["hash_join", "nested_loop_join"]

_JOIN_KINDS = ("inner", "left")


def _joined_schema(left: Table, right: Table, *,
                   drop_right: Sequence[str] = ()) -> Schema:
    keep_right = [c for c in right.schema.columns if c.name not in drop_right]
    return left.schema.concat(Schema(keep_right), prefix_on_clash="right_")


def hash_join(left: Table, right: Table,
              left_keys: Sequence[str], right_keys: Sequence[str], *,
              how: str = "inner") -> Table:
    """Equi-join on named key columns; the join keys appear once
    (USING semantics -- the right copies are dropped).

    ``how='left'`` keeps unmatched left rows with NULL-padded right
    columns, which decorations use: a fact row whose dimension row is
    missing simply gets NULL decorations.
    """
    if how not in _JOIN_KINDS:
        raise TableError(f"unsupported join kind {how!r}; use {_JOIN_KINDS}")
    if len(left_keys) != len(right_keys) or not left_keys:
        raise TableError("join needs equally many (and at least one) keys")

    left_idx = [left.schema.index_of(k) for k in left_keys]
    right_idx = [right.schema.index_of(k) for k in right_keys]
    right_keep_idx = [i for i, c in enumerate(right.schema.columns)
                      if c.name not in set(right_keys)]

    schema = _joined_schema(left, right, drop_right=right_keys)

    buckets: dict[tuple, list[tuple]] = {}
    for row in right:
        key = tuple(row[i] for i in right_idx)
        if any(v is None for v in key):
            continue  # NULL keys never join
        buckets.setdefault(key, []).append(row)

    out = Table(schema)
    pad = (None,) * len(right_keep_idx)
    for row in left:
        key = tuple(row[i] for i in left_idx)
        matches = buckets.get(key, []) if not any(v is None for v in key) else []
        if matches:
            for match in matches:
                out.append(row + tuple(match[i] for i in right_keep_idx),
                           validate=False)
        elif how == "left":
            out.append(row + pad, validate=False)
    return out


def nested_loop_join(left: Table, right: Table, predicate: Expression, *,
                     how: str = "inner") -> Table:
    """General theta-join; the predicate sees right columns prefixed
    with ``right_`` whenever names clash."""
    if how not in _JOIN_KINDS:
        raise TableError(f"unsupported join kind {how!r}; use {_JOIN_KINDS}")
    schema = left.schema.concat(right.schema, prefix_on_clash="right_")
    names = schema.names
    out = Table(schema)
    pad = (None,) * len(right.schema)
    for left_row in left:
        matched = False
        for right_row in right:
            combined = left_row + right_row
            if predicate.evaluate(dict(zip(names, combined))) is True:
                out.append(combined, validate=False)
                matched = True
        if not matched and how == "left":
            out.append(left_row + pad, validate=False)
    return out
