"""Self-contained relational engine substrate.

The paper assumes a SQL engine underneath the CUBE operator; this package
is that substrate: typed schemas, row-oriented tables, scalar expressions,
relational operators (filter/project/sort/union/join) and one-grouping
GROUP BY in both hash and sort flavours (Figure 2 of the paper).
"""

from repro.engine.schema import Column, Schema
from repro.engine.table import Table, rows_equal_as_bags
from repro.engine.expressions import (
    Expression,
    ColumnRef,
    Literal,
    Arithmetic,
    Comparison,
    BooleanExpr,
    NotExpr,
    FunctionCall,
    InList,
    Between,
    IsNull,
    CaseExpr,
    col,
    lit,
)
from repro.engine.operators import (
    filter_rows,
    project,
    sort,
    union_all,
    union_distinct,
    distinct,
    limit,
)
from repro.engine.groupby import AggregateSpec, hash_group_by, sort_group_by
from repro.engine.join import hash_join, nested_loop_join
from repro.engine.catalog import Catalog
from repro.engine.io import from_csv_text, read_csv, to_csv_text, write_csv

__all__ = [
    "AggregateSpec",
    "Arithmetic",
    "Between",
    "BooleanExpr",
    "CaseExpr",
    "Catalog",
    "Column",
    "ColumnRef",
    "Comparison",
    "Expression",
    "FunctionCall",
    "InList",
    "IsNull",
    "Literal",
    "NotExpr",
    "Schema",
    "Table",
    "col",
    "distinct",
    "filter_rows",
    "from_csv_text",
    "hash_group_by",
    "hash_join",
    "limit",
    "lit",
    "nested_loop_join",
    "project",
    "read_csv",
    "rows_equal_as_bags",
    "sort",
    "sort_group_by",
    "to_csv_text",
    "union_all",
    "union_distinct",
    "write_csv",
]
