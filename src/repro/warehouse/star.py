"""Star schemas and star queries (Section 3.6).

"Simpler schemas that have a single dimension table for each dimension
are called a star schema.  Queries against these schemas are called
star queries."

A :class:`StarSchema` binds a fact table to its dimension tables via
foreign keys.  :meth:`StarSchema.query` runs a star query: join the
fact table with exactly the dimensions whose attributes are referenced,
then GROUP BY / ROLLUP / CUBE the requested attributes -- "analysts
might want to cube various dimensions and then aggregate or roll-up the
cube at any or all of these granularities".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cube import AggregateRequest, compound_groupby
from repro.engine.expressions import Expression
from repro.engine.join import hash_join
from repro.engine.table import Table
from repro.errors import SchemaError
from repro.types import NullMode
from repro.warehouse.dimension import DimensionTable

__all__ = ["StarSchema", "DimensionBinding"]


@dataclass(frozen=True)
class DimensionBinding:
    """One spoke of the star: a dimension and the fact FK referencing it."""

    dimension: DimensionTable
    fact_key: str  # foreign-key column in the fact table


class StarSchema:
    """A fact table with its dimension spokes."""

    def __init__(self, fact: Table,
                 bindings: "Sequence[DimensionBinding | tuple]") -> None:
        self.fact = fact
        self.bindings: list[DimensionBinding] = []
        for binding in bindings:
            if isinstance(binding, tuple):
                binding = DimensionBinding(*binding)
            fact.schema.index_of(binding.fact_key)  # validate early
            self.bindings.append(binding)

    def binding_for_attribute(self, attribute: str) -> DimensionBinding | None:
        """The dimension spoke offering ``attribute`` (None if the
        attribute lives on the fact table itself)."""
        if attribute in self.fact.schema:
            return None
        matches = [b for b in self.bindings
                   if attribute in b.dimension.attributes]
        if not matches:
            raise SchemaError(
                f"no dimension offers attribute {attribute!r}")
        if len(matches) > 1:
            owners = [b.dimension.name for b in matches]
            raise SchemaError(
                f"attribute {attribute!r} is ambiguous across {owners}")
        return matches[0]

    def denormalize(self, attributes: Sequence[str]) -> Table:
        """Join the fact table with every dimension needed to surface
        ``attributes`` (the paper's footnote: "query users find it
        convenient to use the denormalized table")."""
        needed: dict[str, DimensionBinding] = {}
        for attribute in attributes:
            binding = self.binding_for_attribute(attribute)
            if binding is not None:
                needed[binding.dimension.name] = binding
        table = self.fact
        for binding in needed.values():
            dimension = binding.dimension
            if binding.fact_key == dimension.key:
                table = hash_join(table, dimension.table,
                                  [binding.fact_key], [dimension.key],
                                  how="left")
            else:
                # keep the FK column; join on differing names
                right = dimension.table
                table = hash_join(table, right, [binding.fact_key],
                                  [dimension.key], how="left")
        return table

    def query(self, *,
              group: Sequence[str] = (),
              rollup: Sequence[str] = (),
              cube: Sequence[str] = (),
              aggregates: Sequence[AggregateRequest],
              where: Expression | None = None,
              null_mode: NullMode = NullMode.ALL_VALUE) -> Table:
        """A star query: denormalize, then the full Section 3.2 clause.

        ``group`` / ``rollup`` / ``cube`` name fact columns or dimension
        attributes (granularities).
        """
        attributes = list(group) + list(rollup) + list(cube)
        if not attributes:
            raise SchemaError("a star query needs at least one grouping "
                              "attribute")
        table = self.denormalize(attributes)
        return compound_groupby(table, plain=list(group),
                                rollup_dims=list(rollup),
                                cube_dims=list(cube),
                                aggregates=list(aggregates),
                                where=where, null_mode=null_mode)
