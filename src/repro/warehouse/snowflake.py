"""Snowflake schemas (Section 3.6, Figure 6).

"Database normalization rules would recommend that the fact that the
California District [is in the Western Region] be stored once [...] So
there might be an office, district, and region tables, rather than one
big denormalized table."

A :class:`SnowflakeSchema` is a star whose dimension tables may
themselves reference *outrigger* dimension tables (office -> district
-> region -> geography).  Attribute resolution walks the outrigger
chain, joining as needed; a snowflake query is then the same
denormalize-then-cube pipeline as a star query, demonstrating the
paper's point that the normalized and denormalized designs answer the
same aggregation questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cube import AggregateRequest, compound_groupby
from repro.engine.expressions import Expression
from repro.engine.join import hash_join
from repro.engine.table import Table
from repro.errors import SchemaError
from repro.types import NullMode
from repro.warehouse.dimension import DimensionTable

__all__ = ["SnowflakeSchema", "Outrigger"]


@dataclass(frozen=True)
class Outrigger:
    """A normalized refinement: ``source`` dimension's ``via`` column is
    a foreign key into ``target`` (office.district_id -> district)."""

    source: str  # name of the dimension holding the FK
    via: str     # FK column on the source dimension
    target: DimensionTable


class SnowflakeSchema:
    """A fact table, first-level dimensions, and outrigger chains."""

    def __init__(self, fact: Table,
                 bindings: Sequence[tuple[DimensionTable, str]],
                 outriggers: Sequence[Outrigger] = ()) -> None:
        self.fact = fact
        self.bindings = list(bindings)
        self.outriggers = list(outriggers)
        names = [dimension.name for dimension, _ in bindings]
        names += [o.target.name for o in outriggers]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in {names}")

    def _dimension(self, name: str) -> DimensionTable:
        for dimension, _ in self.bindings:
            if dimension.name == name:
                return dimension
        for outrigger in self.outriggers:
            if outrigger.target.name == name:
                return outrigger.target
        raise SchemaError(f"unknown dimension {name!r}")

    def owner_of(self, attribute: str) -> str | None:
        """Which dimension (or outrigger) table carries ``attribute``;
        None when it is a fact column."""
        if attribute in self.fact.schema:
            return None
        owners = []
        for dimension, _ in self.bindings:
            if attribute in dimension.attributes:
                owners.append(dimension.name)
        for outrigger in self.outriggers:
            if attribute in outrigger.target.attributes:
                owners.append(outrigger.target.name)
        if not owners:
            raise SchemaError(f"no table offers attribute {attribute!r}")
        if len(owners) > 1:
            raise SchemaError(
                f"attribute {attribute!r} ambiguous across {owners}")
        return owners[0]

    def _join_chain_for(self, owner: str) -> list[str]:
        """Dimension names to join, fact-outwards, to reach ``owner``."""
        first_level = {d.name for d, _ in self.bindings}
        if owner in first_level:
            return [owner]
        # walk outriggers backwards: who references `owner`?
        for outrigger in self.outriggers:
            if outrigger.target.name == owner:
                return self._join_chain_for(outrigger.source) + [owner]
        raise SchemaError(f"dimension {owner!r} is not reachable from the "
                          "fact table")

    def denormalize(self, attributes: Sequence[str]) -> Table:
        """Join outwards along every chain needed for ``attributes``."""
        chains: list[str] = []
        for attribute in attributes:
            owner = self.owner_of(attribute)
            if owner is None:
                continue
            for name in self._join_chain_for(owner):
                if name not in chains:
                    chains.append(name)
        table = self.fact
        joined: set[str] = set()
        for name in chains:
            if name in joined:
                continue
            table = self._join_one(table, name)
            joined.add(name)
        return table

    def _join_one(self, table: Table, name: str) -> Table:
        for dimension, fact_key in self.bindings:
            if dimension.name == name:
                return hash_join(table, dimension.table, [fact_key],
                                 [dimension.key], how="left")
        for outrigger in self.outriggers:
            if outrigger.target.name == name:
                return hash_join(table, outrigger.target.table,
                                 [outrigger.via], [outrigger.target.key],
                                 how="left")
        raise SchemaError(f"unknown dimension {name!r}")

    def query(self, *,
              group: Sequence[str] = (),
              rollup: Sequence[str] = (),
              cube: Sequence[str] = (),
              aggregates: Sequence[AggregateRequest],
              where: Expression | None = None,
              null_mode: NullMode = NullMode.ALL_VALUE) -> Table:
        """A snowflake query: denormalize along the needed chains, then
        the Section 3.2 grouping clause."""
        attributes = list(group) + list(rollup) + list(cube)
        if not attributes:
            raise SchemaError("a snowflake query needs at least one "
                              "grouping attribute")
        table = self.denormalize(attributes)
        return compound_groupby(table, plain=list(group),
                                rollup_dims=list(rollup),
                                cube_dims=list(cube),
                                aggregates=list(aggregates),
                                where=where, null_mode=null_mode)
