"""Granularity hierarchies and lattices (Section 3.6).

"The diagram of Figure 6 suggests that the granularities form a pure
hierarchy.  In reality, the granularities typically form a lattice.
To take just a very simple example, days nest in weeks but weeks do not
nest in months or quarters or years (some weeks are partly in two
years)."

A :class:`Hierarchy` is a DAG of :class:`Granularity` levels connected
by *nesting edges*, each carrying the coarsening function (day ->
week, day -> month, month -> quarter, ...).  ``nests_in`` answers
reachability; ``roll_path`` returns the composition of coarsening
functions along a path, which the warehouse layer uses to roll a cube
up to any reachable granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import HierarchyError

__all__ = ["Granularity", "Hierarchy", "HierarchyError",
           "add_granularity_columns", "calendar_hierarchy"]


@dataclass(frozen=True)
class Granularity:
    """One aggregation granularity of a dimension (day, week, region...)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Hierarchy:
    """A DAG of granularities with coarsening functions on the edges."""

    dimension: str
    _edges: dict[str, dict[str, Callable[[Any], Any]]] = field(
        default_factory=dict)
    _levels: dict[str, Granularity] = field(default_factory=dict)

    def add_level(self, name: str) -> Granularity:
        if name in self._levels:
            return self._levels[name]
        level = Granularity(name)
        self._levels[name] = level
        self._edges.setdefault(name, {})
        return level

    def add_nesting(self, finer: str, coarser: str,
                    mapping: Callable[[Any], Any]) -> None:
        """Declare that ``finer`` values nest in ``coarser`` via
        ``mapping`` (e.g. day -> the week containing it)."""
        for name in (finer, coarser):
            if name not in self._levels:
                raise HierarchyError(
                    f"unknown granularity {name!r}; add_level it first")
        if self._reachable(coarser, finer):
            raise HierarchyError(
                f"nesting {finer} -> {coarser} would create a cycle")
        self._edges[finer][coarser] = mapping

    def levels(self) -> list[str]:
        return sorted(self._levels)

    def nests_in(self, finer: str, coarser: str) -> bool:
        """True iff every ``finer`` value lies inside one ``coarser``
        value (reachability in the DAG).  ``nests_in('week', 'month')``
        is False in the calendar lattice, as the paper insists."""
        if finer == coarser:
            return True
        return self._reachable(finer, coarser)

    def _reachable(self, start: str, goal: str) -> bool:
        frontier = [start]
        seen = {start}
        while frontier:
            current = frontier.pop()
            for neighbor in self._edges.get(current, {}):
                if neighbor == goal:
                    return True
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return False

    def roll_path(self, finer: str,
                  coarser: str) -> Callable[[Any], Any]:
        """The composed coarsening function along a shortest path.

        Raises :class:`HierarchyError` when ``coarser`` is not reachable
        -- e.g. asking to roll weeks up to months.
        """
        if finer == coarser:
            return lambda value: value
        # BFS storing predecessor functions
        frontier: list[tuple[str, list[Callable]]] = [(finer, [])]
        seen = {finer}
        while frontier:
            current, path = frontier.pop(0)
            for neighbor, mapping in self._edges.get(current, {}).items():
                if neighbor in seen:
                    continue
                new_path = path + [mapping]
                if neighbor == coarser:
                    def composed(value: Any,
                                 _fns: tuple = tuple(new_path)) -> Any:
                        for fn in _fns:
                            value = fn(value)
                        return value
                    return composed
                seen.add(neighbor)
                frontier.append((neighbor, new_path))
        raise HierarchyError(
            f"{coarser!r} is not reachable from {finer!r} in the "
            f"{self.dimension} granularity graph (the paper's point: "
            "granularities form a lattice, not a chain)")

    def common_coarsenings(self, level_a: str, level_b: str) -> list[str]:
        """Granularities both levels roll up to (lattice joins)."""
        out = []
        for candidate in self._levels:
            if self.nests_in(level_a, candidate) \
                    and self.nests_in(level_b, candidate):
                out.append(candidate)
        return sorted(out)


def add_granularity_columns(table: "Table", column: str,
                            hierarchy: Hierarchy, base_level: str,
                            levels: "Sequence[str]") -> "Table":
    """Derive one column per requested granularity of ``column``.

    "These dimension tables define a spectrum of aggregation
    granularities for the dimension.  Analysts might want to cube
    various dimensions and then aggregate or roll-up the cube at any or
    all of these granularities" (Section 3.6).  This helper widens a
    fact table with the coarsened values so ROLLUP/CUBE can group on
    them -- and lets tests demonstrate the paper's warning that a CUBE
    over functionally-nested levels (year/month/day) "would be
    meaningless" while a ROLLUP is exactly right.

    Each new column is named ``<level>(<column>)``.  Levels must be
    reachable from ``base_level`` in the hierarchy.
    """
    from repro.engine.schema import Column as _Column, Schema as _Schema
    from repro.engine.table import Table as _Table
    from repro.types import DataType as _DataType

    rollers = [(level, hierarchy.roll_path(base_level, level))
               for level in levels]
    source_idx = table.schema.index_of(column)
    columns = list(table.schema.columns)
    for level, _ in rollers:
        columns.append(_Column(f"{level}({column})", _DataType.ANY))
    out = _Table(_Schema(columns))
    for row in table:
        base_value = row[source_idx]
        extra = tuple(None if base_value is None else roll(base_value)
                      for _, roll in rollers)
        out.append(row + extra, validate=False)
    return out


def calendar_hierarchy() -> Hierarchy:
    """The paper's example time lattice: days nest in weeks, months,
    quarters, and years; weeks nest in nothing else ("some weeks are
    partly in two years")."""
    from repro.sql.functions import month, quarter, week, year

    hierarchy = Hierarchy("time")
    for name in ("day", "week", "month", "quarter", "year", "weekday"):
        hierarchy.add_level(name)

    hierarchy.add_nesting("day", "week", week)
    hierarchy.add_nesting("day", "month", month)
    hierarchy.add_nesting("day", "weekday",
                          lambda d: ("Mon", "Tue", "Wed", "Thu", "Fri",
                                     "Sat", "Sun")[d.weekday()])
    hierarchy.add_nesting(
        "month", "quarter",
        lambda m: f"{m[:4]}-Q{(int(m[5:7]) - 1) // 3 + 1}")
    hierarchy.add_nesting("month", "year", lambda m: int(m[:4]))
    hierarchy.add_nesting("quarter", "year", lambda q: int(q[:4]))
    return hierarchy
