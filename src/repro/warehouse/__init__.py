"""Star and snowflake schemas with granularity hierarchies (Section 3.6).

"It is common to record events and activities with a detailed record
giving all the dimensions of the event [...] There are side tables
that for each dimension value give its attributes. [...] These
dimension tables define a spectrum of aggregation granularities for
the dimension."
"""

from repro.warehouse.hierarchy import (
    Granularity,
    Hierarchy,
    add_granularity_columns,
    calendar_hierarchy,
)
from repro.warehouse.dimension import DimensionTable
from repro.warehouse.star import StarSchema
from repro.warehouse.snowflake import SnowflakeSchema

__all__ = [
    "DimensionTable",
    "Granularity",
    "Hierarchy",
    "SnowflakeSchema",
    "StarSchema",
    "add_granularity_columns",
    "calendar_hierarchy",
]
