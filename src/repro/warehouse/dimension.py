"""Dimension tables (Section 3.6).

"There are side tables that for each dimension value give its
attributes.  For example, the San Francisco sales office is in the
Northern California District, the Western Region, and the US
Geography."

A :class:`DimensionTable` wraps a relation with a declared key column;
its non-key columns are attributes usable as aggregation granularities
and as decorations (every attribute is functionally dependent on the
key by construction -- enforced at build time).
"""

from __future__ import annotations

from typing import Any

from repro.core.decorations import Decoration, verify_functional_dependency
from repro.engine.table import Table
from repro.errors import SchemaError

__all__ = ["DimensionTable"]


class DimensionTable:
    """A keyed dimension relation with attribute lookups."""

    def __init__(self, table: Table, key: str, *, name: str = "") -> None:
        self.table = table
        self.key = key
        self.name = name or table.name or key
        key_idx = table.schema.index_of(key)
        seen: set = set()
        for row in table:
            value = row[key_idx]
            if value in seen:
                raise SchemaError(
                    f"dimension {self.name!r} key {key!r} is not unique: "
                    f"{value!r} repeats")
            seen.add(value)
        self._lookups: dict[str, dict[tuple, Any]] = {}

    @property
    def attributes(self) -> tuple[str, ...]:
        """All non-key columns: the aggregation granularities this
        dimension offers."""
        return tuple(c.name for c in self.table.schema.columns
                     if c.name != self.key)

    def lookup(self, attribute: str) -> dict[tuple, Any]:
        """key-tuple -> attribute value mapping (cached, FD-verified)."""
        if attribute not in self._lookups:
            self._lookups[attribute] = verify_functional_dependency(
                self.table, [self.key], attribute)
        return self._lookups[attribute]

    def attribute_of(self, key_value: Any, attribute: str) -> Any:
        return self.lookup(attribute).get((key_value,))

    def decoration(self, attribute: str, *,
                   determinant: str | None = None) -> Decoration:
        """A :class:`~repro.core.decorations.Decoration` mapping the fact
        table's foreign-key column (``determinant``, defaulting to this
        dimension's key name) to the attribute."""
        return Decoration(name=attribute,
                          determinants=(determinant or self.key,),
                          lookup=self.lookup(attribute))

    def members(self) -> list[Any]:
        """All key values."""
        return self.table.column_values(self.key)

    def __repr__(self) -> str:
        return (f"<DimensionTable {self.name} key={self.key} "
                f"attributes={list(self.attributes)}>")
