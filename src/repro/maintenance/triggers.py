"""Trigger-based cube maintenance (Section 6).

"These customers then define triggers on the underlying tables so that
when the tables change, the cube is dynamically updated."

:func:`attach_cube_maintenance` builds a :class:`MaterializedCube` over
a catalog table and registers insert/delete triggers so every mutation
made *through the catalog* keeps the cube fresh automatically.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.catalog import Catalog
from repro.maintenance.materialized import MaterializedCube

__all__ = ["attach_cube_maintenance"]


def attach_cube_maintenance(catalog: Catalog, table_name: str,
                            dims: Sequence, aggregates: Sequence, *,
                            kind: str = "cube",
                            retain_base: bool = True) -> MaterializedCube:
    """Materialize a cube over ``table_name`` and keep it maintained.

    Returns the :class:`MaterializedCube`; from now on
    ``catalog.insert(table_name, row)`` / ``catalog.delete(...)`` /
    ``catalog.update(...)`` update the cube incrementally.
    """
    base = catalog.get(table_name)
    cube = MaterializedCube(base, dims, aggregates, kind=kind,
                            retain_base=retain_base)
    catalog.on_insert(table_name, cube.insert)
    catalog.on_delete(table_name, cube.delete)
    return cube
