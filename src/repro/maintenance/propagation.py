"""Propagation bookkeeping for materialized-cube maintenance.

Counters mirror Section 6's cost discussion: an INSERT should touch at
most 2^N cells (fewer with the max short-circuit); a DELETE of a
delete-holistic aggregate's extreme forces cell recomputation from the
base table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs import instrument

__all__ = ["MaintenanceStats", "PER_OPERATION_WINDOW"]

#: How many recent operations keep their exact touched-cell count.
#: A streaming workload runs maintenance per batch forever; an
#: unbounded list here was a slow leak, so the trail is a ring -- the
#: totals above stay exact, only the per-op detail ages out.
PER_OPERATION_WINDOW = 1024


@dataclass
class MaintenanceStats:
    """Counters accumulated across maintenance operations."""

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    #: cells whose scratchpads were updated in place
    cells_updated: int = 0
    #: cells visited but skipped by the Section 6 short-circuit
    #: ("if the new value loses one competition, it will lose in all
    #: lower dimensions")
    cells_short_circuited: int = 0
    #: cells recomputed from base data (delete-holistic functions)
    cells_recomputed: int = 0
    #: base rows re-scanned during recomputations
    rows_rescanned: int = 0
    #: operations (or batches) that failed and were rolled back
    rollbacks: int = 0
    #: ring buffer of the last :data:`PER_OPERATION_WINDOW` operations'
    #: touched-cell counts (``deque`` -- ``append`` keeps working for
    #: existing callers, old entries fall off the left)
    per_operation_touched: deque = field(
        default_factory=lambda: deque(maxlen=PER_OPERATION_WINDOW))

    def summary(self) -> str:
        return (f"inserts={self.inserts} deletes={self.deletes} "
                f"updated={self.cells_updated} "
                f"short-circuited={self.cells_short_circuited} "
                f"recomputed={self.cells_recomputed} "
                f"rescanned={self.rows_rescanned} "
                f"rollbacks={self.rollbacks}")

    def as_dict(self) -> dict[str, int]:
        """The counters as plain data (exporter-friendly)."""
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "updates": self.updates,
            "cells_updated": self.cells_updated,
            "cells_short_circuited": self.cells_short_circuited,
            "cells_recomputed": self.cells_recomputed,
            "rows_rescanned": self.rows_rescanned,
            "rollbacks": self.rollbacks,
        }

    def note_operation(self, op: str, cells_touched: int) -> None:
        """Mirror one finished operation into the process-wide metrics
        registry (``repro_maintenance_*``); a no-op when metrics are
        disabled, so callers invoke it unconditionally."""
        instrument.record_maintenance(op, cells_touched)
