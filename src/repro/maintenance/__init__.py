"""Maintaining materialized cubes (Section 6 of the paper).

"We have been surprised that some customers use these operators to
compute and store the cube.  These customers then define triggers on
the underlying tables so that when the tables change, the cube is
dynamically updated."
"""

from repro.maintenance.ingest import IngestBatch, StreamIngestor
from repro.maintenance.materialized import MaterializedCube
from repro.maintenance.propagation import MaintenanceStats
from repro.maintenance.triggers import attach_cube_maintenance

__all__ = [
    "IngestBatch",
    "MaintenanceStats",
    "MaterializedCube",
    "StreamIngestor",
    "attach_cube_maintenance",
]
