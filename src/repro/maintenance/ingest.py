"""Streaming ingest: coalesce DML and fold delta cubes into the cache.

Section 6 shows the cube is *maintainable*: INSERTs fold into
distributive/algebraic cells in O(1), DELETEs unapply where the
scratchpad supports it, UPDATEs are DELETE + INSERT.  The serve layer
historically answered every mutation with eager invalidation instead --
a hot write stream destroyed the cuboid cache heavy read traffic
depends on.  :class:`StreamIngestor` is the §6 answer at serving scale:

- **coalesce**: incoming operations buffer per table and flush as one
  batch when the buffer reaches ``max_ops`` or its oldest operation
  ages past ``max_age_s`` (callers can also flush explicitly -- the
  query server fences every query behind a flush for
  read-your-writes);
- **apply**: a flush routes the batch through the
  :class:`~repro.engine.catalog.Catalog` (triggers fire, versions
  bump), exactly like SQL DML would;
- **merge**: the batch then reaches the cuboid cache *once* as a delta
  (:meth:`~repro.serve.cache.CuboidCache.apply_delta`): every cached
  ancestor whose aggregates absorb the delta is ``Iter_super``-merged
  and re-keyed to the new versions, and only delete-holistic cells
  (the departing MIN/MAX extreme) cost an invalidation.

Backpressure is layered: the wire op runs under the server's admission
control like any write, and the buffer itself refuses ops past
``max_buffer`` with :class:`~repro.errors.ServerOverloadedError`, so an
unbounded producer is shed instead of buffered into an OOM.

A :class:`~repro.resilience.ChaosInjector` can be wired in to exercise
the crash seams: ``ingest_flush`` fires after the catalog holds the
batch but before the cache saw it -- the crash must leave the system
consistent (version-keyed entries simply stop matching, and
:meth:`CuboidCache.apply_delta`'s ``base_version`` fence keeps a later
batch from merging into an entry that missed this one).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional, Sequence

from repro.analysis import locktrack
from repro.errors import MaintenanceError, ServerOverloadedError
from repro.obs import instrument, trace

__all__ = ["StreamIngestor", "IngestBatch"]


class IngestBatch:
    """The buffered, not-yet-flushed operations for one table."""

    __slots__ = ("inserts", "deletes", "updates", "first_at")

    def __init__(self) -> None:
        self.inserts: list[tuple] = []
        self.deletes: list[tuple] = []
        self.updates: list[tuple[tuple, tuple]] = []
        self.first_at = time.monotonic()

    def __len__(self) -> int:
        return len(self.inserts) + len(self.deletes) + len(self.updates)


class StreamIngestor:
    """Coalesce streamed DML per table; flush through catalog + cache.

    ``cache`` is optional: without one the ingestor is a plain batched
    DML applier (versions still bump, triggers still fire).
    """

    def __init__(self, catalog: Any, cache: Any = None, *,
                 max_ops: int = 256, max_age_s: float = 0.5,
                 max_buffer: int = 10_000,
                 chaos: Any = None) -> None:
        if max_ops < 1:
            raise MaintenanceError("max_ops must be >= 1")
        if max_buffer < max_ops:
            raise MaintenanceError("max_buffer must be >= max_ops")
        self.catalog = catalog
        self.cache = cache
        self.max_ops = max_ops
        self.max_age_s = max_age_s
        self.max_buffer = max_buffer
        self.chaos = chaos
        self._lock = threading.Lock()
        self._pending: dict[str, IngestBatch] = {}
        self.stats = {"ops_buffered": 0, "flushes": 0,
                      "inserts_applied": 0, "deletes_applied": 0,
                      "updates_applied": 0, "ops_dropped": 0,
                      "entries_merged": 0, "entries_invalidated": 0}

    # -- buffering ---------------------------------------------------------

    def submit(self, table: str, *,
               inserts: Sequence[Sequence] = (),
               deletes: Sequence[Sequence] = (),
               updates: Sequence[tuple] = ()) -> dict[str, Any]:
        """Buffer one request's operations; flush if thresholds say so.

        ``updates`` entries are ``(old_row, new_row)`` pairs.  Returns
        ``{"buffered": n, "flushed": {...} | None}``.
        """
        self.catalog.get(table)  # validate existence before buffering
        key = table.upper()
        n_ops = len(inserts) + len(deletes) + len(updates)
        flush_now = False
        with self._locked():
            if self.pending_ops_locked() + n_ops > self.max_buffer:
                raise ServerOverloadedError(
                    f"ingest buffer full ({self.max_buffer} ops); "
                    "retry after the backlog drains")
            batch = self._pending.get(key)
            if batch is None:
                batch = self._pending[key] = IngestBatch()
            batch.inserts.extend(tuple(row) for row in inserts)
            batch.deletes.extend(tuple(row) for row in deletes)
            batch.updates.extend(
                (tuple(old), tuple(new)) for old, new in updates)
            self.stats["ops_buffered"] += n_ops
            flush_now = (len(batch) >= self.max_ops
                         or (time.monotonic() - batch.first_at
                             >= self.max_age_s))
            pending = self.pending_ops_locked()
        instrument.set_ingest_pending(pending)
        flushed = self.flush(key) if flush_now else None
        return {"buffered": n_ops, "flushed": flushed}

    def _locked(self):
        return _TrackedLock(self._lock)

    def pending_ops_locked(self) -> int:
        return sum(len(batch) for batch in self._pending.values())

    def pending_ops(self) -> int:
        """Operations buffered and not yet flushed (all tables)."""
        with self._locked():
            return self.pending_ops_locked()

    # -- flushing ----------------------------------------------------------

    def flush(self, table: Optional[str] = None) -> dict[str, Any]:
        """Flush one table's batch (or every table's) through the
        catalog and merge the delta into the cache.

        Returns aggregate counts:
        ``{"inserts": i, "deletes": d, "updates": u,
        "merged": m, "invalidated": n}``.
        """
        totals = {"inserts": 0, "deletes": 0, "updates": 0,
                  "merged": 0, "invalidated": 0}
        with self._locked():
            if table is None:
                batches = dict(self._pending)
                self._pending.clear()
            else:
                key = table.upper()
                batches = {}
                batch = self._pending.pop(key, None)
                if batch is not None:
                    batches[key] = batch
        try:
            for key, batch in batches.items():
                outcome = self._flush_batch(key, batch)
                for field in totals:
                    totals[field] += outcome[field]
        finally:
            instrument.set_ingest_pending(self.pending_ops())
        return totals

    def _flush_batch(self, key: str, batch: IngestBatch) -> dict[str, int]:
        """Apply one table's coalesced batch: catalog first, then one
        delta into the cache.  UPDATEs decompose into DELETE + INSERT
        (Section 6) so the delta cube sees plain row movement."""
        with trace.span("ingest.flush", table=key,
                        ops=len(batch)) as span:
            base_version = self.catalog.version(key)
            applied_in: list[tuple] = []
            applied_out: list[tuple] = []
            counts = {"insert": 0, "delete": 0, "update": 0}
            try:
                for row in batch.inserts:
                    self.catalog.insert(key, row)
                    applied_in.append(row)
                    counts["insert"] += 1
                for row in batch.deletes:
                    if self.catalog.delete(key, row):
                        applied_out.append(row)
                        counts["delete"] += 1
                    else:
                        self.stats["ops_dropped"] += 1
                for old, new in batch.updates:
                    if self.catalog.update(key, old, new):
                        applied_out.append(old)
                        applied_in.append(new)
                        counts["update"] += 1
                    else:
                        self.stats["ops_dropped"] += 1
                if self.chaos is not None:
                    # the crash seam: the catalog holds the batch, the
                    # cache has not seen it (recovery: version fences)
                    self.chaos.crash("ingest_flush")
            finally:
                # whatever reached the catalog must reach the cache,
                # even when a later row in the batch failed validation
                # (or chaos killed the flush): the cache either merges
                # the applied prefix or invalidates -- it never keeps
                # an entry the catalog has moved past
                delta = None
                if self.cache is not None and (applied_in or applied_out):
                    delta = self.cache.apply_delta(
                        key, applied_in, applied_out,
                        catalog=self.catalog,
                        base_version=base_version)
                self.stats["flushes"] += 1
                self.stats["inserts_applied"] += counts["insert"]
                self.stats["deletes_applied"] += counts["delete"]
                self.stats["updates_applied"] += counts["update"]
                merged = delta["merged"] if delta else 0
                invalidated = delta["invalidated"] if delta else 0
                self.stats["entries_merged"] += merged
                self.stats["entries_invalidated"] += invalidated
                instrument.record_ingest_flush(counts)
                span.set(inserts=counts["insert"],
                         deletes=counts["delete"],
                         updates=counts["update"],
                         merged=merged, invalidated=invalidated)
        return {"inserts": counts["insert"], "deletes": counts["delete"],
                "updates": counts["update"], "merged": merged,
                "invalidated": invalidated}

    def snapshot(self) -> dict[str, Any]:
        """Stats plus the live buffer depth (for ``stats`` wire ops)."""
        with self._locked():
            return {**self.stats, "pending_ops": self.pending_ops_locked()}


class _TrackedLock:
    """Context manager pairing the ingest lock with the lock-order
    sanitizer (same pattern as the serve cache's ``_locked``)."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock

    def __enter__(self) -> None:
        self._lock.acquire()
        locktrack.note_acquire("maintenance.ingest")

    def __exit__(self, *exc: Any) -> None:
        locktrack.note_release("maintenance.ingest")
        self._lock.release()
