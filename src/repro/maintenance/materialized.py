"""Materialized cubes with incremental maintenance (Section 6).

A :class:`MaterializedCube` stores a live scratchpad (Figure 7 handle)
per aggregate per cube cell and keeps it consistent under INSERT,
DELETE, and UPDATE of the base table:

- **INSERT** visits the record's cell in each grouping set -- at most
  2^N cells -- folding the new values in with ``Iter``.  For
  insert-monotone functions (MIN/MAX) the paper's short-circuit prunes
  the walk: "if the new value loses one competition, then it will lose
  in all lower dimensions", so all coarser cells below a losing cell
  are skipped.
- **DELETE** asks each aggregate to ``unapply`` the departing values.
  Functions that are algebraic for delete (COUNT, SUM, AVG, VARIANCE)
  absorb it in O(1); delete-holistic functions (MIN/MAX when the
  extreme leaves, MEDIAN in strict mode) decline, and the affected cell
  is **recomputed from retained base data** -- the cost asymmetry the
  paper highlights ("max is distributive for SELECT and INSERT, but it
  is holistic for DELETE").
- **UPDATE** is DELETE + INSERT, as Section 6 treats it.

Cells whose contributing-row count reaches zero are evicted, so the
materialized cube stays exactly equal to a from-scratch recomputation
(a property the test-suite asserts under random operation streams).

**Transactions.**  Every operation is apply-or-rollback: a DELETE that
raises :class:`~repro.errors.DeleteRequiresRecomputeError` halfway down
the lattice walk (some super-cells decremented, others not) restores
the pre-operation state instead of leaving the cube inconsistent.
:meth:`MaterializedCube.transaction` widens the same guarantee to a
whole batch -- wrap any sequence of inserts/deletes/updates and either
all of them land or none do -- and :meth:`MaterializedCube.apply_batch`
is the convenience form.  Rollbacks count on
``repro_maintenance_rollbacks_total`` and appear as ``rollback`` span
events.

**Durability.**  A cube bound to a :class:`~repro.storage.CubeStore`
with :meth:`MaterializedCube.bind_journal` (normally via
:meth:`CubeStore.attach <repro.storage.CubeStore.attach>`) writes every
outermost transaction through the store's write-ahead log: a ``begin``
record, one ``op`` record per base-row mutation, and a *synced*
``commit`` record before the transaction reports success.  Recovery
restores the last checkpoint and replays committed transactions through
:meth:`MaterializedCube.apply_replay`, which runs the ordinary mutation
path -- so the recovered cube's cells are bit-identical to the
committed ones (docs/STORAGE.md).
"""

from __future__ import annotations

import contextlib
import copy
from typing import Any, Iterator, Sequence

from typing import Callable

from repro.aggregates.base import Handle
from repro.aggregates.registry import AggregateRegistry, default_registry
from repro.compute.base import build_task
from repro.core.addressing import CubeView
from repro.core.cube import _normalize_requests
from repro.core.grouping import GroupingSpec, Mask
from repro.core.lattice import CubeLattice
from repro.engine.groupby import normalize_keys
from repro.engine.table import Table
from repro.errors import (
    DeleteRequiresRecomputeError,
    FaultInjectedError,
    MaintenanceError,
    StorageError,
)
from repro.maintenance.propagation import MaintenanceStats
from repro.obs import instrument, trace

__all__ = ["MaterializedCube"]


class MaterializedCube:
    """A cube kept consistent with its base table under mutation."""

    def __init__(self, base: Table, dims: Sequence, aggregates: Sequence, *,
                 kind: str = "cube",
                 registry: AggregateRegistry | None = None,
                 retain_base: bool = True,
                 short_circuit: bool = True,
                 strict: bool = False) -> None:
        """``short_circuit=False`` ablates the Section 6 insert pruning
        (every insert then visits all 2^N cells for every aggregate);
        the ablation bench measures what the rule saves.

        ``strict=True`` lints the maintenance plan first
        (:func:`repro.lint.lint_maintenance_spec`): a delete-holistic
        aggregate with ``retain_base=False`` is rejected up front
        instead of failing on the first unlucky DELETE."""
        registry = registry or default_registry
        self._specs = _normalize_requests(aggregates, registry)
        self._keys = normalize_keys(dims)
        if strict:
            from repro.lint import lint_maintenance_spec, require_clean
            require_clean(lint_maintenance_spec(
                base, [(expr, alias) for expr, alias in self._keys],
                list(self._specs), kind=kind,
                operations=("insert", "delete", "update"),
                retain_base=retain_base, registry=registry))
        self._source_names = base.schema.names
        if kind == "cube":
            spec = GroupingSpec.for_cube(tuple(a for _, a in self._keys))
        elif kind == "rollup":
            spec = GroupingSpec.for_rollup(tuple(a for _, a in self._keys))
        else:
            raise MaintenanceError(f"unknown kind {kind!r}; use cube/rollup")
        self._grouping = spec
        self.retain_base = retain_base
        self.short_circuit = short_circuit
        self.stats = MaintenanceStats()

        task = build_task(base, dims, self._specs, spec.grouping_sets())
        self._task = task  # reused for coordinates / folding helpers
        self._lattice = CubeLattice(task.dims, task.masks)
        # mask -> coordinate -> handles ; and per-cell contributing rows
        self._cells: dict[Mask, dict[tuple, list[Handle]]] = {
            mask: {} for mask in task.masks}
        self._counts: dict[Mask, dict[tuple, int]] = {
            mask: {} for mask in task.masks}
        self._base_rows: list[tuple] = []

        from repro.compute.stats import ComputeStats
        self._fold_stats = ComputeStats(algorithm="maintenance")
        self._txn_depth = 0
        self._mutation_listeners: list[Callable[[str], None]] = []
        self._journal: Any = None
        self._journal_name = ""
        self._journal_txn: int | None = None
        self._replaying = False
        self._poisoned = False
        for row in task.rows:
            self._apply_insert(row, initial=True)
        self._base_rows = list(task.rows) if retain_base else []

    # -- public surface ---------------------------------------------------

    @property
    def dims(self) -> tuple[str, ...]:
        return self._task.dims

    @property
    def masks(self) -> tuple[Mask, ...]:
        return self._task.masks

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._cells.values())

    def add_mutation_listener(self,
                              listener: Callable[[str], None]) -> None:
        """Register ``listener(op)`` to fire after every *successful*
        top-level mutation (``insert`` / ``delete`` / ``update`` /
        ``batch``).  Operations inside a larger transaction notify once
        when the outermost scope commits; rolled-back operations raise
        before notifying.  The serving layer's semantic cache uses this
        to invalidate cuboids derived from the cube's base table
        (:meth:`repro.serve.CuboidCache.watch`)."""
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, op: str) -> None:
        if self._txn_depth == 0:
            for listener in self._mutation_listeners:
                listener(op)

    @contextlib.contextmanager
    def transaction(self, op: str = "batch") -> Iterator["MaterializedCube"]:
        """All-or-nothing scope for any sequence of operations.

        On entry the cube's full state (cells, counts, retained base
        rows, stats) is snapshotted; if the block raises, the snapshot
        is restored -- scratchpad handles mutate in place, so the
        snapshot deep-copies them -- the rollback is counted on
        ``repro_maintenance_rollbacks_total{op=...}``, and the error
        propagates.  Nested transactions join the outermost one (the
        outermost snapshot is the only restore point), which is how the
        per-operation guarantee composes with user batches.
        """
        self._check_not_poisoned()
        if self._txn_depth > 0:
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            return
        snapshot = (copy.deepcopy(self._cells),
                    copy.deepcopy(self._counts),
                    list(self._base_rows),
                    copy.deepcopy(self.stats))
        # WAL discipline: the begin record precedes any mutation, and
        # the commit record is written (and fsynced) before the
        # transaction reports success -- inside the try, so a commit
        # that fails durability rolls the in-memory state back too
        journal_txn: int | None = None
        if self._journal is not None and not self._replaying:
            journal_txn = self._journal.txn_begin(self._journal_name)
            self._journal_txn = journal_txn
        self._txn_depth = 1
        try:
            yield self
            if journal_txn is not None:
                try:
                    self._journal.txn_commit(journal_txn,
                                             self._journal_name)
                except BaseException:
                    # The commit's durability is now *ambiguous*: the
                    # record can reach the OS before the barrier
                    # fails, so a later crash may recover this
                    # transaction as committed even though the caller
                    # sees an error and the in-memory state rolls
                    # back.  Serving the rolled-back state would then
                    # diverge from recovery, so the cube poisons
                    # itself -- no more reads or writes until the
                    # store is reopened and replayed (the same
                    # panic-on-fsync-failure discipline as the WAL).
                    self._poisoned = True
                    raise
        except BaseException as error:
            self._cells, self._counts, self._base_rows, self.stats = snapshot
            if journal_txn is not None:
                # best effort: a poisoned WAL (torn append, failed
                # fsync) refuses the abort record; recovery skips
                # uncommitted transactions either way
                with contextlib.suppress(StorageError,
                                         FaultInjectedError):
                    self._journal.txn_abort(journal_txn,
                                            self._journal_name)
            instrument.record_rollback(op)
            self.stats.rollbacks += 1
            span = trace.current_span()
            if span is not None:
                span.event("rollback", op=op, error=str(error))
            raise
        finally:
            self._txn_depth = 0
            self._journal_txn = None

    def apply_batch(self, operations: Sequence[tuple]) -> int:
        """Apply ``operations`` -- ``("insert", row)``,
        ``("delete", row)``, or ``("update", old_row, new_row)`` tuples
        -- atomically; returns total cells touched.  A failure anywhere
        in the batch rolls every prior operation back."""
        with trace.span("maintenance.batch", operations=len(operations)):
            with self.transaction(op="batch"):
                touched = 0
                for operation in operations:
                    kind = operation[0]
                    if kind == "insert":
                        touched += self.insert(operation[1])
                    elif kind == "delete":
                        touched += self.delete(operation[1])
                    elif kind == "update":
                        touched += self.update(operation[1], operation[2])
                    else:
                        raise MaintenanceError(
                            f"unknown batch operation {kind!r}; "
                            "use insert/delete/update")
            self._notify_mutation("batch")
            return touched

    def insert(self, row: Sequence[Any]) -> int:
        """Propagate one base-table INSERT; returns cells touched."""
        with trace.span("maintenance.insert") as span:
            with self.transaction(op="insert"):
                self._journal_record(("insert", tuple(row)))
                task_row = self._to_task_row(row)
                touched = self._apply_insert(task_row, initial=False)
                if self.retain_base:
                    self._base_rows.append(task_row)
            span.set(cells_touched=touched)
        self.stats.inserts += 1
        self.stats.per_operation_touched.append(touched)
        self.stats.note_operation("insert", touched)
        self._notify_mutation("insert")
        return touched

    def delete(self, row: Sequence[Any]) -> int:
        """Propagate one base-table DELETE; returns cells touched.

        Raises :class:`DeleteRequiresRecomputeError` when a
        delete-holistic aggregate needs a recompute but the base data
        was not retained (``retain_base=False``) -- in which case the
        whole operation rolls back, so super-cells already decremented
        by the lattice walk are restored rather than left inconsistent.
        """
        with trace.span("maintenance.delete") as span:
            with self.transaction(op="delete"):
                self._journal_record(("delete", tuple(row)))
                task_row = self._to_task_row(row)
                if self.retain_base:
                    try:
                        self._base_rows.remove(task_row)
                    except ValueError:
                        raise MaintenanceError(
                            f"delete of a row not present in the base: "
                            f"{row!r}") from None
                touched = 0
                recomputed = 0
                dim_values = self._task.dim_values(task_row)
                agg_values = self._task.agg_values(task_row)
                for mask in self._task.masks:
                    coordinate = self._task.coordinate(mask, dim_values)
                    cells = self._cells[mask]
                    counts = self._counts[mask]
                    if coordinate not in cells:
                        raise MaintenanceError(
                            f"delete hit a missing cube cell {coordinate}")
                    counts[coordinate] -= 1
                    if counts[coordinate] == 0:
                        del cells[coordinate]
                        del counts[coordinate]
                        touched += 1
                        continue
                    handles = cells[coordinate]
                    needs_recompute = False
                    for position, spec in enumerate(self._specs):
                        fn = spec.function
                        value = agg_values[position]
                        if not fn.accepts(value):
                            continue
                        new_handle, supported = fn.unapply(handles[position],
                                                           value)
                        if supported:
                            handles[position] = new_handle
                        else:
                            needs_recompute = True
                            break
                    if needs_recompute:
                        self._recompute_cell(mask, coordinate)
                        self.stats.cells_recomputed += 1
                        recomputed += 1
                    else:
                        self.stats.cells_updated += 1
                    touched += 1
            span.set(cells_touched=touched, recomputed=recomputed)
        self.stats.deletes += 1
        self.stats.per_operation_touched.append(touched)
        self.stats.note_operation("delete", touched)
        self._notify_mutation("delete")
        return touched

    def update(self, old_row: Sequence[Any], new_row: Sequence[Any]) -> int:
        """UPDATE = DELETE + INSERT (Section 6), with routing.

        An update that **changes a dimension value** moves the row
        between cube cells, so it must run as a full DELETE of the old
        row plus INSERT of the new one -- the old coordinate loses a
        contributor (possibly emptying), the new one gains one.  Only
        an update that keeps every dimension value takes the in-place
        fast path: each affected cell's scratchpads unapply the old
        measure and fold the new one without count churn.  Within that
        fast path a delete-holistic aggregate (MIN/MAX whose departing
        value holds the extreme) declines ``unapply`` and the cell is
        recomputed from retained base data, exactly like DELETE.

        Either route journals the same delete+insert leaves, so WAL
        replay converges to the identical state.  Metrics-wise the
        dim-changing route records its constituent insert and delete as
        themselves plus one ``update``, mirroring how the paper costs
        it as the sum of the two; the in-place route records one
        ``update`` only."""
        with trace.span("maintenance.update") as span:
            in_place = False
            with self.transaction(op="update"):
                old_task = self._to_task_row(old_row)
                new_task = self._to_task_row(new_row)
                if self._task.dim_values(old_task) \
                        == self._task.dim_values(new_task):
                    in_place = True
                    touched = self._update_in_place(
                        old_row, new_row, old_task, new_task)
                else:
                    touched = self.delete(old_row)
                    touched += self.insert(new_row)
            span.set(cells_touched=touched, in_place=in_place)
        self.stats.updates += 1
        if in_place:
            self.stats.per_operation_touched.append(touched)
        self.stats.note_operation("update", touched)
        self._notify_mutation("update")
        return touched

    def _update_in_place(self, old_row: Sequence[Any],
                         new_row: Sequence[Any],
                         old_task: tuple, new_task: tuple) -> int:
        """Same-coordinate update: swap the measures inside each
        affected cell.  Journals the delete+insert leaves (replay knows
        only those), keeps per-cell counts unchanged, and falls back to
        :meth:`_recompute_cell` wherever ``unapply`` declines."""
        self._journal_record(("delete", tuple(old_row)))
        self._journal_record(("insert", tuple(new_row)))
        if self.retain_base:
            try:
                self._base_rows.remove(old_task)
            except ValueError:
                raise MaintenanceError(
                    f"update of a row not present in the base: "
                    f"{old_row!r}") from None
            self._base_rows.append(new_task)
        dim_values = self._task.dim_values(old_task)
        old_aggs = self._task.agg_values(old_task)
        new_aggs = self._task.agg_values(new_task)
        touched = 0
        for mask in self._task.masks:
            coordinate = self._task.coordinate(mask, dim_values)
            handles = self._cells[mask].get(coordinate)
            if handles is None:
                raise MaintenanceError(
                    f"update hit a missing cube cell {coordinate}")
            staged = list(handles)
            needs_recompute = False
            for position, spec in enumerate(self._specs):
                fn = spec.function
                old_value = old_aggs[position]
                if fn.accepts(old_value):
                    new_handle, supported = fn.unapply(staged[position],
                                                       old_value)
                    if not supported:
                        needs_recompute = True
                        break
                    staged[position] = new_handle
                new_value = new_aggs[position]
                if fn.accepts(new_value):
                    staged[position] = fn.next(staged[position], new_value)
            if needs_recompute:
                # base rows already hold the new row, so the rebuild
                # lands on the post-update state in one pass
                self._recompute_cell(mask, coordinate)
                self.stats.cells_recomputed += 1
            else:
                handles[:] = staged
                self.stats.cells_updated += 1
            touched += 1
        return touched

    @property
    def poisoned(self) -> bool:
        """True once a journaled commit failed its durability barrier
        (see :meth:`transaction`): the in-memory state may disagree
        with what recovery will decide, so the cube refuses further
        reads and writes until the store is reopened."""
        return self._poisoned

    def _check_not_poisoned(self) -> None:
        if self._poisoned:
            raise StorageError(
                f"cube {self._journal_name or '<unbound>'!r} had a "
                "commit fail its durability barrier; whether that "
                "transaction survived is unknowable here -- reopen "
                "the store and re-attach to recover the "
                "authoritative state")

    def as_table(self, *, sort_result: bool = True) -> Table:
        """The cube relation, finalized from the live scratchpads."""
        self._check_not_poisoned()
        cells = []
        for mask in self._task.masks:
            for coordinate, handles in self._cells[mask].items():
                values = tuple(spec.function.end(handle)
                               for spec, handle in zip(self._specs, handles))
                cells.append((coordinate, values))
        if 0 in self._task.masks and not self._cells[0]:
            # the global aggregate exists even over an empty base table
            # (SELECT SUM(x) FROM empty returns one row)
            values = tuple(spec.function.end(spec.function.start())
                           for spec in self._specs)
            cells.append((self._task.coordinate(0, ()), values))
        table = self._task.result_table(cells)
        if sort_result:
            from repro.engine.operators import sort as sort_op
            table = sort_op(table, list(self._task.dims))
        return table

    def view(self) -> CubeView:
        return CubeView(self.as_table(sort_result=False), list(self.dims))

    def value(self, *coords: Any, measure: str | None = None) -> Any:
        """One cell's current value without materializing the table."""
        self._check_not_poisoned()
        mask = 0
        for i, coordinate in enumerate(coords):
            from repro.types import ALL
            if coordinate is not ALL:
                mask |= 1 << i
        if mask not in self._cells:
            raise MaintenanceError(
                f"grouping set of {coords} is not materialized")
        handles = self._cells[mask].get(tuple(coords))
        instrument.record_materialized_lookup(hit=handles is not None)
        if handles is None:
            return None
        position = 0
        if measure is not None:
            names = [spec.name for spec in self._specs]
            try:
                position = names.index(measure)
            except ValueError:
                raise MaintenanceError(
                    f"unknown measure {measure!r}; have {names}") from None
        spec = self._specs[position]
        return spec.function.end(handles[position])

    # -- durability (repro.storage integration) -----------------------------

    def bind_journal(self, store: Any, name: str) -> None:
        """Journal every future outermost transaction through
        ``store`` (a :class:`~repro.storage.CubeStore`) under
        ``name``.  Normally called by :meth:`CubeStore.attach
        <repro.storage.CubeStore.attach>` after recovery, never
        directly."""
        self._journal = store
        self._journal_name = name

    def _journal_record(self, op: tuple) -> None:
        """Log one base-row mutation to the enclosing journaled
        transaction (no-op when unbound or replaying).  ``update`` and
        batches decompose into these insert/delete leaves, so replay
        needs only the two."""
        if self._journal is not None and self._journal_txn is not None:
            self._journal.txn_op(self._journal_txn, self._journal_name,
                                 op)

    def storage_signature(self) -> tuple:
        """An order-stable fingerprint of this cube's definition.
        A checkpoint is only restorable into a cube with the same
        signature: same dimensions, grouping sets, aggregate names and
        function types, and base-row retention."""
        return (
            self._task.dims,
            tuple(self._task.masks),
            tuple((spec.name, type(spec.function).__name__)
                  for spec in self._specs),
            self.retain_base,
        )

    def capture_state(self) -> dict:
        """The cube's full mutable state, for checkpointing.  The
        caller serializes it immediately; scratchpad handles must be
        picklable (true of every built-in aggregate).  A poisoned cube
        refuses: checkpointing the rolled-back state (and rotating the
        WAL under it) would silently discard a commit record that may
        already be durable."""
        self._check_not_poisoned()
        return {
            "cells": self._cells,
            "counts": self._counts,
            "base_rows": self._base_rows,
            "stats": self.stats,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed :meth:`capture_state` snapshot,
        replacing the freshly computed state."""
        self._cells = state["cells"]
        self._counts = state["counts"]
        self._base_rows = state["base_rows"]
        self.stats = state["stats"]

    def apply_replay(self, operations: Sequence[tuple]) -> int:
        """Re-apply one committed transaction's journaled operations
        during recovery; returns cells touched.  Runs the ordinary
        insert/delete path -- so cells, counts, and retained base rows
        converge to the committed state bit-for-bit -- with journaling
        suppressed.  (Operation *statistics* reflect the replay's
        decomposed view: an UPDATE replays as its delete+insert
        leaves.)"""
        self._replaying = True
        try:
            touched = 0
            with self.transaction(op="replay"):
                for operation in operations:
                    kind = operation[0]
                    if kind == "insert":
                        touched += self.insert(list(operation[1]))
                    elif kind == "delete":
                        touched += self.delete(list(operation[1]))
                    else:
                        raise MaintenanceError(
                            f"unknown journaled operation {kind!r}; "
                            "the write-ahead log only carries "
                            "insert/delete leaves")
            return touched
        finally:
            self._replaying = False

    # -- internals ----------------------------------------------------------

    def _to_task_row(self, row: Sequence[Any]) -> tuple:
        if len(row) != len(self._source_names):
            raise MaintenanceError(
                f"row has {len(row)} values; base table has "
                f"{len(self._source_names)} columns")
        context = dict(zip(self._source_names, row))
        dim_values = tuple(expr.evaluate(context) for expr, _ in self._keys)
        agg_values = tuple(spec.evaluate_input(context)
                           for spec in self._specs)
        return dim_values + agg_values

    def _apply_insert(self, task_row: tuple, *, initial: bool) -> int:
        """Walk the lattice fine-to-coarse folding the new record in,
        pruning per-aggregate below cells where the value is dominated."""
        dim_values = self._task.dim_values(task_row)
        agg_values = self._task.agg_values(task_row)
        n_aggs = len(self._specs)
        # per-aggregate set of masks pruned by the short-circuit
        pruned: list[set[Mask]] = [set() for _ in range(n_aggs)]
        touched = 0
        for level_masks in self._lattice.by_level_descending():
            for mask in level_masks:
                coordinate = self._task.coordinate(mask, dim_values)
                cells = self._cells[mask]
                counts = self._counts[mask]
                handles = cells.get(coordinate)
                if handles is None:
                    handles = [spec.function.start() for spec in self._specs]
                    cells[coordinate] = handles
                    counts[coordinate] = 0
                counts[coordinate] += 1
                cell_active = False
                for position, spec in enumerate(self._specs):
                    if mask in pruned[position]:
                        self.stats.cells_short_circuited += not initial
                        continue
                    fn = spec.function
                    value = agg_values[position]
                    if not fn.accepts(value):
                        continue
                    if not initial and self.short_circuit \
                            and fn.insert_dominated(handles[position],
                                                    value):
                        # prune every coarser cell for this aggregate
                        for descendant in self._lattice.descendants(mask):
                            pruned[position].add(descendant)
                        continue
                    handles[position] = fn.next(handles[position], value)
                    cell_active = True
                if cell_active or initial:
                    touched += 1
                    if not initial:
                        self.stats.cells_updated += 1
        return touched

    def _recompute_cell(self, mask: Mask, coordinate: tuple) -> None:
        """Rebuild one cell's scratchpads from retained base rows --
        the delete-holistic path of Section 6."""
        if not self.retain_base:
            raise DeleteRequiresRecomputeError(
                f"cell {coordinate} needs recomputation (delete-holistic "
                "aggregate) but retain_base=False")
        handles = [spec.function.start() for spec in self._specs]
        scanned = 0
        for task_row in self._base_rows:
            scanned += 1
            if self._task.coordinate(mask, self._task.dim_values(task_row)) \
                    != coordinate:
                continue
            agg_values = self._task.agg_values(task_row)
            for position, spec in enumerate(self._specs):
                fn = spec.function
                value = agg_values[position]
                if fn.accepts(value):
                    handles[position] = fn.next(handles[position], value)
        self._cells[mask][coordinate] = handles
        self.stats.rows_rescanned += scanned
