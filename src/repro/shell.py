"""An interactive SQL shell for the data-cube engine.

Run with ``python -m repro.shell``.  Statements end with ``;``;
meta-commands start with a backslash:

    \\help                this text
    \\tables              list catalog tables
    \\schema <table>      show a table's columns
    \\load <dataset>      load a built-in dataset
                          (sales, chevy, figure4, weather)
    \\nullmode            toggle ALL vs NULL+GROUPING output (Sec. 3.4)
    \\lint                toggle strict lint mode (repro.lint checks
                          run before execution; errors block the query)
    \\timing              toggle wall-clock timing of each statement
    \\metrics             toggle per-statement metric deltas (the
                          repro.obs registry; see docs/OBSERVABILITY.md)
    \\timeout <s|off>     set a statement deadline in seconds; a query
                          past it raises QueryTimeoutError at the next
                          checkpoint (see docs/RESILIENCE.md)
    \\log [n]             the last n query-log records (local or, when
                          connected, the server's -- docs/OBSERVABILITY.md)
    \\top [n]             the n busiest workload signatures with hit
                          rate and latency quantiles
    \\connect host:port   route statements to a running query server
                          (python -m repro.serve; see docs/SERVING.md)
    \\checkpoint          force a durable checkpoint on the connected
                          server's --data-dir (see docs/STORAGE.md)
    \\ingest <tbl> <rows>  stream rows (comma-separated values, NULL ok)
                          through the connected server's delta-merge
                          ingest op (see docs/SERVING.md)
    \\disconnect          back to the local in-process session
    \\quit                exit

Ctrl-C while a statement runs cancels that query (via the cooperative
cancellation token) and returns to the prompt -- it never kills the
shell.

The shell is a thin, testable wrapper over
:class:`repro.sql.SQLSession`: every statement the paper prints runs
here, including ``GROUP BY CUBE ...``, ``EXPLAIN``, and DML that drives
trigger-maintained cubes.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.data import (
    chevy_sales_table,
    figure4_sales_table,
    sales_summary_table,
    weather_table,
)
from repro.engine.catalog import Catalog
from repro.errors import QueryCancelledError, ReproError
from repro.obs.metrics import REGISTRY, format_delta
from repro.resilience import ExecutionContext
from repro.sql.executor import SQLSession
from repro.types import NullMode

__all__ = ["Shell", "main"]

_DATASETS: dict[str, Callable] = {
    "sales": sales_summary_table,
    "chevy": chevy_sales_table,
    "figure4": figure4_sales_table,
    "weather": lambda: weather_table(500),
}

_HELP = __doc__.split("Run with")[1]


def _ingest_value(text: str):
    """One ``\\ingest`` cell: int, then float, else string; NULL -> None."""
    if text.upper() == "NULL":
        return None
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


class Shell:
    """The REPL's state machine, separated from I/O for testability.

    Feed lines to :meth:`handle_line`; each call returns the text to
    print (possibly empty while a multi-line statement accumulates).
    :attr:`done` flips when the user quits.
    """

    def __init__(self, session: SQLSession | None = None) -> None:
        self.session = session if session is not None else SQLSession(
            Catalog())
        self.buffer: list[str] = []
        self.done = False
        self.timing = False
        self.metrics = False
        #: the running statement's context; another thread (or the
        #: KeyboardInterrupt handler) can cancel it mid-flight
        self.active_context: ExecutionContext | None = None
        #: when set, statements go over the wire instead of the local
        #: session (see repro.serve)
        self.remote = None

    @property
    def prompt(self) -> str:
        if self.buffer:
            return "   ...> "
        return "remote=> " if self.remote is not None else "cube=> "

    def handle_line(self, line: str) -> str:
        stripped = line.strip()
        if not self.buffer and stripped.startswith("\\"):
            return self._meta(stripped)
        if not stripped and not self.buffer:
            return ""
        self.buffer.append(line)
        if not stripped.endswith(";"):
            return ""
        sql = "\n".join(self.buffer)
        self.buffer = []
        return self._run(sql)

    def _run(self, sql: str) -> str:
        if self.remote is not None:
            return self._run_remote(sql)
        before = REGISTRY.snapshot() if self.metrics else None
        started = time.perf_counter()
        context = self.session._make_context()
        if context is None:
            # always run under a context so Ctrl-C has a token to fire
            context = ExecutionContext()
        self.active_context = context
        try:
            result = self.session.execute(sql, context=context)
        except KeyboardInterrupt:
            # the signal already unwound the statement; cancel the token
            # too so any still-running worker threads stop at their next
            # checkpoint instead of computing into the void
            context.cancel("ctrl-c")
            return "query cancelled (^C)"
        except QueryCancelledError as error:
            return f"cancelled: {error}"
        except ReproError as error:
            return f"error: {error}"
        finally:
            self.active_context = None
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if len(result.schema) == 1 \
                and result.schema.names == ("rows_affected",):
            output = f"{result.rows[0][0]} row(s) affected"
        else:
            output = result.to_ascii(max_rows=40)
        if self.metrics:
            lines = format_delta(before, REGISTRY.snapshot())
            if lines:
                output += "\n" + "\n".join(lines)
        if self.timing:
            output += f"\nTime: {elapsed_ms:.2f} ms"
        return output

    def _run_remote(self, sql: str) -> str:
        started = time.perf_counter()
        try:
            result = self.remote.execute(sql)
        except ReproError as error:
            return f"error: {error}"
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if len(result.schema) == 1 \
                and result.schema.names == ("rows_affected",):
            output = f"{result.rows[0][0]} row(s) affected"
        else:
            output = result.to_ascii(max_rows=40)
        if self.timing:
            server_ms = self.remote.last_elapsed_ms
            output += f"\nTime: {elapsed_ms:.2f} ms"
            if server_ms is not None:
                output += f" (server: {server_ms:.2f} ms)"
        return output

    def _meta(self, command: str) -> str:
        parts = command.split()
        name = parts[0]
        if name in ("\\quit", "\\q"):
            self.done = True
            return "bye"
        if name in ("\\help", "\\h"):
            return "Run with" + _HELP
        if name == "\\tables":
            if self.remote is not None:
                try:
                    names = self.remote.stats().get("tables", [])
                except ReproError as error:
                    return f"error: {error}"
            else:
                names = self.session.catalog.names()
            return "\n".join(names) if names else "(no tables)"
        if name == "\\schema":
            if len(parts) != 2:
                return "usage: \\schema <table>"
            try:
                table = self.session.catalog.get(parts[1])
            except ReproError as error:
                return f"error: {error}"
            return "\n".join(
                f"{c.name:<20} {c.dtype.value}"
                f"{'' if c.nullable else ' NOT NULL'}"
                for c in table.schema.columns)
        if name == "\\load":
            if len(parts) != 2 or parts[1] not in _DATASETS:
                return ("usage: \\load <dataset>; datasets: "
                        + ", ".join(sorted(_DATASETS)))
            dataset = parts[1]
            table = _DATASETS[dataset]()
            table_name = table.name or dataset
            self.session.register(table_name, table, replace=True)
            return f"loaded {table_name} ({len(table)} rows)"
        if name == "\\nullmode":
            if self.session.null_mode is NullMode.ALL_VALUE:
                self.session.null_mode = NullMode.NULL_WITH_GROUPING
                return "output mode: NULL + GROUPING() (Section 3.4)"
            self.session.null_mode = NullMode.ALL_VALUE
            return "output mode: ALL value (Section 3.3)"
        if name == "\\lint":
            self.session.strict = not self.session.strict
            if self.session.strict:
                return ("strict lint mode ON: queries are checked "
                        "before execution (see docs/LINTING.md)")
            return "strict lint mode OFF"
        if name == "\\timing":
            self.timing = not self.timing
            return f"timing {'ON' if self.timing else 'OFF'}"
        if name == "\\metrics":
            self.metrics = not self.metrics
            if self.metrics:
                return ("metrics ON: each statement prints the "
                        "repro.obs registry delta "
                        "(see docs/OBSERVABILITY.md)")
            return "metrics OFF"
        if name == "\\timeout":
            if len(parts) == 1:
                current = self.session.statement_timeout
                return (f"statement_timeout: {current}s"
                        if current is not None else "statement_timeout: off")
            if parts[1].lower() == "off":
                self.session.statement_timeout = None
                return "statement_timeout OFF"
            try:
                seconds = float(parts[1])
            except ValueError:
                seconds = -1.0
            if seconds < 0:
                return "usage: \\timeout <seconds|off>"
            self.session.statement_timeout = seconds
            return (f"statement_timeout {seconds}s: a statement past the "
                    "deadline raises QueryTimeoutError (docs/RESILIENCE.md)")
        if name in ("\\log", "\\top"):
            return self._querylog_meta(name, parts)
        if name == "\\connect":
            if len(parts) != 2 or ":" not in parts[1]:
                return "usage: \\connect host:port"
            host, _, port_text = parts[1].rpartition(":")
            try:
                port = int(port_text)
            except ValueError:
                return "usage: \\connect host:port"
            from repro.serve.client import QueryClient
            if self.remote is not None:
                self.remote.close()
                self.remote = None
            try:
                client = QueryClient(host, port)
                client.ping()
            except ReproError as error:
                return f"error: {error}"
            self.remote = client
            return (f"connected to {host}:{port}; statements now run "
                    "remotely (\\disconnect to go back local)")
        if name == "\\checkpoint":
            if self.remote is None:
                return ("no durable store in the local session; "
                        "\\connect to a server started with --data-dir "
                        "(docs/STORAGE.md)")
            try:
                stats = self.remote.checkpoint()
            except ReproError as error:
                return f"error: {error}"
            return (f"checkpointed: epoch {stats.get('epoch')}, "
                    f"{stats.get('pages')} page(s), "
                    f"wal at byte {stats.get('wal_position')}")
        if name == "\\ingest":
            if self.remote is None:
                return ("\\ingest streams rows at a query server; "
                        "\\connect first (docs/SERVING.md)")
            if len(parts) < 3:
                return "usage: \\ingest <table> <v1,v2,...> [row ...]"
            rows = [tuple(_ingest_value(cell) for cell in chunk.split(","))
                    for chunk in parts[2:]]
            try:
                outcome = self.remote.ingest(parts[1], inserts=rows,
                                             flush=True)
            except ReproError as error:
                return f"error: {error}"
            flushed = outcome.get("flushed") or {}
            return (f"ingested {len(rows)} row(s) into "
                    f"{outcome.get('table')}: "
                    f"{flushed.get('merged', 0)} cuboid(s) delta-merged, "
                    f"{flushed.get('invalidated', 0)} invalidated")
        if name == "\\disconnect":
            if self.remote is None:
                return "not connected"
            self.remote.close()
            self.remote = None
            return "disconnected; statements run in the local session"
        return f"unknown command {name}; try \\help"

    def _querylog_meta(self, name: str, parts: list[str]) -> str:
        """``\\log [n]`` (recent records) / ``\\top [n]`` (workload)."""
        from repro.obs import querylog as ql
        n = 10
        if len(parts) > 2:
            return f"usage: {name} [n]"
        if len(parts) == 2:
            try:
                n = int(parts[1])
            except ValueError:
                n = -1
            if n < 1:
                return f"usage: {name} [n]"
        if self.remote is not None:
            try:
                payload = self.remote.log(n=n)
            except ReproError as error:
                return f"error: {error}"
            records = [ql.QueryRecord.from_dict(entry)
                       for entry in payload["records"]]
            workload = payload["workload"]
        else:
            records = ql.QUERY_LOG.snapshot(n)
            workload = ql.QUERY_LOG.history.snapshot()
        if name == "\\log":
            lines = ql.format_records(records[-n:])
            return "\n".join(lines) if lines else "(query log is empty)"
        lines = ql.format_workload(workload[:n])
        return "\n".join(lines) if lines else "(no workload history)"


def main(argv: list[str] | None = None) -> int:
    """Entry point: loop over stdin."""
    shell = Shell()
    print("repro data-cube shell -- \\help for help, \\quit to exit")
    print("tip: \\load sales  then  "
          "SELECT Model, Year, Color, SUM(Units) FROM Sales "
          "GROUP BY CUBE Model, Year, Color;")
    while not shell.done:
        try:
            line = input(shell.prompt)
        except EOFError:
            print()
            break
        except KeyboardInterrupt:
            print()
            shell.buffer = []
            continue
        output = shell.handle_line(line)
        if output:
            print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
