"""The paper's sales datasets.

Two distinct example tables appear in the paper:

- **The Tables 3-6 dataset**: Chevy and Ford, years 1994-1995, colors
  black and white, with the exact unit counts readable from Table 4's
  pivot (Chevy 1994: black 50 / white 40; Chevy 1995: black 85 /
  white 115; Ford 1994: black 50 / white 10; Ford 1995: black 85 /
  white 75; grand total 510).
- **The Figure 4 dataset**: 2 models x 3 years x 3 colors = 18 rows
  whose cube has 3 x 4 x 4 = 48 rows and whose global SUM is 941
  (the ``(ALL, ALL, ALL, 941)`` tuple quoted in Section 3.4).  The
  paper's figure is a bitmap whose individual cell values are not
  recoverable from the text, so the 18 unit values here are a
  documented reconstruction chosen to sum to 941; every *structural*
  property the paper states (row count, cube cardinality, global
  total) is exact.
"""

from __future__ import annotations

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.types import DataType

__all__ = [
    "sales_schema",
    "sales_summary_table",
    "chevy_sales_table",
    "figure4_sales_table",
    "FIGURE4_TOTAL",
    "SALES_SUMMARY_ROWS",
    "FIGURE4_ROWS",
]


def sales_schema() -> Schema:
    return Schema([
        Column("Model", DataType.STRING, nullable=False),
        Column("Year", DataType.INTEGER, nullable=False),
        Column("Color", DataType.STRING, nullable=False),
        Column("Units", DataType.INTEGER, nullable=False),
    ])


#: The Tables 3-6 base data (units per Model/Year/Color), exactly the
#: numbers recoverable from Table 4's pivot table.
SALES_SUMMARY_ROWS: tuple[tuple, ...] = (
    ("Chevy", 1994, "black", 50),
    ("Chevy", 1994, "white", 40),
    ("Chevy", 1995, "black", 85),
    ("Chevy", 1995, "white", 115),
    ("Ford", 1994, "black", 50),
    ("Ford", 1994, "white", 10),
    ("Ford", 1995, "black", 85),
    ("Ford", 1995, "white", 75),
)


def sales_summary_table() -> Table:
    """The full (Chevy + Ford) Tables 3-6 sales data; grand total 510."""
    return Table(sales_schema(), SALES_SUMMARY_ROWS, name="Sales")


def chevy_sales_table() -> Table:
    """The Chevy-only slice used by Tables 3.a, 5.a and 6.a."""
    rows = [row for row in SALES_SUMMARY_ROWS if row[0] == "Chevy"]
    return Table(sales_schema(), rows, name="Sales")


#: Figure 4's 18-row SALES table: 2 models x 3 years x 3 colors.
#: Unit values are a reconstruction (see module docstring); their sum is
#: exactly 941, the paper's global total.
FIGURE4_ROWS: tuple[tuple, ...] = (
    ("Chevy", 1990, "red", 5),
    ("Chevy", 1990, "white", 87),
    ("Chevy", 1990, "blue", 62),
    ("Chevy", 1991, "red", 54),
    ("Chevy", 1991, "white", 95),
    ("Chevy", 1991, "blue", 49),
    ("Chevy", 1992, "red", 31),
    ("Chevy", 1992, "white", 54),
    ("Chevy", 1992, "blue", 71),
    ("Ford", 1990, "red", 64),
    ("Ford", 1990, "white", 62),
    ("Ford", 1990, "blue", 63),
    ("Ford", 1991, "red", 52),
    ("Ford", 1991, "white", 9),
    ("Ford", 1991, "blue", 55),
    ("Ford", 1992, "red", 27),
    ("Ford", 1992, "white", 62),
    ("Ford", 1992, "blue", 39),
)

#: The paper's global SUM for Figure 4: the (ALL, ALL, ALL, 941) tuple.
FIGURE4_TOTAL = 941

assert sum(row[3] for row in FIGURE4_ROWS) == FIGURE4_TOTAL


def figure4_sales_table() -> Table:
    """Figure 4's SALES: 18 rows, cube cardinality 3 x 4 x 4 = 48."""
    return Table(sales_schema(), FIGURE4_ROWS, name="Sales")
