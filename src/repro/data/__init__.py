"""Datasets and workloads: the paper's own examples (Figure 4 SALES,
the Tables 3-6 sales summary, the Table 1 Weather relation) plus a
scalable synthetic generator and the Table 2 benchmark query workloads.
"""

from repro.data.sales import (
    sales_summary_table,
    chevy_sales_table,
    figure4_sales_table,
    FIGURE4_TOTAL,
)
from repro.data.weather import (
    weather_table,
    nation_of,
    continent_of,
    NATIONS,
)
from repro.data.synthetic import synthetic_table, SyntheticSpec
from repro.data.workloads import WORKLOADS, Workload
from repro.data.warehouse_demo import (
    Figure6Warehouse,
    build_figure6_warehouse,
)

__all__ = [
    "FIGURE4_TOTAL",
    "Figure6Warehouse",
    "NATIONS",
    "SyntheticSpec",
    "WORKLOADS",
    "Workload",
    "build_figure6_warehouse",
    "chevy_sales_table",
    "continent_of",
    "figure4_sales_table",
    "nation_of",
    "sales_summary_table",
    "synthetic_table",
    "weather_table",
]
