"""The Figure 6 snowflake warehouse, as a ready-made dataset.

Figure 6's fact table records sales items "giving the id of the buyer,
seller, the product purchased, the units purchased, the price, the
date and the sales office that is credited with the sale", with
dimension tables per id and the office dimension snowflaking through
district -> region -> geography ("the San Francisco sales office is in
the Northern California District, the Western Region, and the US
Geography").

:func:`build_figure6_warehouse` generates the whole schema
deterministically and returns a wired :class:`SnowflakeSchema`, so
examples, tests, and benches can run star/snowflake queries on a
realistic shape without assembling it by hand.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.types import DataType
from repro.warehouse.dimension import DimensionTable
from repro.warehouse.snowflake import Outrigger, SnowflakeSchema

__all__ = ["Figure6Warehouse", "build_figure6_warehouse"]

_OFFICES = (
    # (office_id, office, district_id)
    (1, "San Francisco", 10), (2, "San Jose", 10), (3, "Oakland", 10),
    (4, "Seattle", 20), (5, "Portland", 20),
    (6, "Boston", 30), (7, "New York", 30),
    (8, "Paris", 40), (9, "Lyon", 40),
)

_DISTRICTS = (
    # (district_id, district, region_id)
    (10, "Northern California", 100), (20, "Pacific Northwest", 100),
    (30, "North East", 101), (40, "France", 102),
)

_REGIONS = (
    # (region_id, region, geography)
    (100, "Western", "US"), (101, "Eastern", "US"),
    (102, "Europe West", "Europe"),
)

_PRODUCTS = (
    # (product_id, product, category, list_price)
    (500, "widget", "hardware", 19.99),
    (501, "gizmo", "hardware", 5.49),
    (502, "gadget", "hardware", 34.99),
    (503, "deluxe kit", "kits", 129.00),
    (504, "starter kit", "kits", 49.00),
    (505, "manual", "media", 9.99),
)

_PEOPLE = tuple(
    (600 + i, name, segment)
    for i, (name, segment) in enumerate([
        ("Acme Corp", "business"), ("Bolt Ltd", "business"),
        ("Cog Inc", "business"), ("Dana Smith", "consumer"),
        ("Eli Jones", "consumer"), ("Flo Brown", "consumer"),
        ("Gus White", "consumer"), ("Hart LLC", "business"),
    ]))


@dataclass
class Figure6Warehouse:
    """The wired-up Figure 6 schema."""

    fact: Table
    office: DimensionTable
    district: DimensionTable
    region: DimensionTable
    product: DimensionTable
    buyer: DimensionTable
    seller: DimensionTable
    snowflake: SnowflakeSchema


def build_figure6_warehouse(n_sales: int = 2000, *,
                            seed: int = 1996) -> Figure6Warehouse:
    """Generate the warehouse with ``n_sales`` fact rows."""
    rng = random.Random(seed)

    fact = Table(Schema([
        Column("buyer_id", DataType.INTEGER, nullable=False),
        Column("seller_id", DataType.INTEGER, nullable=False),
        Column("product_id", DataType.INTEGER, nullable=False),
        Column("office_id", DataType.INTEGER, nullable=False),
        Column("sale_date", DataType.DATE, nullable=False),
        Column("units", DataType.INTEGER, nullable=False),
        Column("price", DataType.FLOAT, nullable=False),
    ]), name="SalesItem")

    start = datetime.date(1995, 1, 1)
    price_by_product = {pid: price for pid, _, _, price in _PRODUCTS}
    for _ in range(n_sales):
        product_id = rng.choice(_PRODUCTS)[0]
        list_price = price_by_product[product_id]
        discount = rng.choice((1.0, 1.0, 0.9, 0.8))
        fact.append((
            rng.choice(_PEOPLE)[0],
            rng.choice(_PEOPLE)[0],
            product_id,
            rng.choice(_OFFICES)[0],
            start + datetime.timedelta(days=rng.randrange(365)),
            rng.randint(1, 10),
            round(list_price * discount, 2),
        ))

    office = DimensionTable(Table(
        [("office_id", "INTEGER"), ("office", "STRING"),
         ("district_id", "INTEGER")], _OFFICES, name="Office"),
        "office_id", name="office")
    district = DimensionTable(Table(
        [("district_id", "INTEGER"), ("district", "STRING"),
         ("region_id", "INTEGER")], _DISTRICTS, name="District"),
        "district_id", name="district")
    region = DimensionTable(Table(
        [("region_id", "INTEGER"), ("region", "STRING"),
         ("geography", "STRING")], _REGIONS, name="Region"),
        "region_id", name="region")
    product = DimensionTable(Table(
        [("product_id", "INTEGER"), ("product", "STRING"),
         ("category", "STRING"), ("list_price", "FLOAT")],
        _PRODUCTS, name="Product"), "product_id", name="product")
    buyer = DimensionTable(Table(
        [("buyer_id", "INTEGER"), ("buyer", "STRING"),
         ("buyer_segment", "STRING")], _PEOPLE, name="Buyer"),
        "buyer_id", name="buyer")
    seller = DimensionTable(Table(
        [("seller_id", "INTEGER"), ("seller", "STRING"),
         ("seller_segment", "STRING")], _PEOPLE, name="Seller"),
        "seller_id", name="seller")

    snowflake = SnowflakeSchema(
        fact,
        [(office, "office_id"), (product, "product_id"),
         (buyer, "buyer_id"), (seller, "seller_id")],
        [Outrigger("office", "district_id", district),
         Outrigger("district", "region_id", region)])

    return Figure6Warehouse(fact=fact, office=office, district=district,
                            region=region, product=product, buyer=buyer,
                            seller=seller, snowflake=snowflake)
