"""The Table 1 Weather relation, synthesized.

The paper's running example is 4-dimensional earth temperature data:
Time, Latitude, Longitude, Altitude, with measured Temp and Pressure.
The real dataset is not published, so :func:`weather_table` generates a
deterministic synthetic equivalent that exercises the same code paths:
computed grouping columns (``Day(Time)``, ``Nation(Latitude,
Longitude)``), histograms, and the Table 7 decoration example
(continent functionally dependent on nation).

The world is a toy: six nations on three continents, laid out on a
lat/lon grid so :func:`nation_of` is a pure function of position --
exactly what the paper's ``Nation()`` function needs to be.
"""

from __future__ import annotations

import datetime
import random

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.types import DataType

__all__ = [
    "NATIONS",
    "CONTINENTS",
    "nation_of",
    "continent_of",
    "weather_schema",
    "weather_table",
]

#: nation -> (lat_min, lat_max, lon_min, lon_max, continent, mean_temp)
NATIONS: dict[str, tuple[float, float, float, float, str, float]] = {
    "USA": (25.0, 49.0, -125.0, -66.0, "North America", 15.0),
    "Canada": (49.0, 72.0, -141.0, -52.0, "North America", 2.0),
    "Mexico": (14.0, 25.0, -118.0, -86.0, "North America", 22.0),
    "France": (42.0, 51.0, -5.0, 8.0, "Europe", 12.0),
    "Germany": (47.0, 55.0, 6.0, 15.0, "Europe", 9.0),
    "Japan": (31.0, 45.0, 129.0, 146.0, "Asia", 14.0),
}

#: nation -> continent (the Table 7 functional dependency)
CONTINENTS: dict[str, str] = {
    nation: values[4] for nation, values in NATIONS.items()}


def nation_of(latitude: float, longitude: float) -> str | None:
    """The paper's ``Nation(Latitude, Longitude)`` function: the nation
    containing a location, or NULL for open ocean."""
    for nation, (lat_min, lat_max, lon_min, lon_max, _, _) in NATIONS.items():
        if lat_min <= latitude < lat_max and lon_min <= longitude < lon_max:
            return nation
    return None


def continent_of(nation: str | None) -> str | None:
    """The continent containing a nation (NULL-propagating)."""
    if nation is None:
        return None
    return CONTINENTS.get(nation)


def weather_schema() -> Schema:
    return Schema([
        Column("Time", DataType.TIMESTAMP, nullable=False),
        Column("Latitude", DataType.FLOAT, nullable=False),
        Column("Longitude", DataType.FLOAT, nullable=False),
        Column("Altitude", DataType.INTEGER, nullable=False),
        Column("Temp", DataType.FLOAT, nullable=False),
        Column("Pressure", DataType.INTEGER, nullable=False),
    ])


def weather_table(n_rows: int = 500, *, seed: int = 1996,
                  start: datetime.datetime | None = None,
                  n_days: int = 14) -> Table:
    """A deterministic synthetic Weather relation (Table 1's shape).

    Rows are hourly-ish observations at stations inside the toy
    nations; temperature varies by nation climate, altitude lapse
    rate, and season-free diurnal noise, so per-nation/per-day
    MIN/MAX/AVG aggregates have realistic structure.
    """
    rng = random.Random(seed)
    if start is None:
        start = datetime.datetime(1996, 6, 1, 0, 0)
    nations = list(NATIONS)
    table = Table(weather_schema(), name="Weather")
    for _ in range(n_rows):
        nation = rng.choice(nations)
        lat_min, lat_max, lon_min, lon_max, _, mean_temp = NATIONS[nation]
        latitude = round(rng.uniform(lat_min, lat_max - 1e-6), 4)
        longitude = round(rng.uniform(lon_min, lon_max - 1e-6), 4)
        altitude = rng.choice((0, 10, 100, 500, 1000, 2000))
        day = rng.randrange(n_days)
        hour = rng.randrange(24)
        time = start + datetime.timedelta(days=day, hours=hour)
        diurnal = -4.0 * abs(hour - 14) / 14.0 + 2.0
        lapse = -6.5 * altitude / 1000.0
        temp = round(mean_temp + diurnal + lapse + rng.gauss(0.0, 2.5), 1)
        pressure = int(round(1013 - altitude / 8.0 + rng.gauss(0.0, 4.0)))
        table.append((time, latitude, longitude, altitude, temp, pressure))
    return table
