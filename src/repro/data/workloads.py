"""Benchmark query workloads for reproducing Table 2.

Table 2 of the paper ("SQL Aggregates in Standard Benchmarks") counts,
for each standard benchmark's query set, the number of queries, of
aggregate-function invocations, and of GROUP BY clauses:

    ==========  =======  ==========  =========
    Benchmark   Queries  Aggregates  GROUP BYs
    ==========  =======  ==========  =========
    TPC-A, B          1           0          0
    TPC-C            18           4          0
    TPC-D            16          27         15
    Wisconsin        18           3          2
    AS3AP            23          20          2
    SetQuery          7           5          1
    ==========  =======  ==========  =========

The original benchmark texts are licensed specifications, so this
module restates each suite as a *representative query set in our SQL
dialect* with the same statistical profile: the same number of
queries, the same total aggregate invocations, and the same number of
GROUP BY clauses (TPC-C's transactional statements are restated as the
read queries they contain).  The Table 2 bench parses every query with
:mod:`repro.sql` and re-derives the counts, so the reproduced table is
computed, not transcribed.

For TPC-D the structural details the paper calls out are preserved:
"The TPC-D query set has one 6D GROUP BY and three 3D GROUP BYs.  One
and two dimensional GROUP BYs are the most common."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Workload", "WORKLOADS"]


@dataclass(frozen=True)
class Workload:
    """One benchmark's restated query set plus the paper's counts."""

    name: str
    queries: tuple[str, ...]
    paper_queries: int
    paper_aggregates: int
    paper_group_bys: int


_TPC_AB = (
    # The TPC-A/B workload is a single debit/credit transaction; its one
    # read statement fetches a balance -- no aggregation at all.
    "SELECT Abalance FROM Accounts WHERE Aid = 42;",
)

_TPC_C = (
    # New-Order transaction reads
    "SELECT C_discount, C_last, C_credit FROM Customer "
    "WHERE C_w_id = 1 AND C_d_id = 2 AND C_id = 3;",
    "SELECT W_tax FROM Warehouse WHERE W_id = 1;",
    "SELECT D_next_o_id, D_tax FROM District WHERE D_w_id = 1 AND D_id = 2;",
    "SELECT I_price, I_name, I_data FROM Item WHERE I_id = 17;",
    "SELECT S_quantity, S_data, S_dist_01 FROM Stock "
    "WHERE S_i_id = 17 AND S_w_id = 1;",
    # Payment transaction reads
    "SELECT W_street_1, W_city, W_state FROM Warehouse WHERE W_id = 1;",
    "SELECT D_street_1, D_city, D_state FROM District "
    "WHERE D_w_id = 1 AND D_id = 2;",
    "SELECT C_first, C_middle, C_last, C_balance FROM Customer "
    "WHERE C_w_id = 1 AND C_d_id = 2 AND C_id = 3;",
    "SELECT COUNT(C_id) FROM Customer "
    "WHERE C_w_id = 1 AND C_d_id = 2 AND C_last = 'BARBARBAR';",
    "SELECT H_amount, H_date FROM History WHERE H_c_id = 3;",
    # Order-Status transaction reads
    "SELECT COUNT(C_id) FROM Customer "
    "WHERE C_w_id = 1 AND C_d_id = 2 AND C_last = 'OUGHTPRES';",
    "SELECT O_id, O_entry_d, O_carrier_id FROM Orders "
    "WHERE O_w_id = 1 AND O_d_id = 2 AND O_c_id = 3;",
    "SELECT OL_i_id, OL_quantity, OL_amount FROM OrderLine "
    "WHERE OL_w_id = 1 AND OL_d_id = 2 AND OL_o_id = 99;",
    # Delivery transaction reads
    "SELECT O_c_id FROM Orders WHERE O_w_id = 1 AND O_d_id = 2 AND O_id = 99;",
    "SELECT SUM(OL_amount) FROM OrderLine "
    "WHERE OL_w_id = 1 AND OL_d_id = 2 AND OL_o_id = 99;",
    "SELECT NO_o_id FROM NewOrder WHERE NO_w_id = 1 AND NO_d_id = 2;",
    # Stock-Level transaction reads
    "SELECT D_next_o_id FROM District WHERE D_w_id = 1 AND D_id = 2;",
    "SELECT COUNT(DISTINCT S_i_id) FROM Stock "
    "WHERE S_w_id = 1 AND S_quantity < 10;",
)

_TPC_D = (
    # Q1: the pricing summary report -- the aggregate-dense query
    # (8 aggregates, 2D GROUP BY)
    "SELECT Returnflag, Linestatus, SUM(Quantity), SUM(Extendedprice), "
    "SUM(Extendedprice * 2), SUM(Extendedprice * 3), AVG(Quantity), "
    "AVG(Extendedprice), AVG(Discount), COUNT(*) "
    "FROM Lineitem WHERE Shipdate <= 19981201 "
    "GROUP BY Returnflag, Linestatus "
    "ORDER BY Returnflag, Linestatus;",
    # Q2: minimum-cost supplier, restated as the grouped minimum
    "SELECT Ps_partkey, MIN(Supplycost) FROM Partsupp "
    "GROUP BY Ps_partkey;",
    # Q3: shipping priority (3D GROUP BY #1)
    "SELECT Orderkey, Orderdate, Shippriority, SUM(Extendedprice) "
    "FROM Lineitem GROUP BY Orderkey, Orderdate, Shippriority "
    "ORDER BY Orderkey;",
    # Q4: order priority checking
    "SELECT Orderpriority, COUNT(*) FROM Orders "
    "WHERE Orderdate BETWEEN 19930701 AND 19931001 "
    "GROUP BY Orderpriority ORDER BY Orderpriority;",
    # Q5: local supplier volume
    "SELECT Nationname, SUM(Extendedprice) FROM Lineitem "
    "GROUP BY Nationname ORDER BY Nationname;",
    # Q6: forecasting revenue change (aggregate, no GROUP BY)
    "SELECT SUM(Extendedprice * Discount) FROM Lineitem "
    "WHERE Discount BETWEEN 5 AND 7 AND Quantity < 24;",
    # Q7: volume shipping (3D GROUP BY #2)
    "SELECT Suppnation, Custnation, Shipyear, SUM(Volume) "
    "FROM Shipping GROUP BY Suppnation, Custnation, Shipyear;",
    # Q8: national market share (the share is a ratio of two sums)
    "SELECT Orderyear, SUM(Casevolume), SUM(Volume) FROM AllNations "
    "GROUP BY Orderyear;",
    # Q9: product type profit (3D GROUP BY #3 in the original's
    # nation/year breakdown; restated)
    "SELECT Nationname, Orderyear, Parttype, SUM(Amount) FROM Profit "
    "GROUP BY Nationname, Orderyear, Parttype;",
    # Q10: returned item reporting
    "SELECT Custkey, Custname, SUM(Extendedprice) FROM Returns "
    "GROUP BY Custkey, Custname;",
    # Q11: important stock identification
    "SELECT Ps_partkey, SUM(Supplycost * Availqty) FROM Partsupp "
    "GROUP BY Ps_partkey;",
    # Q12: shipping modes and order priority
    "SELECT Shipmode, SUM(Highline), SUM(Lowline) FROM Linepriority "
    "GROUP BY Shipmode ORDER BY Shipmode;",
    # Q13: does-size-matter -- the paper's 6D GROUP BY
    "SELECT Custnation, Custsegment, Orderyear, Orderquarter, "
    "Orderpriority, Shipmode, COUNT(*) "
    "FROM CustomerOrders "
    "GROUP BY Custnation, Custsegment, Orderyear, Orderquarter, "
    "Orderpriority, Shipmode;",
    # Q14: promotion effect (promo revenue over total revenue)
    "SELECT Promoflag, SUM(Promoprice), SUM(Extendedprice) "
    "FROM Promotions GROUP BY Promoflag;",
    # Q15: top supplier
    "SELECT Suppkey, SUM(Extendedprice), MAX(Extendedprice) "
    "FROM Lineitem GROUP BY Suppkey;",
    # Q16: parts/supplier relationship
    "SELECT Brand, Parttype, COUNT(DISTINCT Suppkey) FROM Partsupp "
    "GROUP BY Brand, Parttype ORDER BY Brand;",
)

_WISCONSIN = (
    "SELECT * FROM Tenktup1 WHERE Unique2 BETWEEN 0 AND 99;",
    "SELECT * FROM Tenktup1 WHERE Unique2 BETWEEN 792 AND 1791;",
    "SELECT * FROM Tenktup1 WHERE Unique2 = 2001;",
    "SELECT Unique3, Two, Four FROM Tenktup1 WHERE Unique2 < 100;",
    "SELECT * FROM Tenktup1 JOIN Tenktup2 USING (Unique2) "
    "WHERE Unique2 < 1000;",
    "SELECT * FROM Onektup JOIN Tenktup1 USING (Unique2);",
    "SELECT * FROM Tenktup1 JOIN Tenktup2 USING (Unique2) "
    "WHERE Unique2 BETWEEN 1000 AND 1999;",
    "SELECT DISTINCT Two, Four, Ten FROM Tenktup1 WHERE Unique2 < 100;",
    "SELECT DISTINCT * FROM Onepercent;",
    # the two aggregate queries without grouping
    "SELECT MIN(Unique2) FROM Tenktup1;",
    "SELECT SUM(Unique2) FROM Onepercent;",
    # the two grouped aggregate queries
    "SELECT MIN(Unique3) FROM Tenktup1 GROUP BY Onepercent;",
    "SELECT Onepercent FROM Tenktup1 GROUP BY Onepercent;",
    "SELECT * FROM Tenktup1 WHERE Unique2 < 100 OR Unique2 > 9900;",
    "SELECT * FROM Tenktup1 WHERE Stringu2 = 'A1234567';",
    "SELECT Unique1 FROM Tenktup1 WHERE Odd100 = 1;",
    "SELECT * FROM Bprime JOIN Tenktup2 USING (Unique2);",
    "SELECT * FROM Tenktup1 WHERE Unique2 IN (1, 2, 3, 5, 8, 13);",
)

_AS3AP = (
    # single-user selections
    "SELECT Key1, Int1 FROM Uniques WHERE Key1 = 1000;",
    "SELECT * FROM Updates WHERE Key1 BETWEEN 1000 AND 1100;",
    "SELECT * FROM Hundred WHERE Key1 <= 100;",
    "SELECT * FROM Tenpct WHERE Name = 'THE+ASAP+BENCHMARKS+';",
    "SELECT * FROM Uniques WHERE Code = 'BENCHMARKS' OR Int1 = 5000;",
    # joins
    "SELECT Uniques.Key1, Code FROM Uniques JOIN Hundred USING (Key1);",
    "SELECT * FROM Tenpct JOIN Updates USING (Key1) WHERE Key1 < 1000;",
    "SELECT Signed1 FROM Hundred JOIN Tenpct USING (Key1) "
    "WHERE Double1 > 0;",
    # projections
    "SELECT DISTINCT Address FROM Uniques;",
    "SELECT DISTINCT Signed1, Code FROM Hundred;",
    # the aggregate battery: AS3AP is aggregate-heavy
    "SELECT MIN(Key1) FROM Uniques;",
    "SELECT MAX(Key1) FROM Uniques;",
    "SELECT COUNT(*) FROM Updates;",
    "SELECT AVG(Int1) FROM Updates;",
    "SELECT SUM(Int1) FROM Updates;",
    "SELECT MIN(Int1), MAX(Int1) FROM Hundred;",
    "SELECT SUM(Double1), AVG(Double1), MIN(Double1), MAX(Double1) "
    "FROM Tenpct;",
    "SELECT COUNT(DISTINCT Name), COUNT(*) FROM Tenpct;",
    "SELECT MIN(Name), MAX(Name), COUNT(*) FROM Uniques "
    "WHERE Name LIKE 'THE%';",
    # grouped aggregates (the two GROUP BYs)
    "SELECT Code, MIN(Double1), MAX(Double1), AVG(Double1) "
    "FROM Hundred GROUP BY Code;",
    "SELECT Signed1, COUNT(*) FROM Updates GROUP BY Signed1;",
    # reports
    "SELECT Key1, Name FROM Tenpct WHERE Key1 < 100 ORDER BY Name;",
    "SELECT * FROM Uniques WHERE Int1 IN (1, 2, 3) ORDER BY Key1 DESC;",
)

_SET_QUERY = (
    # the Set Query benchmark's COUNT battery
    "SELECT COUNT(*) FROM Bench WHERE K2 = 2;",
    "SELECT COUNT(*) FROM Bench WHERE K100 > 80 AND K10K BETWEEN 2000 "
    "AND 3000;",
    "SELECT SUM(K1K) FROM Bench WHERE K10 = 7 OR K25 = 19;",
    "SELECT K10, COUNT(*), SUM(KSeq) FROM Bench WHERE K5 = 3 GROUP BY K10;",
    "SELECT KSeq, K500K FROM Bench WHERE K4 = 3 AND K25 IN (11, 19);",
    "SELECT KSeq FROM Bench WHERE K100 < 3 AND K10K = 9000;",
    "SELECT K2, K4, K8 FROM Bench WHERE KSeq BETWEEN 400000 AND 500000;",
)


WORKLOADS: tuple[Workload, ...] = (
    Workload("TPC-A, B", _TPC_AB, 1, 0, 0),
    Workload("TPC-C", _TPC_C, 18, 4, 0),
    Workload("TPC-D", _TPC_D, 16, 27, 15),
    Workload("Wisconsin", _WISCONSIN, 18, 3, 2),
    Workload("AS3AP", _AS3AP, 23, 20, 2),
    Workload("SetQuery", _SET_QUERY, 7, 5, 1),
)
