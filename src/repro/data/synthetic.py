"""Scalable synthetic fact tables for the algorithm benchmarks.

Section 5's cost claims are parameterized by N (dimensions), Ci
(per-dimension cardinality), T (base-table rows), value skew, and
sparsity; :func:`synthetic_table` exposes exactly those knobs with a
deterministic seed so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import WorkloadError
from repro.types import DataType

__all__ = ["SyntheticSpec", "synthetic_table"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic fact table.

    ``cardinalities`` gives Ci per dimension; ``n_rows`` is T;
    ``skew`` is a Zipf-like exponent (0 = uniform); ``density``
    controls what fraction of the full cross-product of dimension
    values can appear (1.0 = any combination, lower = sparse cube).
    """

    cardinalities: tuple[int, ...] = (4, 4, 4)
    n_rows: int = 1000
    skew: float = 0.0
    density: float = 1.0
    measure_low: int = 1
    measure_high: int = 100
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.cardinalities:
            raise WorkloadError("need at least one dimension")
        if any(c < 1 for c in self.cardinalities):
            raise WorkloadError("cardinalities must be >= 1")
        if not 0 < self.density <= 1.0:
            raise WorkloadError("density must be in (0, 1]")
        if self.n_rows < 0:
            raise WorkloadError("n_rows must be non-negative")

    @property
    def n_dims(self) -> int:
        return len(self.cardinalities)

    def dim_names(self) -> list[str]:
        return [f"d{i}" for i in range(self.n_dims)]


def _zipf_weights(n: int, skew: float) -> list[float]:
    if skew <= 0:
        return [1.0] * n
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def synthetic_table(spec: SyntheticSpec) -> Table:
    """Generate the fact table described by ``spec``.

    Dimension values are strings ``"v0".."v{Ci-1}"`` so symbol-table
    encoding (Section 5's dense-integer trick) has real work to do;
    the measure column ``m`` is a uniform integer.
    """
    rng = random.Random(spec.seed)
    columns = [Column(name, DataType.STRING, nullable=False)
               for name in spec.dim_names()]
    columns.append(Column("m", DataType.INTEGER, nullable=False))
    table = Table(Schema(columns), name="Synthetic")

    weight_sets = [_zipf_weights(c, spec.skew) for c in spec.cardinalities]
    allowed_keys: set[tuple] | None = None
    if spec.density < 1.0:
        # restrict combinations to a random subset of the cross-product
        target = max(1, int(spec.density
                            * _cross_product_size(spec.cardinalities)))
        allowed_keys = set()
        guard = 0
        while len(allowed_keys) < target and guard < target * 50:
            guard += 1
            allowed_keys.add(tuple(
                rng.randrange(c) for c in spec.cardinalities))

    for _ in range(spec.n_rows):
        while True:
            key = tuple(
                rng.choices(range(c), weights=weight_sets[i], k=1)[0]
                for i, c in enumerate(spec.cardinalities))
            if allowed_keys is None or key in allowed_keys:
                break
        measure = rng.randint(spec.measure_low, spec.measure_high)
        table.append(tuple(f"v{k}" for k in key) + (measure,),
                     validate=False)
    return table


def _cross_product_size(cardinalities: tuple[int, ...]) -> int:
    product = 1
    for c in cardinalities:
        product *= c
    return product
