"""Deterministic, seed-driven fault injection.

The resilience machinery (worker retry, serial re-execution, budget
degradation, spill retry) only earns trust if the failures it guards
against can be produced on demand.  A :class:`ChaosInjector` does that:
it is installed on an :class:`~repro.resilience.ExecutionContext` and
consulted at four injection points wired into the engine:

``worker_crash``
    A parallel worker raises :class:`~repro.errors.FaultInjectedError`
    before computing its local cube (``compute/parallel.py``).
``spill_write``
    A partition spill write fails during the external algorithm's
    partition pass (``compute/external.py``).
``slow_node``
    A parallel worker sleeps ``slow_node_delay`` seconds before
    working -- combined with a deadline this exercises the timeout path
    without wall-clock-sensitive tests.
``budget_pressure``
    Phantom scratchpad cells are charged against the memory accountant
    (``ExecutionContext.charge_cells``), forcing graceful degradation
    under budgets that would normally fit.

Decisions are **deterministic**: a draw for a labelled site (e.g.
``worker=2, attempt=0``) is a pure function of ``(seed, point,
labels)``, so the same seed produces the same fault schedule regardless
of thread scheduling; unlabelled draws come from a per-point seeded
stream.  Seeding uses :class:`random.Random` with a string key, which
is stable across processes (no ``PYTHONHASHSEED`` dependence).

Every injected fault is counted on :attr:`ChaosInjector.injected` and
published as ``repro_chaos_injected_faults_total{point=...}``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any

from repro.errors import FaultInjectedError, ResilienceError

__all__ = ["ChaosInjector", "INJECTION_POINTS"]

#: The engine's wired injection points.
INJECTION_POINTS = ("worker_crash", "spill_write", "slow_node",
                    "budget_pressure")


class ChaosInjector:
    """Seed-driven fault source, one rate per injection point.

    Rates are probabilities in ``[0, 1]``; ``1.0`` means every visit to
    the point faults (useful with per-``attempt`` labels: attempt 0
    always crashes, and recovery must succeed some other way).
    """

    def __init__(self, seed: int = 0, *,
                 worker_crash: float = 0.0,
                 spill_write: float = 0.0,
                 slow_node: float = 0.0,
                 slow_node_delay: float = 0.005,
                 budget_pressure: float = 0.0,
                 budget_pressure_cells: int = 64) -> None:
        rates = {"worker_crash": worker_crash, "spill_write": spill_write,
                 "slow_node": slow_node, "budget_pressure": budget_pressure}
        for point, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(
                    f"chaos rate for {point!r} must be in [0, 1], "
                    f"got {rate}")
        if slow_node_delay < 0:
            raise ResilienceError("slow_node_delay must be >= 0")
        if budget_pressure_cells < 0:
            raise ResilienceError("budget_pressure_cells must be >= 0")
        self.seed = seed
        self.rates = rates
        self.slow_node_delay = slow_node_delay
        self.budget_pressure_cells = budget_pressure_cells
        self.injected: dict[str, int] = {point: 0
                                         for point in INJECTION_POINTS}
        self._lock = threading.Lock()
        self._streams = {point: random.Random(f"{seed}:{point}")
                         for point in INJECTION_POINTS}

    # -- decision ---------------------------------------------------------

    def _draw(self, point: str, labels: dict[str, Any]) -> float:
        if labels:
            key = ":".join([str(self.seed), point]
                           + [f"{k}={labels[k]}" for k in sorted(labels)])
            return random.Random(key).random()
        with self._lock:
            return self._streams[point].random()

    def should_inject(self, point: str, **labels: Any) -> bool:
        """Decide (and record) whether this visit to ``point`` faults."""
        if point not in self.rates:
            raise ResilienceError(
                f"unknown injection point {point!r}; "
                f"have {INJECTION_POINTS}")
        rate = self.rates[point]
        if rate <= 0.0:
            return False
        hit = rate >= 1.0 or self._draw(point, labels) < rate
        if hit:
            with self._lock:
                self.injected[point] += 1
            from repro.obs import instrument
            instrument.record_injected_fault(point)
        return hit

    # -- effects ----------------------------------------------------------

    def inject(self, point: str, **labels: Any) -> None:
        """Apply the point's effect if the draw says so.

        ``slow_node`` sleeps; every other point raises
        :class:`~repro.errors.FaultInjectedError`.
        """
        if not self.should_inject(point, **labels):
            return
        if point == "slow_node":
            time.sleep(self.slow_node_delay)
            return
        detail = " ".join(f"{k}={labels[k]}" for k in sorted(labels))
        raise FaultInjectedError(
            f"chaos: injected {point}" + (f" ({detail})" if detail else ""))

    def extra_cells(self, **labels: Any) -> int:
        """Phantom cells to add to one accountant charge (the
        ``budget_pressure`` point); 0 when the draw declines."""
        if self.should_inject("budget_pressure", **labels):
            return self.budget_pressure_cells
        return 0

    def __repr__(self) -> str:
        active = {p: r for p, r in self.rates.items() if r > 0}
        return f"<ChaosInjector seed={self.seed} rates={active}>"
