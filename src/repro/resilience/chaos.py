"""Deterministic, seed-driven fault injection.

The resilience machinery (worker retry, serial re-execution, budget
degradation, spill retry) only earns trust if the failures it guards
against can be produced on demand.  A :class:`ChaosInjector` does that:
it is installed on an :class:`~repro.resilience.ExecutionContext` and
consulted at four injection points wired into the engine:

``worker_crash``
    A parallel worker raises :class:`~repro.errors.FaultInjectedError`
    before computing its local cube (``compute/parallel.py``).
``spill_write``
    A partition spill write fails during the external algorithm's
    partition pass (``compute/external.py``).
``slow_node``
    A parallel worker sleeps ``slow_node_delay`` seconds before
    working -- combined with a deadline this exercises the timeout path
    without wall-clock-sensitive tests.
``budget_pressure``
    Phantom scratchpad cells are charged against the memory accountant
    (``ExecutionContext.charge_cells``), forcing graceful degradation
    under budgets that would normally fit.
``torn_write``
    A storage page or WAL record write tears: only a prefix of the
    bytes reaches the file before the writer "dies"
    (:mod:`repro.storage.pages` / :mod:`repro.storage.wal`).  Readers
    must detect the damage by checksum, never consume it.
``fsync_fail``
    An ``fsync`` on a storage file raises before durability is
    reached -- the commit must not be treated as durable.
``crash_point``
    A simulated ``kill -9`` at a named storage write-path site:
    :meth:`ChaosInjector.crash` raises
    :class:`~repro.errors.CrashPointError` at the site, the test
    abandons all in-memory state and re-opens the data directory.
    ``crash_sites`` pins the crash to specific sites (see
    ``repro.storage.CRASH_SITES``) for exhaustive matrix tests.

Decisions are **deterministic**: a draw for a labelled site (e.g.
``worker=2, attempt=0``) is a pure function of ``(seed, point,
labels)``, so the same seed produces the same fault schedule regardless
of thread scheduling; unlabelled draws come from a per-point seeded
stream.  Seeding uses :class:`random.Random` with a string key, which
is stable across processes (no ``PYTHONHASHSEED`` dependence).

Every injected fault is counted on :attr:`ChaosInjector.injected` and
published as ``repro_chaos_injected_faults_total{point=...}``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any

from repro.errors import (
    CrashPointError,
    FaultInjectedError,
    ResilienceError,
)

__all__ = ["ChaosInjector", "INJECTION_POINTS"]

#: The engine's wired injection points.
INJECTION_POINTS = ("worker_crash", "spill_write", "slow_node",
                    "budget_pressure", "torn_write", "fsync_fail",
                    "crash_point")


class ChaosInjector:
    """Seed-driven fault source, one rate per injection point.

    Rates are probabilities in ``[0, 1]``; ``1.0`` means every visit to
    the point faults (useful with per-``attempt`` labels: attempt 0
    always crashes, and recovery must succeed some other way).
    """

    def __init__(self, seed: int = 0, *,
                 worker_crash: float = 0.0,
                 spill_write: float = 0.0,
                 slow_node: float = 0.0,
                 slow_node_delay: float = 0.005,
                 budget_pressure: float = 0.0,
                 budget_pressure_cells: int = 64,
                 torn_write: float = 0.0,
                 fsync_fail: float = 0.0,
                 crash_point: float = 0.0,
                 crash_sites: "tuple[str, ...] | None" = None) -> None:
        rates = {"worker_crash": worker_crash, "spill_write": spill_write,
                 "slow_node": slow_node, "budget_pressure": budget_pressure,
                 "torn_write": torn_write, "fsync_fail": fsync_fail,
                 "crash_point": crash_point}
        for point, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(
                    f"chaos rate for {point!r} must be in [0, 1], "
                    f"got {rate}")
        if slow_node_delay < 0:
            raise ResilienceError("slow_node_delay must be >= 0")
        if budget_pressure_cells < 0:
            raise ResilienceError("budget_pressure_cells must be >= 0")
        if crash_sites is not None and not crash_sites:
            raise ResilienceError(
                "crash_sites must name at least one site (or be None "
                "for rate-driven crash_point draws)")
        self.seed = seed
        self.rates = rates
        self.slow_node_delay = slow_node_delay
        self.budget_pressure_cells = budget_pressure_cells
        self.crash_sites = tuple(crash_sites) if crash_sites else None
        self.injected: dict[str, int] = {point: 0
                                         for point in INJECTION_POINTS}
        self._lock = threading.Lock()
        self._streams = {point: random.Random(f"{seed}:{point}")
                         for point in INJECTION_POINTS}

    # -- decision ---------------------------------------------------------

    def _draw(self, point: str, labels: dict[str, Any]) -> float:
        if labels:
            key = ":".join([str(self.seed), point]
                           + [f"{k}={labels[k]}" for k in sorted(labels)])
            return random.Random(key).random()
        with self._lock:
            return self._streams[point].random()

    def should_inject(self, point: str, **labels: Any) -> bool:
        """Decide (and record) whether this visit to ``point`` faults."""
        if point not in self.rates:
            raise ResilienceError(
                f"unknown injection point {point!r}; "
                f"have {INJECTION_POINTS}")
        rate = self.rates[point]
        if rate <= 0.0:
            return False
        hit = rate >= 1.0 or self._draw(point, labels) < rate
        if hit:
            with self._lock:
                self.injected[point] += 1
            from repro.obs import instrument
            instrument.record_injected_fault(point)
        return hit

    # -- effects ----------------------------------------------------------

    def inject(self, point: str, **labels: Any) -> None:
        """Apply the point's effect if the draw says so.

        ``slow_node`` sleeps; every other point raises
        :class:`~repro.errors.FaultInjectedError`.
        """
        if not self.should_inject(point, **labels):
            return
        if point == "slow_node":
            time.sleep(self.slow_node_delay)
            return
        detail = " ".join(f"{k}={labels[k]}" for k in sorted(labels))
        raise FaultInjectedError(
            f"chaos: injected {point}" + (f" ({detail})" if detail else ""))

    def extra_cells(self, **labels: Any) -> int:
        """Phantom cells to add to one accountant charge (the
        ``budget_pressure`` point); 0 when the draw declines."""
        if self.should_inject("budget_pressure", **labels):
            return self.budget_pressure_cells
        return 0

    # -- storage crash points ---------------------------------------------

    def should_crash(self, site: str) -> bool:
        """Decide whether to simulate a process death at ``site``.

        When :attr:`crash_sites` is set the decision is exact -- crash
        iff the site is named -- so matrix tests can kill the engine at
        every write-path site in turn.  Otherwise it is an ordinary
        seeded ``crash_point`` draw labelled with the site.
        """
        if self.crash_sites is not None:
            if site not in self.crash_sites:
                return False
            with self._lock:
                self.injected["crash_point"] += 1
            from repro.obs import instrument
            instrument.record_injected_fault("crash_point")
            return True
        return self.should_inject("crash_point", site=site)

    def crash(self, site: str) -> None:
        """Raise :class:`~repro.errors.CrashPointError` at ``site`` if
        the draw (or :attr:`crash_sites` targeting) says so.  Storage
        write paths call this *between* the individual durability
        steps, so every interleaving of crash and fsync is
        producible."""
        if self.should_crash(site):
            raise CrashPointError(site)

    def __repr__(self) -> str:
        active = {p: r for p, r in self.rates.items() if r > 0}
        return f"<ChaosInjector seed={self.seed} rates={active}>"
