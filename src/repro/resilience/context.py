"""Execution context: budgets, deadlines, cancellation, chaos.

One :class:`ExecutionContext` travels with a query and carries the
four runtime-resilience concerns the static §5 optimizer cannot
enforce:

* a **memory accountant** -- algorithms charge scratchpad cells as they
  allocate them and release them as they finalize; crossing
  ``memory_budget`` raises
  :class:`~repro.errors.ResourceBudgetExceededError`, which the
  :class:`~repro.compute.base.CubeAlgorithm` template method turns into
  graceful degradation to the external algorithm;
* a **deadline** (``timeout`` seconds on a monotonic clock) and a
  **cancellation token** -- algorithms poll :func:`checkpoint` at
  lattice-node / partition / chunk boundaries, so a timeout or Ctrl-C
  stops the query cooperatively instead of killing the process;
* a **retry policy** shared by the recovery sites (parallel workers,
  spill writes);
* an optional **chaos injector** for deterministic fault injection.

The active context is installed with :func:`use_context` into a
**thread-local** slot, so concurrent queries -- the
:mod:`repro.serve` server runs one per connection thread -- each see
only their own deadline, budget, and cancellation token.  Code that
fans work out to a pool must propagate the context explicitly:
``ParallelCubeAlgorithm`` captures the coordinator's context and each
worker re-installs it (via :func:`use_context`) in its own thread, so
workers still share the coordinator's token, accountant, and chaos
schedule.  The module-level helpers (:func:`checkpoint`,
:func:`charge_cells`, :func:`release_cells`, :func:`inject`) are
no-ops when no context is active, so the resilience layer costs one
``None`` check on the hot path when unused.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Iterator, Optional

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResilienceError,
    ResourceBudgetExceededError,
)
from repro.resilience.chaos import ChaosInjector
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CancellationToken",
    "ExecutionContext",
    "charge_cells",
    "checkpoint",
    "current_context",
    "inject",
    "release_cells",
    "use_context",
]


class CancellationToken:
    """Thread-safe flag a query polls to stop cooperatively.

    ``cancel`` can be called from any thread (the shell's Ctrl-C
    handler, a supervisor); workers observe it at their next
    :meth:`ExecutionContext.check`.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason}" if self.cancelled else "live"
        return f"<CancellationToken {state}>"


class ExecutionContext:
    """Per-query resilience state: budget, deadline, token, chaos.

    ``timeout`` is seconds from construction (``0`` means already
    expired -- handy for deterministic timeout tests); ``deadline`` is
    an absolute ``time.monotonic()`` instant and wins over ``timeout``
    if both are given.  ``memory_budget`` is a cell count matching the
    unit of ``ExternalCubeAlgorithm(memory_budget=...)``.  ``degrade``
    controls whether a budget breach falls back to the external
    algorithm or propagates.
    """

    def __init__(self, *,
                 timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 memory_budget: Optional[int] = None,
                 degrade: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 chaos: Optional[ChaosInjector] = None,
                 token: Optional[CancellationToken] = None) -> None:
        if timeout is not None and timeout < 0:
            raise ResilienceError(f"timeout must be >= 0, got {timeout}")
        if memory_budget is not None and memory_budget < 1:
            raise ResilienceError(
                f"memory_budget must be at least 1 cell, got {memory_budget}")
        if deadline is None and timeout is not None:
            deadline = time.monotonic() + timeout
        self.timeout = timeout
        self.deadline = deadline
        self.memory_budget = memory_budget
        self.degrade = degrade
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self.cancel_token = token if token is not None else CancellationToken()
        self._lock = threading.Lock()
        self._resident_cells = 0
        self._peak_cells = 0
        self._budget_suspended = 0

    # -- cancellation and deadline ----------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        self.cancel_token.cancel(reason)

    def check(self, where: str = "") -> None:
        """Raise if the query is cancelled or past its deadline.

        Algorithms call this (via the module-level :func:`checkpoint`)
        at every lattice-node / partition / chunk boundary; it is the
        cooperative-cancellation poll.
        """
        if self.cancel_token.cancelled:
            from repro.obs import instrument
            instrument.record_cancellation("cancelled")
            suffix = f" (at {where})" if where else ""
            raise QueryCancelledError(
                f"query cancelled: {self.cancel_token.reason}{suffix}")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            from repro.obs import instrument
            instrument.record_cancellation("timeout")
            suffix = f" (at {where})" if where else ""
            shown = self.timeout if self.timeout is not None else self.deadline
            raise QueryTimeoutError(
                f"statement timeout ({shown}s) exceeded{suffix}")

    # -- memory accounting -------------------------------------------------

    def charge_cells(self, n: int = 1, where: str = "") -> None:
        """Account ``n`` newly allocated scratchpad cells.

        Raises :class:`~repro.errors.ResourceBudgetExceededError` when
        the resident count crosses ``memory_budget`` (unless suspended
        by :meth:`budget_suspended`, e.g. during a degraded re-run).
        A chaos injector with ``budget_pressure`` configured may add
        phantom cells here to force the degradation path.
        """
        if self.chaos is not None:
            # An empty ``where`` must stay label-free so repeated charges
            # draw from the advancing per-point stream, not one fixed key.
            n += (self.chaos.extra_cells(where=where) if where
                  else self.chaos.extra_cells())
        with self._lock:
            self._resident_cells += n
            if self._resident_cells > self._peak_cells:
                self._peak_cells = self._resident_cells
            over = (self.memory_budget is not None
                    and self._budget_suspended == 0
                    and self._resident_cells > self.memory_budget)
            resident = self._resident_cells
        if over:
            suffix = f" (at {where})" if where else ""
            raise ResourceBudgetExceededError(
                f"resident scratchpad cells ({resident}) exceed the "
                f"memory budget of {self.memory_budget} cells{suffix}")

    def release_cells(self, n: int = 1) -> None:
        """Return ``n`` cells to the accountant (finalize/evict)."""
        with self._lock:
            self._resident_cells = max(0, self._resident_cells - n)

    @property
    def resident_cells(self) -> int:
        with self._lock:
            return self._resident_cells

    @property
    def peak_cells(self) -> int:
        with self._lock:
            return self._peak_cells

    @contextlib.contextmanager
    def budget_suspended(self) -> Iterator[None]:
        """Temporarily stop enforcing the budget (degraded re-runs:
        the external algorithm bounds its own memory, and charging its
        scratchpad against the already-blown budget would make
        degradation impossible)."""
        with self._lock:
            self._budget_suspended += 1
        try:
            yield
        finally:
            with self._lock:
                self._budget_suspended -= 1

    @contextlib.contextmanager
    def attempt(self) -> Iterator[None]:
        """Snapshot/restore the accountant around one compute attempt,
        so cells charged by an attempt that failed (budget breach,
        injected fault) are not double-counted by its retry or its
        degraded re-run."""
        with self._lock:
            snapshot = self._resident_cells
        try:
            yield
        finally:
            with self._lock:
                self._resident_cells = snapshot

    # -- chaos -------------------------------------------------------------

    def inject(self, point: str, **labels: Any) -> None:
        """Fire the chaos injector at ``point`` (no-op without one)."""
        if self.chaos is not None:
            self.chaos.inject(point, **labels)

    def __repr__(self) -> str:
        bits = []
        if self.timeout is not None:
            bits.append(f"timeout={self.timeout}")
        if self.memory_budget is not None:
            bits.append(f"budget={self.memory_budget}")
        if self.chaos is not None:
            bits.append("chaos")
        if self.cancel_token.cancelled:
            bits.append("cancelled")
        return f"<ExecutionContext {' '.join(bits) or 'unbounded'}>"


# -- active-context plumbing ----------------------------------------------

_ACTIVE = threading.local()


def current_context() -> Optional[ExecutionContext]:
    """The context installed by :func:`use_context` on *this thread*,
    or ``None``."""
    return getattr(_ACTIVE, "ctx", None)


@contextlib.contextmanager
def use_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Install ``ctx`` as this thread's active context.

    Thread-local on purpose: the query server runs concurrent
    statements on separate connection threads, and each must observe
    only its own deadline/budget/token.  Pool coordinators (the
    parallel algorithm) capture the context and re-install it inside
    each worker thread, so a shared token still cancels every worker.
    """
    previous = getattr(_ACTIVE, "ctx", None)
    _ACTIVE.ctx = ctx
    try:
        yield ctx
    finally:
        _ACTIVE.ctx = previous


def checkpoint(where: str = "") -> None:
    """Poll the active context's token/deadline; no-op when inactive."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None:
        ctx.check(where)


def charge_cells(n: int = 1, where: str = "") -> None:
    """Charge cells against the active context; no-op when inactive."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None:
        ctx.charge_cells(n, where)


def release_cells(n: int = 1) -> None:
    """Release cells on the active context; no-op when inactive."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None:
        ctx.release_cells(n)


def inject(point: str, **labels: Any) -> None:
    """Fire the active context's chaos injector; no-op when inactive."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None:
        ctx.inject(point, **labels)
