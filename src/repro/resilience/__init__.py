"""Runtime resilience: budgets, deadlines, retry, fault injection.

The §5 optimizer picks an algorithm *statically*; this package enforces
the same economics *at runtime*.  An :class:`ExecutionContext` carries a
scratchpad-cell budget, a deadline, a cancellation token, a
:class:`RetryPolicy`, and optionally a :class:`ChaosInjector`; the
compute layer polls it at natural boundaries and degrades to the
memory-bounded external algorithm when the budget is breached.

See ``docs/RESILIENCE.md`` for the operator-facing guide.
"""

from repro.resilience.chaos import ChaosInjector
from repro.resilience.context import (
    CancellationToken,
    ExecutionContext,
    charge_cells,
    checkpoint,
    current_context,
    inject,
    release_cells,
    use_context,
)
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "CancellationToken",
    "ChaosInjector",
    "ExecutionContext",
    "RetryPolicy",
    "call_with_retry",
    "charge_cells",
    "checkpoint",
    "current_context",
    "inject",
    "release_cells",
    "use_context",
]
