"""Bounded retry with exponential backoff.

The paper's Section 5 treats the cube as a long-running physical
operator ("64 scans of the data, 64 sorts or hashes, and a long wait");
at production scale pieces of that work fail -- a worker thread dies, a
spill write errors -- and the recovery discipline is always the same:
retry a bounded number of times with growing delays, then fall back to
a slower-but-safe path.  :class:`RetryPolicy` is that discipline as a
value object, and :func:`call_with_retry` is the one retry loop every
recovery site shares.

Cancellation always wins: :class:`~repro.errors.QueryCancelledError`
(and its :class:`~repro.errors.QueryTimeoutError` subclass) is never
retried -- a cancelled query must stop at the next boundary, not burn
its retry budget first.  :class:`~repro.errors.CrashPointError` is the
same: it simulates the process dying at an exact instruction, and a
"retry" of a simulated crash would hide the very failure mode the
crash-recovery harness exists to exercise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import (CrashPointError, QueryCancelledError,
                          ResilienceError)

__all__ = ["RetryPolicy", "call_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``delay(attempt)`` is ``base_delay * multiplier**attempt`` capped at
    ``max_delay`` -- bounded backoff, so a retry storm cannot wedge a
    query for longer than ``max_retries * max_delay`` seconds.  The
    defaults keep recovery sub-second; tests use ``base_delay=0``.
    """

    max_retries: int = 2
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("retry delays must be >= 0")
        if self.multiplier < 1:
            raise ResilienceError(
                f"multiplier must be >= 1, got {self.multiplier}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt + 1``."""
        return min(self.base_delay * (self.multiplier ** attempt),
                   self.max_delay)

    def sleep(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            time.sleep(delay)


def call_with_retry(
        fn: Callable[[int], Any], *,
        policy: RetryPolicy,
        on_failure: Optional[Callable[[int, BaseException], None]] = None
) -> Any:
    """Run ``fn(attempt)`` until it succeeds or retries are exhausted.

    ``fn`` receives the zero-based attempt number (chaos injection
    points key their deterministic draws on it).  ``on_failure`` is
    called before each backoff sleep with the attempt number and the
    error -- the hook recovery sites use to emit span events and retry
    metrics.  Cancellation and simulated crash points propagate
    immediately; after the final attempt the last error propagates
    unchanged.
    """
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except (QueryCancelledError, CrashPointError):
            raise
        except Exception as error:
            if attempt >= policy.max_retries:
                raise
            if on_failure is not None:
                on_failure(attempt, error)
            policy.sleep(attempt)
            attempt += 1
