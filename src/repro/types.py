"""Value domain shared by the whole library.

Defines the column data types, the NULL convention (Python ``None``), and
the ALL sentinel from Section 3.3 of the paper.  ALL is *not* a value from
any column domain: it is a token standing for "the set of values this
aggregate was computed over".  Like NULL it does not participate in any
aggregate except COUNT (Section 3.3), and it needs a total order against
ordinary values so cube results can be sorted deterministically (ALL
sorts after everything else, mirroring how report writers print the
"total" line last).
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Iterable

__all__ = [
    "ALL",
    "AllValue",
    "DataType",
    "NullMode",
    "display_value",
    "is_all",
    "is_null_or_all",
    "sort_key",
    "sort_key_tuple",
]


class AllValue:
    """The ALL sentinel of Section 3.3.

    A singleton: ``AllValue() is ALL`` always holds, so identity checks
    (``value is ALL``) are safe everywhere.  ALL compares equal only to
    itself and orders *after* every ordinary value and after NULL.
    """

    _instance: "AllValue | None" = None

    def __new__(cls) -> "AllValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ALL"

    def __str__(self) -> str:
        return "ALL"

    def __hash__(self) -> int:
        return hash("repro.types.ALL")

    def __eq__(self, other: object) -> bool:
        return other is self

    def __ne__(self, other: object) -> bool:
        return other is not self

    def __lt__(self, other: object) -> bool:
        return False  # nothing is greater than ALL

    def __gt__(self, other: object) -> bool:
        return other is not self

    def __le__(self, other: object) -> bool:
        return other is self

    def __ge__(self, other: object) -> bool:
        return True

    def __reduce__(self) -> "tuple[type[AllValue], tuple[()]]":
        # keep singleton across pickling
        return (AllValue, ())


ALL = AllValue()


def is_all(value: Any) -> bool:
    """True iff ``value`` is the ALL sentinel."""
    return value is ALL


def is_null_or_all(value: Any) -> bool:
    """True for the two non-values that skip aggregation (except COUNT)."""
    return value is None or value is ALL


class NullMode(enum.Enum):
    """How super-aggregate rows mark aggregated-out columns (Sections 3.3-3.4).

    ``ALL_VALUE``
        The paper's "real" design: the ALL sentinel appears in the data
        column.
    ``NULL_WITH_GROUPING``
        The minimalist design of Section 3.4 (and SQL Server 6.5 / the SQL
        standard): the data column holds NULL and a companion
        ``GROUPING(col)`` boolean column discriminates "aggregated out"
        from a genuine NULL group.
    """

    ALL_VALUE = "all"
    NULL_WITH_GROUPING = "null+grouping"


class DataType(enum.Enum):
    """Column data types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    ANY = "ANY"

    @property
    def python_types(self) -> tuple[type, ...]:
        return _PYTHON_TYPES[self]

    def validate(self, value: Any) -> bool:
        """True iff ``value`` is NULL, ALL, or an instance of this type."""
        if value is None or value is ALL:
            return True
        if self is DataType.ANY:
            return True
        if self is DataType.FLOAT and isinstance(value, int) \
                and not isinstance(value, bool):
            return True  # ints are acceptable floats
        if self is DataType.INTEGER and isinstance(value, bool):
            return False  # bools are ints in Python; keep domains apart
        return isinstance(value, self.python_types)

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Best-effort type inference used by ad-hoc table constructors."""
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.STRING
        if isinstance(value, datetime.datetime):
            return cls.TIMESTAMP
        if isinstance(value, datetime.date):
            return cls.DATE
        return cls.ANY


_PYTHON_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (float, int),
    DataType.STRING: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.DATE: (datetime.date,),
    DataType.TIMESTAMP: (datetime.datetime,),
    DataType.ANY: (object,),
}

# Rank groups for the cross-type total order used in sorting mixed columns:
# ordinary values sort within their type group, NULL precedes ALL at the end.
_TYPE_RANK: dict[type, int] = {
    bool: 0,
    int: 1,
    float: 1,
    str: 2,
    datetime.date: 3,
    datetime.datetime: 4,
}


def sort_key(value: Any) -> tuple[Any, ...]:
    """A total-order key valid across mixed-type columns.

    Ordinary values sort first (grouped by type, then by value), NULL
    next, ALL last.  This gives cube output the conventional report
    layout where sub-total and total rows trail their detail rows.
    """
    if value is ALL:
        return (3, 0, 0)
    if value is None:
        return (2, 0, 0)
    rank = _TYPE_RANK.get(type(value))
    if rank is None:
        for base, base_rank in _TYPE_RANK.items():
            if isinstance(value, base):
                rank = base_rank
                break
        else:
            rank = 9
    if rank == 9:
        return (1, rank, repr(value))
    if isinstance(value, datetime.datetime):
        return (1, rank, value.isoformat())
    if isinstance(value, datetime.date):
        return (1, rank, value.isoformat())
    return (1, rank, value)


def sort_key_tuple(values: Iterable[Any]) -> tuple[Any, ...]:
    """Sort key for a whole row (tuple of values)."""
    return tuple(sort_key(v) for v in values)


def display_value(value: Any, null_mode: NullMode = NullMode.ALL_VALUE) -> str:
    """Render a single cell for reports.

    In ``NULL_WITH_GROUPING`` mode the ALL sentinel never reaches display
    code, but we render it as ``NULL`` defensively to match Section 3.4.
    """
    if value is ALL:
        if null_mode is NullMode.NULL_WITH_GROUPING:
            return "NULL"
        return "ALL"
    if value is None:
        return "NULL"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:g}"
    return str(value)
