"""Exception hierarchy for the data-cube reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one root type. Sub-hierarchies mirror the subsystems:
the relational engine, the aggregate framework, the cube operators, the
SQL front-end, and cube maintenance.
"""

from __future__ import annotations

import pickle as _pickle

from typing import Any, Sequence


class ReproError(Exception):
    """Root of every exception raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its column's declared type."""


class DuplicateColumnError(SchemaError):
    """Two columns in one schema share a name."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the schema."""


class TableError(ReproError):
    """A table operation failed (arity mismatch, bad row, ...)."""


class ExpressionError(ReproError):
    """A scalar expression could not be evaluated."""


class AggregateError(ReproError):
    """An aggregate function was misused."""


class NotMergeableError(AggregateError):
    """``merge`` (the paper's Iter_super) was called on a holistic
    aggregate running in strict mode, which keeps no mergeable
    scratchpad (Section 5 of the paper)."""


class UnknownAggregateError(AggregateError):
    """An aggregate name is not present in the registry."""


class CubeError(ReproError):
    """A CUBE/ROLLUP operation was malformed."""


class GroupingError(CubeError):
    """A grouping specification is invalid (duplicate keys, empty CUBE...)."""


class AddressingError(CubeError):
    """A cube-cell address did not resolve to exactly one cell."""


class MixedTypeColumnError(CubeError):
    """One input column mixes mutually incomparable value types (e.g.
    ``int`` and ``str``), so an ordering-based step -- a sort run, a
    MIN/MAX comparison -- cannot proceed.  Raised at the compute
    boundary with the offending column named, instead of the bare
    ``TypeError`` the comparison would surface from deep inside an
    algorithm."""

    def __init__(self, column: str, type_names: Sequence[str],
                 algorithm: str = "") -> None:
        self.column = column
        self.type_names = list(type_names)
        self.algorithm = algorithm
        where = f" (algorithm: {algorithm})" if algorithm else ""
        super().__init__(
            f"column {column!r} mixes incomparable value types "
            f"[{', '.join(self.type_names)}]{where}; every value in one "
            "grouping or aggregate-input column must be comparable with "
            "the others")


class DecorationError(CubeError):
    """A decoration column is not functionally dependent on the
    grouping columns (Section 3.5)."""


class HierarchyError(ReproError):
    """A granularity graph operation failed (unknown level, no
    nesting path, cyclic edge) -- see
    :mod:`repro.warehouse.hierarchy`."""


class MaintenanceError(ReproError):
    """A materialized-cube maintenance operation failed."""


class DeleteRequiresRecomputeError(MaintenanceError):
    """A delete hit a cell whose aggregate is delete-holistic (Section 6);
    the caller must allow recomputation for the cube to stay correct."""


class DeltaRequiresInvalidationError(MaintenanceError):
    """A streamed delta cannot be folded into a cached cuboid -- a delete
    hit a delete-holistic scratchpad (e.g. the departing row held a MIN/MAX
    extreme) and the cuboid has no base rows to recompute from.  The serve
    cache answers this by invalidating the entry instead of merging."""


class SQLError(ReproError):
    """Root of SQL front-end errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None) -> None:
        self.position = position
        self.line = line
        self.column = column
        location = ""
        if line is not None and column is not None:
            location = f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")


class SQLPlanError(SQLError):
    """The parsed statement cannot be turned into an executable plan."""


class SQLExecutionError(SQLError):
    """Plan execution failed at runtime."""


class CLIUsageError(ReproError):
    """A command-line invocation problem shared by the repro CLIs
    (:mod:`repro.cliutil`): empty ``--rules`` selections and similar.
    CLIs report the message and exit 2, never a traceback."""


class AnalysisError(ReproError):
    """The engine invariant analyzer (:mod:`repro.analysis`) was
    misused: unknown rule codes, nonexistent target paths, or an empty
    rule selection.  Findings themselves are reported as data, never
    raised."""


class LintError(ReproError):
    """Static analysis (:mod:`repro.lint`) found error-severity
    diagnostics and the caller asked for strict mode.

    Carries the offending :class:`~repro.lint.diagnostics.Diagnostic`
    records on :attr:`diagnostics` so callers can render or filter them.
    """

    def __init__(self, diagnostics: Sequence[Any]) -> None:
        self.diagnostics = list(diagnostics)
        detail = "; ".join(
            f"{getattr(d, 'code', '?')}: {getattr(d, 'message', d)}"
            for d in self.diagnostics)
        super().__init__(
            f"lint failed with {len(self.diagnostics)} error(s): {detail}")


class CatalogError(ReproError):
    """A catalog lookup or registration failed."""


class WorkloadError(ReproError):
    """A benchmark workload definition is inconsistent."""


class ObservabilityError(ReproError):
    """A tracing or metrics misuse (e.g. re-registering a metric name
    with a different kind, or decreasing a counter)."""


class ResilienceError(ReproError):
    """Root of runtime-resilience errors (:mod:`repro.resilience`);
    also raised directly for invalid resilience configuration
    (negative timeouts, out-of-range chaos rates)."""


class QueryCancelledError(ResilienceError):
    """The query's cancellation token was triggered; execution stopped
    cooperatively at the next checkpoint (lattice-node / partition /
    chunk boundary)."""


class QueryTimeoutError(QueryCancelledError):
    """The query's deadline (``statement_timeout``) passed.  A timeout
    is a cancellation, so ``except QueryCancelledError`` handles both;
    catch this subclass to treat deadline expiry specially."""


class ResourceBudgetExceededError(ResilienceError):
    """An in-flight computation exceeded its
    :class:`~repro.resilience.ExecutionContext` memory budget and could
    not degrade to the external (memory-bounded) algorithm -- either
    degradation was disabled or the aggregates are not mergeable."""


class ServeError(ReproError):
    """Root of query-serving errors (:mod:`repro.serve`): protocol
    violations, connection failures, server lifecycle misuse."""


class ServerOverloadedError(ServeError):
    """Admission control shed the request: the in-flight limit was
    reached and the wait queue was full.  Clients should back off and
    retry; the server stays healthy by refusing work instead of
    accepting unbounded concurrency."""


class ClusterError(ReproError):
    """Root of multi-process execution errors (:mod:`repro.cluster`):
    invalid pool configuration, malformed shared-memory slabs, or
    dispatch against a shut-down pool."""


class WorkerLostError(ClusterError):
    """A cluster worker *process* died or failed mid-partition (crash,
    SIGKILL, unhandled error).  Retried on a fresh process under the
    context's retry policy; exhausted retries surrender the partition
    for serial in-parent recovery, so a lone raise of this error means
    even recovery could not proceed."""


class FaultInjectedError(ResilienceError):
    """A deterministic fault from the chaos harness
    (:mod:`repro.resilience.chaos`).  Only ever raised when a
    :class:`~repro.resilience.ChaosInjector` is installed on the active
    execution context -- production paths never construct one."""


class CrashPointError(FaultInjectedError):
    """The chaos harness simulated a process crash (``kill -9``) at a
    named storage write-path site (``crash_point`` injection point).
    The crash-recovery tests catch this, abandon every in-memory
    object, reopen the data directory, and assert the recovered state
    is exactly the last committed one (docs/STORAGE.md)."""

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"chaos: crash injected at {site}")


class StorageError(ReproError):
    """Root of durable-storage errors (:mod:`repro.storage`): invalid
    page sizes, out-of-range page ids, operations on a closed file,
    or a cube attached under a name whose on-disk spec signature
    belongs to a different cube definition."""


class TornPageError(StorageError):
    """A page's stored checksum does not match its contents -- the
    page was torn by a partial write (or corrupted at rest).  Readers
    raise instead of returning garbage; recovery treats the page as
    lost and falls back to the last checkpoint + WAL replay."""

    def __init__(self, page_id: int, path: str = "") -> None:
        self.page_id = page_id
        where = f" in {path}" if path else ""
        super().__init__(
            f"page {page_id}{where} failed its checksum: torn write "
            "detected; recover from the last checkpoint + WAL")


class WALCorruptError(StorageError):
    """The write-ahead log is damaged beyond the torn-tail contract:
    a record in the *interior* of the log (one with valid records
    after it at open time) failed its checksum, or ``verify()`` was
    asked to prove the log clean and found a torn tail.  An ordinary
    torn tail discovered at open is silently truncated, never
    raised -- this error means real corruption."""


class UntrustedPayloadError(StorageError, _pickle.UnpicklingError):
    """A storage blob references a global outside the deserialization
    allowlist (:mod:`repro.storage.serde`) -- the shape of a pickle
    code-execution gadget, refused before anything loads.  Subclasses
    :class:`pickle.UnpicklingError` so generic unpickling guards (the
    WAL's torn-tail scan, the cache's defensive restore) treat it as
    frame damage."""
