"""The paper's 2^N-algorithm (Section 5).

"The simplest algorithm to compute the cube is to allocate a handle for
each cube cell.  When a new tuple (x1, x2, ..., xN, v) arrives, the
Iter(handle, v) function is called 2^N times -- once for each handle of
each cell of the cube matching this value.  [...] If the base table has
cardinality T, the 2^N-algorithm invokes the Iter() function T x 2^N
times."

One scan; each input row is folded into every grouping set's matching
cell.  Cells are kept in a hash table keyed by coordinate (the sparse
representation Section 5 recommends when the core does not fit a dense
array), so this is simultaneously the paper's "hashing" strategy.

This is the only algorithm that works for **holistic** functions in
strict mode: every cell sees the raw values, so no scratchpad merging is
ever needed.
"""

from __future__ import annotations

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.resilience import context as rctx

__all__ = ["TwoNAlgorithm"]


class TwoNAlgorithm(CubeAlgorithm):
    name = "2^N"

    def _compute(self, task: CubeTask) -> CubeResult:
        stats = self._new_stats()
        stats.base_scans = 1
        cells: dict[tuple, list[Handle]] = {}

        if 0 in task.masks:
            # the global-total cell exists even over empty input
            cells[task.coordinate(0, ())] = task.new_handles(stats)

        for position, row in enumerate(task.rows):
            if position & 255 == 0:
                rctx.checkpoint("2^N scan")
            dim_values = task.dim_values(row)
            for mask in task.masks:
                coordinate = task.coordinate(mask, dim_values)
                handles = cells.get(coordinate)
                if handles is None:
                    handles = task.new_handles(stats)
                    cells[coordinate] = handles
                task.fold_row(handles, row, stats)
        stats.observe_resident(len(cells))

        finalized = [(coordinate, task.finalize(handles, stats))
                     for coordinate, handles in cells.items()]
        rctx.release_cells(len(finalized))
        stats.cells_produced = len(finalized)
        return CubeResult(table=task.result_table(finalized), stats=stats)
