"""Materializing a *subset* of the cube: greedy view selection.

Section 6 points at Harinarayan, Rajaraman, and Ullman's "Implementing
Data Cubes Efficiently" (SIGMOD 1996) for "pre-computing sub-cubes of
the cube".  This module implements that idea on our lattice:

- :func:`view_sizes` measures the exact row count of every grouping set
  (the "view") of a fact table;
- :func:`greedy_select` is the HRU greedy algorithm: starting from the
  core (always materialized -- it is the finest view and every query
  can be answered from it), repeatedly materialize the view with the
  largest *benefit*, where the benefit of view ``w`` is the total
  row-count saving it brings to every view that would now be computed
  from ``w`` instead of its current cheapest materialized ancestor;
- :class:`PartialCube` materializes the selected views and answers any
  grouping-set query from the smallest materialized ancestor, counting
  the rows scanned so policies can be compared on work done rather than
  wall time alone.  :meth:`PartialCube.answer` is also the answering
  engine behind the serving layer's semantic cuboid cache
  (:mod:`repro.serve.cache`): a repeated or coarser query folds a
  stored cuboid instead of rescanning the fact table.

Works for distributive and algebraic aggregates (answering from an
ancestor is an Iter_super fold); holistic functions would need the base
data, which is exactly the HRU paper's assumption the Gray et al. text
questions ("assuming all functions are holistic ... our view is that
users avoid holistic functions").
"""

from __future__ import annotations

import math
import time
from typing import Sequence

from repro.aggregates.base import Handle
from repro.compute.base import CubeTask, build_task
from repro.compute.stats import ComputeStats
from repro.core.grouping import Mask, cube_sets, mask_to_names
from repro.core.lattice import CubeLattice
from repro.engine.groupby import AggregateSpec
from repro.engine.table import Table
from repro.errors import (
    CubeError,
    DeltaRequiresInvalidationError,
    NotMergeableError,
)
from repro.obs import instrument, trace
from repro.resilience import context as rctx

__all__ = ["view_sizes", "greedy_select", "PartialCube"]


def view_sizes(task: CubeTask, *,
               stats: ComputeStats | None = None) -> dict[Mask, int]:
    """Exact row count of every grouping set in ``task.masks``.

    One pass over the fact table counts distinct coordinates for every
    mask simultaneously.  The result is memoized on the task, so the
    several call sites that plan against the same task (selection,
    benchmarks, the serving cache) share a single scan instead of each
    silently rescanning the fact table.  When ``stats`` is given, the
    scan that actually happens is recorded on it (``base_scans`` plus a
    ``view_sizes_rows`` note); a memo hit records nothing, because no
    work was done.
    """
    cached = getattr(task, "_view_sizes_memo", None)
    if cached is not None:
        return dict(cached)
    seen: dict[Mask, set] = {mask: set() for mask in task.masks}
    for row in task.rows:
        dim_values = task.dim_values(row)
        for mask in task.masks:
            seen[mask].add(task.coordinate(mask, dim_values))
    sizes = {mask: max(1, len(coords)) for mask, coords in seen.items()}
    task._view_sizes_memo = dict(sizes)  # type: ignore[attr-defined]
    if stats is not None:
        stats.base_scans += 1
        stats.notes["view_sizes_rows"] = len(task.rows)
    return sizes


def _cheapest_ancestor(mask: Mask, materialized: set[Mask],
                       sizes: dict[Mask, int],
                       lattice: CubeLattice) -> Mask:
    """The smallest materialized view a query on ``mask`` can use."""
    candidates = [m for m in materialized
                  if (m & mask) == mask]  # m is finer or equal
    if not candidates:
        raise CubeError(f"no materialized ancestor for mask {mask:#b}")
    return min(candidates, key=lambda m: (sizes[m], m))


def greedy_select(sizes: dict[Mask, int], k: int, *,
                  dims: Sequence[str]) -> list[Mask]:
    """HRU greedy: pick ``k`` views beyond the core.

    Returns the materialized set (core first).  Benefit of view ``w``:
    for every view ``u`` that ``w`` can answer (``u`` coarser-or-equal),
    the saving ``max(0, cost(u) - size(w))`` where ``cost(u)`` is the
    size of u's current cheapest materialized ancestor.
    """
    lattice = CubeLattice(dims, list(sizes))
    core = lattice.core
    materialized: list[Mask] = [core]
    chosen = set(materialized)

    for _ in range(k):
        best_view: Mask | None = None
        best_benefit = 0
        for candidate in sizes:
            if candidate in chosen:
                continue
            benefit = 0
            for target in sizes:
                if (candidate & target) != target:
                    continue  # candidate cannot answer target
                current = _cheapest_ancestor(target, chosen, sizes,
                                             lattice)
                saving = sizes[current] - sizes[candidate]
                if saving > 0:
                    benefit += saving
            if benefit > best_benefit or (benefit == best_benefit
                                          and benefit > 0
                                          and best_view is not None
                                          and candidate < best_view):
                best_benefit = benefit
                best_view = candidate
        if best_view is None:
            break  # no remaining view helps
        chosen.add(best_view)
        materialized.append(best_view)
    return materialized


class PartialCube:
    """A cube materialized only at selected grouping sets.

    Queries for *any* grouping set are answered by folding the smallest
    materialized ancestor (Iter_super), the HRU execution model.
    ``stats.iter_calls`` counts base-row folds, ``stats.merge_calls``
    the ancestor-cell folds per query, so policies can be compared on
    work done rather than wall time alone.

    ``universe`` restricts the lattice the cube plans over: the masks
    whose sizes are measured and which :func:`greedy_select` may pick.
    It defaults to the full 2^N power set (the HRU setting); the
    serving cache passes just the query's grouping sets plus the core,
    so admitting a plain GROUP BY does not pay a 2^N planning pass.
    Any mask over the dimensions can still be *answered* -- the core is
    always materialized and is an ancestor of everything.
    """

    def __init__(self, table: Table, dims: Sequence,
                 aggregates: Sequence[AggregateSpec], *,
                 materialize: Sequence[Mask] | None = None,
                 budget: int | None = None,
                 universe: Sequence[Mask] | None = None) -> None:
        n_dims = len(list(dims))
        if universe is None:
            universe = cube_sets(n_dims)
        full = (1 << n_dims) - 1
        # the full mask anchors the lattice (every mask's ancestor), and
        # explicitly materialized views must be measurable
        universe = list(dict.fromkeys(
            [full, *universe, *(materialize or ())]))
        # retained so apply_delta can evaluate streamed source rows into
        # task rows exactly the way build_task did
        from repro.engine.groupby import normalize_keys
        self._normalized = normalize_keys(dims)
        self._specs = list(aggregates)
        self._source_names = tuple(table.schema.names)
        self._task = build_task(table, dims, list(aggregates), universe)
        if not self._task.all_mergeable():
            bad = [fn.name for fn in self._task.functions
                   if not fn.mergeable]
            raise NotMergeableError(
                f"partial cubes need mergeable scratchpads; {bad} are "
                "holistic in strict mode")
        self.stats = ComputeStats(algorithm="partial-cube")
        self.sizes = view_sizes(self._task, stats=self.stats)
        self._lattice = CubeLattice(self._task.dims, universe)

        if materialize is None:
            k = budget if budget is not None else len(universe) // 4
            materialize = greedy_select(self.sizes, k,
                                        dims=self._task.dims)
        self.materialized: tuple[Mask, ...] = tuple(dict.fromkeys(
            [self._lattice.core, *materialize]))

        self._views: dict[Mask, dict[tuple, list[Handle]]] = {}
        #: per-view contributing-row count per cell; what lets a delta
        #: DELETE know when a cell's underlying set became empty
        self._counts: dict[Mask, dict[tuple, int]] = {}
        #: per-view, per-cell accepted-value count per aggregate
        #: position: when a position's count hits zero under deletes the
        #: scratchpad is reset to ``start()`` -- the canonical empty
        #: handle -- so SUM over a cell whose non-NULL values all left
        #: finalizes to NULL exactly like a cold recompute
        self._accepted: dict[Mask, dict[tuple, list[int]]] = {}
        self._build()

    def _build(self) -> None:
        started = time.perf_counter()
        task = self._task
        core_mask = self._lattice.core
        core: dict[tuple, list[Handle]] = {}
        core_counts: dict[tuple, int] = {}
        core_accepted: dict[tuple, list[int]] = {}
        self.stats.base_scans += 1
        for position, row in enumerate(task.rows):
            if position % 256 == 0:
                rctx.checkpoint("partial-cube build")
            coordinate = task.coordinate(core_mask, task.dim_values(row))
            handles = core.get(coordinate)
            if handles is None:
                handles = task.new_handles(self.stats)
                core[coordinate] = handles
                core_accepted[coordinate] = [0] * task.n_aggs
            task.fold_row(handles, row, self.stats)
            core_counts[coordinate] = core_counts.get(coordinate, 0) + 1
            accepted = core_accepted[coordinate]
            for index, value in enumerate(task.agg_values(row)):
                if task.functions[index].accepts(value):
                    accepted[index] += 1
        self._views[core_mask] = core
        self._counts[core_mask] = core_counts
        self._accepted[core_mask] = core_accepted
        # materialize the chosen views coarse-from-fine
        for mask in sorted(self.materialized,
                           key=lambda m: -bin(m).count("1")):
            if mask == core_mask:
                continue
            rctx.checkpoint("partial-cube materialize")
            source_mask = _cheapest_ancestor(
                mask, set(self._views), self.sizes, self._lattice)
            self._views[mask] = self._fold_down(source_mask, mask)
            counts: dict[tuple, int] = {}
            accepted_view: dict[tuple, list[int]] = {}
            for coordinate, count in self._counts[source_mask].items():
                target = task.coordinate(mask, coordinate)
                counts[target] = counts.get(target, 0) + count
                sums = accepted_view.setdefault(target, [0] * task.n_aggs)
                for index, n in enumerate(
                        self._accepted[source_mask][coordinate]):
                    sums[index] += n
            self._counts[mask] = counts
            self._accepted[mask] = accepted_view
        self.stats.cells_produced = self.materialized_rows
        # a partial-cube build is a cube computation: meter it like one,
        # so cold builds and warm answers land in the same catalogue
        # (repro_cube_rows_scanned_total vs repro_view_rows_scanned_total)
        instrument.record_cube_compute(
            self.stats, time.perf_counter() - started,
            input_rows=len(task.rows))

    def _fold_down(self, source_mask: Mask,
                   target_mask: Mask) -> dict[tuple, list[Handle]]:
        task = self._task
        out: dict[tuple, list[Handle]] = {}
        for coordinate, handles in self._views[source_mask].items():
            target_coord = task.coordinate(target_mask, coordinate)
            target = out.get(target_coord)
            if target is None:
                target = task.new_handles(self.stats)
                out[target_coord] = target
            task.merge_handles(target, handles, self.stats)
        return out

    @property
    def materialized_rows(self) -> int:
        """Total stored cells -- the space cost of the selection."""
        return sum(len(view) for view in self._views.values())

    # -- streaming maintenance (Section 6) ---------------------------------

    def _to_task_row(self, row: tuple) -> tuple:
        """Evaluate one raw source row into a task row, exactly the way
        :func:`~repro.compute.base.build_task` did at build time."""
        context = dict(zip(self._source_names, row))
        dim_values = tuple(expr.evaluate(context)
                           for expr, _ in self._normalized)
        agg_values = tuple(spec.evaluate_input(context)
                           for spec in self._specs)
        return dim_values + agg_values

    def apply_delta(self, inserts: Sequence[tuple] = (),
                    deletes: Sequence[tuple] = ()) -> int:
        """Fold a batch of raw source rows into every materialized view.

        This is Section 6 maintenance applied to the HRU selection:
        INSERTs are O(1) ``Iter`` folds per (view, cell) -- distributive
        and algebraic scratchpads absorb new rows without rescanning --
        and DELETEs are ``unapply`` calls where the function supports
        them.  A delete that hits a delete-holistic scratchpad (the
        departing value *is* the MIN/MAX extreme, the paper's "MAX is
        distributive for INSERT but holistic for DELETE") raises
        :class:`~repro.errors.DeltaRequiresInvalidationError` **before
        any state changed**: deletes are staged against copies and only
        committed once every unapply succeeded, so the caller (the serve
        cache) can fall back to invalidation on a still-consistent cube.

        Returns the number of cells touched across all views.
        """
        task = self._task
        if not inserts and not deletes:
            return 0
        for fn in task.functions:
            if not fn.delta_exact:
                # order-sensitive scratchpads (approximate sketches)
                # would merge to a value a cold rebuild never produces
                raise DeltaRequiresInvalidationError(
                    f"{fn.name or type(fn).__name__} is not delta-exact: "
                    "folding a delta cannot reproduce a cold recompute "
                    "bit-for-bit")
        delta_in = [self._to_task_row(row) for row in inserts]
        delta_out = [self._to_task_row(row) for row in deletes]

        # -- stage deletes (fallible) without mutating anything --------
        # Outgoing rows are grouped per (view, cell) first: a cell whose
        # underlying set empties entirely is simply dropped -- exactly
        # what a cold recompute would produce -- so unapply only has to
        # succeed for cells that survive with rows remaining.
        out_by_cell: dict[tuple[Mask, tuple], list[tuple]] = {}
        for row in delta_out:
            dim_values = task.dim_values(row)
            for mask in self._views:
                key = (mask, task.coordinate(mask, dim_values))
                out_by_cell.setdefault(key, []).append(row)
        staged: dict[tuple[Mask, tuple],
                     tuple[list[Handle], list[int]]] = {}
        emptied: list[tuple[Mask, tuple]] = []
        for (mask, coordinate), rows in out_by_cell.items():
            current = self._views[mask].get(coordinate)
            count = self._counts[mask].get(coordinate, 0)
            if current is None or count < len(rows):
                raise DeltaRequiresInvalidationError(
                    "delta deletes more rows than this cuboid's cell "
                    "holds; the delta cannot be consistent with it")
            if count == len(rows):
                emptied.append((mask, coordinate))
                continue
            handles = list(current)
            accepted = list(self._accepted[mask][coordinate])
            for position, fn in enumerate(task.functions):
                removed = [values[position] for row in rows
                           if fn.accepts(
                               (values := task.agg_values(row))[position])]
                if not removed:
                    continue
                if accepted[position] < len(removed):
                    raise DeltaRequiresInvalidationError(
                        "delta deletes more accepted values than this "
                        "cuboid's cell folded; it cannot be consistent")
                accepted[position] -= len(removed)
                if accepted[position] == 0:
                    # the position's underlying value set emptied: the
                    # canonical empty scratchpad is bit-identical to a
                    # cold recompute (SUM -> NULL, not 0)
                    handles[position] = fn.start()
                    continue
                for value in removed:
                    if isinstance(value, float) and math.isnan(value):
                        # IEEE NaN arithmetic is not invertible
                        # (NaN - NaN != 0): no scratchpad subtraction
                        # can recover the pre-NaN state
                        raise DeltaRequiresInvalidationError(
                            f"{fn.name} cannot unapply a NaN value; "
                            "the cell needs a recompute")
                    handle, supported = fn.unapply(
                        handles[position], value)
                    if not supported:
                        raise DeltaRequiresInvalidationError(
                            f"{fn.name} is delete-holistic at this "
                            "value (Section 6); the cell needs a "
                            "recompute")
                    handles[position] = handle
                    self.stats.iter_calls += 1
            staged[(mask, coordinate)] = (handles, accepted)

        # -- commit: deletes first, then infallible insert folds -------
        touched = set(out_by_cell)
        for mask, coordinate in emptied:
            del self._views[mask][coordinate]
            del self._counts[mask][coordinate]
            del self._accepted[mask][coordinate]
        for (mask, coordinate), (handles, accepted) in staged.items():
            self._views[mask][coordinate] = handles
            self._accepted[mask][coordinate] = accepted
            self._counts[mask][coordinate] -= len(
                out_by_cell[(mask, coordinate)])
        for row in delta_in:
            dim_values = task.dim_values(row)
            agg_values = task.agg_values(row)
            for mask, view in self._views.items():
                coordinate = task.coordinate(mask, dim_values)
                handles = view.get(coordinate)
                if handles is None:
                    handles = task.new_handles(self.stats)
                    view[coordinate] = handles
                    self._accepted[mask][coordinate] = [0] * task.n_aggs
                task.fold_row(handles, row, self.stats)
                counts = self._counts[mask]
                counts[coordinate] = counts.get(coordinate, 0) + 1
                accepted = self._accepted[mask][coordinate]
                for position, fn in enumerate(task.functions):
                    if fn.accepts(agg_values[position]):
                        accepted[position] += 1
                touched.add((mask, coordinate))

        # keep the row set and the planner's size estimates honest
        for row in delta_out:
            try:
                task.rows.remove(row)
            except ValueError:
                pass  # trimmed/sampled row sets still answer correctly
        task.rows.extend(delta_in)
        for mask, view in self._views.items():
            self.sizes[mask] = max(1, len(view))
        if hasattr(task, "_view_sizes_memo"):
            del task._view_sizes_memo
        self.stats.cells_produced = self.materialized_rows
        return len(touched)

    def query(self, grouped: Sequence[str]) -> Table:
        """Answer one grouping-set query (grouped column names)."""
        from repro.core.grouping import names_to_mask
        mask = names_to_mask(grouped, self._task.dims)
        return self.answer(mask)

    def query_cost(self, grouped: Sequence[str]) -> int:
        """Rows of the materialized ancestor a query must scan."""
        from repro.core.grouping import names_to_mask
        mask = names_to_mask(grouped, self._task.dims)
        source = _cheapest_ancestor(mask, set(self._views), self.sizes,
                                    self._lattice)
        return len(self._views[source])

    def answer(self, mask: Mask) -> Table:
        """Answer one grouping-set query given as a mask over the
        cube's dimensions."""
        table, _ = self.answer_with_cost(mask)
        return table

    def answer_with_cost(self, mask: Mask) -> tuple[Table, int]:
        """Answer ``mask`` and report the rows of materialized data
        scanned to do it.

        The ancestor-answering path is traced (``view.answer`` spans,
        visible in EXPLAIN ANALYZE when a query is served from the
        cuboid cache) and metered
        (``repro_view_rows_scanned_total``), so reuse is as observable
        as a cold computation.
        """
        task = self._task
        materialized = mask in self._views
        with trace.span("view.answer",
                        grouping_set=task.mask_label(mask),
                        materialized=materialized) as span:
            if materialized:
                source_mask = mask
                scanned = len(self._views[mask])
                cells = [(coordinate,
                          task.finalize(list(handles), self.stats))
                         for coordinate, handles
                         in self._views[mask].items()]
            else:
                source_mask = _cheapest_ancestor(
                    mask, set(self._views), self.sizes, self._lattice)
                scanned = len(self._views[source_mask])
                folded = self._fold_down(source_mask, mask)
                cells = [(coordinate, task.finalize(handles, self.stats))
                         for coordinate, handles in folded.items()]
            span.set(source=task.mask_label(source_mask),
                     rows_scanned=scanned, cells=len(cells))
        instrument.record_view_answer(scanned)
        return task.result_table(cells), scanned

    def _answer(self, mask: Mask) -> Table:
        return self.answer(mask)

    def describe(self) -> str:
        names = [" ".join(mask_to_names(m, self._task.dims)) or "(total)"
                 for m in self.materialized]
        return (f"PartialCube[{len(self.materialized)}/"
                f"{len(self.sizes)} views: {', '.join(names)}; "
                f"{self.materialized_rows} cells]")
