"""Materializing a *subset* of the cube: greedy view selection.

Section 6 points at Harinarayan, Rajaraman, and Ullman's "Implementing
Data Cubes Efficiently" (SIGMOD 1996) for "pre-computing sub-cubes of
the cube".  This module implements that idea on our lattice:

- :func:`view_sizes` measures the exact row count of every grouping set
  (the "view") of a fact table;
- :func:`greedy_select` is the HRU greedy algorithm: starting from the
  core (always materialized -- it is the finest view and every query
  can be answered from it), repeatedly materialize the view with the
  largest *benefit*, where the benefit of view ``w`` is the total
  row-count saving it brings to every view that would now be computed
  from ``w`` instead of its current cheapest materialized ancestor;
- :class:`PartialCube` materializes the selected views and answers any
  grouping-set query from the smallest materialized ancestor, counting
  the rows scanned so benchmarks can compare selection policies.

Works for distributive and algebraic aggregates (answering from an
ancestor is an Iter_super fold); holistic functions would need the base
data, which is exactly the HRU paper's assumption the Gray et al. text
questions ("assuming all functions are holistic ... our view is that
users avoid holistic functions").
"""

from __future__ import annotations

from typing import Sequence

from repro.aggregates.base import Handle
from repro.compute.base import CubeTask, build_task
from repro.compute.stats import ComputeStats
from repro.core.grouping import Mask, cube_sets, mask_to_names
from repro.core.lattice import CubeLattice
from repro.engine.groupby import AggregateSpec
from repro.engine.table import Table
from repro.errors import CubeError, NotMergeableError

__all__ = ["view_sizes", "greedy_select", "PartialCube"]


def view_sizes(task: CubeTask) -> dict[Mask, int]:
    """Exact row count of every grouping set in ``task.masks``.

    One scan per level would do; for simplicity (these are planning
    statistics) we count distinct coordinates per mask in one pass.
    """
    seen: dict[Mask, set] = {mask: set() for mask in task.masks}
    for row in task.rows:
        dim_values = task.dim_values(row)
        for mask in task.masks:
            seen[mask].add(task.coordinate(mask, dim_values))
    return {mask: max(1, len(coords)) for mask, coords in seen.items()}


def _cheapest_ancestor(mask: Mask, materialized: set[Mask],
                       sizes: dict[Mask, int],
                       lattice: CubeLattice) -> Mask:
    """The smallest materialized view a query on ``mask`` can use."""
    candidates = [m for m in materialized
                  if (m & mask) == mask]  # m is finer or equal
    if not candidates:
        raise CubeError(f"no materialized ancestor for mask {mask:#b}")
    return min(candidates, key=lambda m: (sizes[m], m))


def greedy_select(sizes: dict[Mask, int], k: int, *,
                  dims: Sequence[str]) -> list[Mask]:
    """HRU greedy: pick ``k`` views beyond the core.

    Returns the materialized set (core first).  Benefit of view ``w``:
    for every view ``u`` that ``w`` can answer (``u`` coarser-or-equal),
    the saving ``max(0, cost(u) - size(w))`` where ``cost(u)`` is the
    size of u's current cheapest materialized ancestor.
    """
    lattice = CubeLattice(dims, list(sizes))
    core = lattice.core
    materialized: list[Mask] = [core]
    chosen = set(materialized)

    for _ in range(k):
        best_view: Mask | None = None
        best_benefit = 0
        for candidate in sizes:
            if candidate in chosen:
                continue
            benefit = 0
            for target in sizes:
                if (candidate & target) != target:
                    continue  # candidate cannot answer target
                current = _cheapest_ancestor(target, chosen, sizes,
                                             lattice)
                saving = sizes[current] - sizes[candidate]
                if saving > 0:
                    benefit += saving
            if benefit > best_benefit or (benefit == best_benefit
                                          and benefit > 0
                                          and best_view is not None
                                          and candidate < best_view):
                best_benefit = benefit
                best_view = candidate
        if best_view is None:
            break  # no remaining view helps
        chosen.add(best_view)
        materialized.append(best_view)
    return materialized


class PartialCube:
    """A cube materialized only at selected grouping sets.

    Queries for *any* grouping set are answered by folding the smallest
    materialized ancestor (Iter_super), the HRU execution model.
    ``stats.iter_calls`` counts base-row folds, ``stats.merge_calls``
    the ancestor-cell folds per query, so policies can be compared on
    work done rather than wall time alone.
    """

    def __init__(self, table: Table, dims: Sequence,
                 aggregates: Sequence[AggregateSpec], *,
                 materialize: Sequence[Mask] | None = None,
                 budget: int | None = None) -> None:
        full = cube_sets(len(list(dims)))
        self._task = build_task(table, dims, list(aggregates), full)
        if not self._task.all_mergeable():
            bad = [fn.name for fn in self._task.functions
                   if not fn.mergeable]
            raise NotMergeableError(
                f"partial cubes need mergeable scratchpads; {bad} are "
                "holistic in strict mode")
        self.sizes = view_sizes(self._task)
        self._lattice = CubeLattice(self._task.dims, full)

        if materialize is None:
            k = budget if budget is not None else len(full) // 4
            materialize = greedy_select(self.sizes, k,
                                        dims=self._task.dims)
        self.materialized: tuple[Mask, ...] = tuple(dict.fromkeys(
            [self._lattice.core, *materialize]))

        self.stats = ComputeStats(algorithm="partial-cube")
        self._views: dict[Mask, dict[tuple, list[Handle]]] = {}
        self._build()

    def _build(self) -> None:
        task = self._task
        core_mask = self._lattice.core
        core: dict[tuple, list[Handle]] = {}
        self.stats.base_scans = 1
        for row in task.rows:
            coordinate = task.coordinate(core_mask, task.dim_values(row))
            handles = core.get(coordinate)
            if handles is None:
                handles = task.new_handles(self.stats)
                core[coordinate] = handles
            task.fold_row(handles, row, self.stats)
        self._views[core_mask] = core
        # materialize the chosen views coarse-from-fine
        for mask in sorted(self.materialized,
                           key=lambda m: -bin(m).count("1")):
            if mask == core_mask:
                continue
            source_mask = _cheapest_ancestor(
                mask, set(self._views), self.sizes, self._lattice)
            self._views[mask] = self._fold_down(source_mask, mask)

    def _fold_down(self, source_mask: Mask,
                   target_mask: Mask) -> dict[tuple, list[Handle]]:
        task = self._task
        out: dict[tuple, list[Handle]] = {}
        for coordinate, handles in self._views[source_mask].items():
            target_coord = task.coordinate(target_mask, coordinate)
            target = out.get(target_coord)
            if target is None:
                target = task.new_handles(self.stats)
                out[target_coord] = target
            task.merge_handles(target, handles, self.stats)
        return out

    @property
    def materialized_rows(self) -> int:
        """Total stored cells -- the space cost of the selection."""
        return sum(len(view) for view in self._views.values())

    def query(self, grouped: Sequence[str]) -> Table:
        """Answer one grouping-set query (grouped column names)."""
        from repro.core.grouping import names_to_mask
        mask = names_to_mask(grouped, self._task.dims)
        return self._answer(mask)

    def query_cost(self, grouped: Sequence[str]) -> int:
        """Rows of the materialized ancestor a query must scan."""
        from repro.core.grouping import names_to_mask
        mask = names_to_mask(grouped, self._task.dims)
        source = _cheapest_ancestor(mask, set(self._views), self.sizes,
                                    self._lattice)
        return len(self._views[source])

    def _answer(self, mask: Mask) -> Table:
        task = self._task
        if mask in self._views:
            cells = [(coordinate, task.finalize(list(handles), self.stats))
                     for coordinate, handles in self._views[mask].items()]
            return task.result_table(cells)
        source_mask = _cheapest_ancestor(mask, set(self._views),
                                         self.sizes, self._lattice)
        folded = self._fold_down(source_mask, mask)
        cells = [(coordinate, task.finalize(handles, self.stats))
                 for coordinate, handles in folded.items()]
        return task.result_table(cells)

    def describe(self) -> str:
        names = [" ".join(mask_to_names(m, self._task.dims)) or "(total)"
                 for m in self.materialized]
        return (f"PartialCube[{len(self.materialized)}/"
                f"{len(self.sizes)} views: {', '.join(names)}; "
                f"{self.materialized_rows} cells]")
