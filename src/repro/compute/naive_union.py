"""The naive union algorithm (the Section 2 strawman).

"A six dimension cross-tab requires a 64-way union of 64 different
GROUP BY operators to build the underlying representation.  On most SQL
systems this will result in 64 scans of the data, 64 sorts or hashes,
and a long wait."

This algorithm does exactly that: one independent hash GROUP BY per
grouping set, each scanning the base data, results unioned.  It exists
as the correctness baseline and so benchmarks can measure the cost the
CUBE operator saves (``base_scans == 2^N`` here vs 1 for the single-pass
algorithms).
"""

from __future__ import annotations

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.obs import trace
from repro.resilience import context as rctx

__all__ = ["NaiveUnionAlgorithm"]


class NaiveUnionAlgorithm(CubeAlgorithm):
    name = "naive-union"

    def _compute(self, task: CubeTask) -> CubeResult:
        stats = self._new_stats()
        cells: list[tuple[tuple, tuple]] = []

        for mask in task.masks:
            rctx.checkpoint("naive-union grouping set")
            with trace.span("cube.groupby", dims=task.mask_label(mask),
                            rows=len(task.rows)) as span:
                stats.base_scans += 1  # each GROUP BY re-scans the base
                groups: dict[tuple, list[Handle]] = {}
                if mask == 0:
                    # the (ALL, ALL, ..., ALL) global aggregate: one
                    # group even over empty input, like GROUP BY ()
                    groups[task.coordinate(0, ())] = task.new_handles(stats)
                for position, row in enumerate(task.rows):
                    if position & 255 == 0:
                        rctx.checkpoint("naive-union scan")
                    coordinate = task.coordinate(mask, task.dim_values(row))
                    handles = groups.get(coordinate)
                    if handles is None:
                        handles = task.new_handles(stats)
                        groups[coordinate] = handles
                    task.fold_row(handles, row, stats)
                stats.observe_resident(len(groups))
                span.set(cells=len(groups))
                for coordinate, handles in groups.items():
                    cells.append((coordinate, task.finalize(handles, stats)))
                rctx.release_cells(len(groups))

        stats.cells_produced = len(cells)
        return CubeResult(table=task.result_table(cells), stats=stats)
