"""Memory-bounded (external) cube computation (Section 5).

"If the data cube does not fit into memory, array techniques do not
work.  Rather one must either partition the cube with a hash function
or sort it. [...] The super-aggregates are likely to be orders of
magnitude smaller than the core, so they are very likely to fit in
memory."

Hybrid-hash strategy:

1. **Partition pass** -- hash every input row on its full dimension key
   into P partitions, where P is chosen so one partition's core fits
   the declared ``memory_budget`` (in scratchpads).  Rows with equal
   keys always land in the same partition, so the partition cores are
   disjoint and their union *is* the global core.  When more than one
   partition is needed, each partition is pickled and written to a real
   on-disk spill file -- a :class:`~repro.storage.PageFile` in a
   private temporary directory -- and its in-memory rows are released.
2. **Per-partition pass** -- each partition is read back alone and its
   core GROUP BY computed in memory; finished core cells are streamed
   out (finalized later), and their scratchpads are merged upward into
   the resident super-aggregate cells, which -- per the paper's
   observation -- stay in memory for the whole run.

Spill files are scratch data: never fsynced (losing one loses nothing
a re-run cannot recompute) and always deleted in a ``finally`` -- on
success, on error, and on cancellation alike.  The ``spill_write``
chaos point therefore exercises actual disk I/O, and a chaos injector
on the execution context also reaches the page layer itself
(``torn_write`` on the spill file's frames).

``spills`` counts partitions written out; ``passes`` is 2 (write +
read); ``max_resident_cells`` demonstrates the memory bound holds.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from typing import Optional

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.core.grouping import Mask
from repro.core.lattice import CubeLattice
from repro.errors import CubeError, NotMergeableError
from repro.obs import trace
from repro.resilience import context as rctx
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.storage import PageFile

__all__ = ["ExternalCubeAlgorithm"]


class ExternalCubeAlgorithm(CubeAlgorithm):
    name = "external"

    def __init__(self, memory_budget: int = 1024) -> None:
        if memory_budget < 1:
            raise CubeError("memory_budget must be at least 1 cell")
        self.memory_budget = memory_budget

    def _compute(self, task: CubeTask) -> CubeResult:
        # The external algorithm bounds its own residency (that is its
        # whole point), so the context accountant observes but never
        # enforces here -- otherwise a context budget equal to ours
        # would fail the exact algorithm meant to honor it.
        ctx = rctx.current_context()
        if ctx is None:
            return self._compute_inner(task)
        with ctx.budget_suspended():
            return self._compute_inner(task)

    def _compute_inner(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"external cube needs mergeable scratchpads; {bad} are "
                "holistic in strict mode")
        stats = self._new_stats()
        lattice = CubeLattice(task.dims, task.masks)
        core_mask = lattice.core
        super_masks = [m for m in task.masks if m != core_mask]

        spill: Optional[PageFile] = None
        spill_dir: Optional[str] = None
        spill_heads: list[int] = []
        try:
            # -- pass 1: hash-partition on the full dimension key ----------
            with trace.span("cube.partition_pass", rows=len(task.rows),
                            memory_budget=self.memory_budget) as pass_span:
                stats.base_scans = 1
                stats.passes = 1
                core_keys = {task.coordinate(core_mask, task.dim_values(r))
                             for r in task.rows}
                estimated_core = max(1, len(core_keys))
                n_partitions = max(
                    1, -(-estimated_core // self.memory_budget))
                partitions: list[list[tuple]] = [
                    [] for _ in range(n_partitions)]
                for row in task.rows:
                    key = task.coordinate(core_mask, task.dim_values(row))
                    partitions[hash(key) % n_partitions].append(row)
                stats.partitions = n_partitions
                stats.spills = n_partitions if n_partitions > 1 else 0
                pass_span.set(partitions=n_partitions, spills=stats.spills)
                if n_partitions > 1:
                    ctx = rctx.current_context()
                    policy = ctx.retry if ctx is not None else RetryPolicy()
                    spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
                    spill = PageFile(
                        os.path.join(spill_dir, "spill.pages"),
                        kind="spill",
                        chaos=ctx.chaos if ctx is not None else None)
                    with trace.span("storage.spill",
                                    partitions=n_partitions) as spill_span:
                        spilled_bytes = 0
                        for index in range(n_partitions):
                            payload = pickle.dumps(partitions[index],
                                                   protocol=4)
                            spilled_bytes += len(payload)
                            spill_heads.append(self._write_spill(
                                spill, spill_span, index, payload,
                                len(partitions[index]), policy))
                            partitions[index] = []  # rows now live on disk
                        spill_span.set(bytes=spilled_bytes,
                                       pages=spill.n_pages)
                        stats.notes["spilled_bytes"] = spilled_bytes

            # resident super-aggregate cells (stay in memory throughout)
            supers: dict[Mask, dict[tuple, list[Handle]]] = {
                mask: {} for mask in super_masks}

            cells: list[tuple[tuple, tuple]] = []
            max_resident = 0
            # -- pass 2: one partition at a time ---------------------------
            stats.passes += 1
            for index in range(n_partitions):
                rctx.checkpoint("external partition")
                if spill is not None:
                    partition = pickle.loads(
                        spill.read_blob(spill_heads[index]))
                else:
                    partition = partitions[index]
                with trace.span("cube.partition", index=index,
                                rows=len(partition),
                                spilled=spill is not None) as span:
                    core_cells: dict[tuple, list[Handle]] = {}
                    for row in partition:
                        coordinate = task.coordinate(core_mask,
                                                     task.dim_values(row))
                        handles = core_cells.get(coordinate)
                        if handles is None:
                            handles = task.new_handles(stats)
                            core_cells[coordinate] = handles
                        task.fold_row(handles, row, stats)

                    resident = (len(core_cells)
                                + sum(len(c) for c in supers.values()))
                    max_resident = max(max_resident, resident)
                    span.set(core_cells=len(core_cells), resident=resident)

                    # fold this partition's core into the resident supers,
                    # walking each core cell straight to every requested
                    # super-aggregate
                    for coordinate, handles in core_cells.items():
                        for mask in super_masks:
                            super_coord = task.coordinate(mask, coordinate)
                            super_handles = supers[mask].get(super_coord)
                            if super_handles is None:
                                super_handles = task.new_handles(stats)
                                supers[mask][super_coord] = super_handles
                            task.merge_handles(super_handles, handles,
                                               stats)
                        # the core cell is complete: finalize and evict
                        cells.append((coordinate,
                                      task.finalize(handles, stats)))
                    rctx.release_cells(len(core_cells))
        finally:
            # scratch spill state never outlives the computation --
            # success, error, and cancellation all land here
            if spill is not None:
                spill.close()
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)

        if 0 in task.masks and not task.rows:
            target = supers.get(0)
            if target is not None and not target:
                target[task.coordinate(0, ())] = task.new_handles(stats)
            elif core_mask == 0 and not cells:
                cells.append((task.coordinate(0, ()),
                              task.finalize(task.new_handles(stats), stats)))

        for mask in super_masks:
            for coordinate, handles in supers[mask].items():
                cells.append((coordinate, task.finalize(handles, stats)))
        rctx.release_cells(sum(len(c) for c in supers.values()))

        stats.observe_resident(max_resident)
        stats.cells_produced = len(cells)
        stats.notes["memory_budget"] = self.memory_budget
        return CubeResult(table=task.result_table(cells), stats=stats)

    @staticmethod
    def _write_spill(spill: PageFile, spill_span, index: int,
                     payload: bytes, n_rows: int,
                     policy: RetryPolicy) -> int:
        """Write one partition's pickled rows to the spill file,
        retrying injected write failures (the ``spill_write`` chaos
        point and the page layer's own ``torn_write``) with bounded
        backoff; returns the blob's head page id.  A failed attempt
        leaks its half-written pages inside the scratch file -- the
        retry stores a fresh chain, and the whole file is deleted when
        the computation ends."""
        def on_failure(attempt: int, error: BaseException) -> None:
            from repro.obs import instrument
            instrument.record_spill_retry()
            spill_span.event("spill_retry", partition=index,
                             attempt=attempt, error=str(error))

        def write(attempt: int) -> int:
            rctx.inject("spill_write", partition=index, attempt=attempt)
            head = spill.store_blob(payload)
            spill_span.event("spill", partition=index, rows=n_rows,
                             bytes=len(payload), head=head)
            return head

        return call_with_retry(write, policy=policy, on_failure=on_failure)
