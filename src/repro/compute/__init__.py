"""Cube computation algorithms (Section 5 of the paper).

Every algorithm consumes a :class:`~repro.compute.base.CubeTask` and
produces the identical bag of result rows (cross-checked by the
property-based tests) while reporting machine-independent cost counters
(:class:`~repro.compute.stats.ComputeStats`) so the paper's cost claims
can be verified exactly:

- :class:`NaiveUnionAlgorithm` -- one GROUP BY per grouping set,
  unioned; 2^N scans of the base data (the Section 2 strawman).
- :class:`TwoNAlgorithm` -- the paper's "2^N-algorithm": one scan, each
  input tuple applied to every matching cell; T x 2^N Iter() calls.
- :class:`FromCoreAlgorithm` -- compute the core GROUP BY once, then
  derive each super-aggregate from its *smallest parent* by merging
  scratchpads (Iter_super); needs mergeable (distributive/algebraic)
  functions.
- :class:`ArrayCubeAlgorithm` -- dense N-dimensional numpy array for
  distributive functions over enumerable dimensions, projecting one
  dimension at a time, smallest first.
- :class:`SortCubeAlgorithm` -- sort-based: covers the cube lattice
  with rollup *chains* (symmetric chain decomposition), one sort per
  chain, pipelined prefix aggregation.
- :class:`ExternalCubeAlgorithm` -- memory-bounded hybrid-hash
  partitioning: partition the input, cube each partition's core, merge;
  super-aggregates stay in memory as the paper observes they fit.
- :class:`ParallelCubeAlgorithm` -- partition-parallel local cubes
  combined with Iter_super, the parallel-database pattern of Section 5.
- :class:`ColumnarCubeAlgorithm` -- vectorized columnar backend: typed
  column batches, dictionary-encoded dimensions, fused grouped kernels
  (numpy when available, pure python otherwise); holistic functions
  and UDAFs transparently stay on the row path.
"""

from repro.compute.stats import ComputeStats
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask, build_task
from repro.compute.naive_union import NaiveUnionAlgorithm
from repro.compute.twon import TwoNAlgorithm
from repro.compute.from_core import FromCoreAlgorithm
from repro.compute.array_cube import ArrayCubeAlgorithm
from repro.compute.sort_cube import SortCubeAlgorithm
from repro.compute.external import ExternalCubeAlgorithm
from repro.compute.parallel import ParallelCubeAlgorithm
from repro.compute.pipesort import PipeSortAlgorithm
from repro.compute.columnar import ColumnarCubeAlgorithm
from repro.compute.optimizer import choose_algorithm, ALGORITHMS
from repro.compute.view_selection import (
    PartialCube,
    greedy_select,
    view_sizes,
)

__all__ = [
    "ALGORITHMS",
    "ArrayCubeAlgorithm",
    "ColumnarCubeAlgorithm",
    "ComputeStats",
    "CubeAlgorithm",
    "CubeResult",
    "CubeTask",
    "ExternalCubeAlgorithm",
    "FromCoreAlgorithm",
    "NaiveUnionAlgorithm",
    "ParallelCubeAlgorithm",
    "PartialCube",
    "PipeSortAlgorithm",
    "SortCubeAlgorithm",
    "TwoNAlgorithm",
    "build_task",
    "choose_algorithm",
    "greedy_select",
    "view_sizes",
]
