"""Computing the cube from the core GROUP BY (Section 5).

"It is often faster to compute the super-aggregates from the core GROUP
BY, reducing the number of calls by approximately a factor of T."

One scan computes the core (the finest grouping set) keeping live
scratchpads.  The remaining grouping sets are then computed level by
level down the lattice: each node picks its **smallest parent** -- "the
algorithm will be most efficient if it aggregates the smaller of the
two; pick the * with the smallest Ci" -- and folds the parent's
scratchpads into its own with ``merge`` (the paper's ``Iter_super``).

Requires mergeable functions (distributive or algebraic; or holistic in
carrying mode, at unbounded scratchpad cost -- which the benchmarks use
to *show* why the paper declares holistic functions hopeless here).
"""

from __future__ import annotations

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.core.grouping import Mask
from repro.core.lattice import CubeLattice
from repro.errors import NotMergeableError
from repro.obs import trace
from repro.resilience import context as rctx

__all__ = ["FromCoreAlgorithm"]


class FromCoreAlgorithm(CubeAlgorithm):
    """``parent_choice`` ablates the smallest-parent rule:

    - ``"smallest"`` (default): the paper's rule -- merge from the
      parent with the fewest cells;
    - ``"first"``: a fixed arbitrary parent (lowest mask), what a naive
      implementation would do.  The ablation bench measures the merge
      work the rule saves.
    """

    name = "from-core"

    def __init__(self, parent_choice: str = "smallest") -> None:
        if parent_choice not in ("smallest", "first"):
            raise ValueError(
                f"parent_choice must be smallest|first, got {parent_choice!r}")
        self.parent_choice = parent_choice

    def _compute(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"from-core needs mergeable scratchpads; {bad} are holistic "
                "in strict mode -- use the 2^N-algorithm (Section 5)")
        stats = self._new_stats()
        lattice = CubeLattice(task.dims, task.masks)
        core_mask = lattice.core

        # -- pass 1: the core GROUP BY, scratchpads kept live --------------
        nodes: dict[Mask, dict[tuple, list[Handle]]] = {core_mask: {}}
        core_cells = nodes[core_mask]
        with trace.span("cube.node", dims=task.mask_label(core_mask),
                        role="core", rows=len(task.rows)) as span:
            stats.base_scans = 1
            for position, row in enumerate(task.rows):
                if position & 255 == 0:
                    rctx.checkpoint("from-core core scan")
                coordinate = task.coordinate(core_mask, task.dim_values(row))
                handles = core_cells.get(coordinate)
                if handles is None:
                    handles = task.new_handles(stats)
                    core_cells[coordinate] = handles
                task.fold_row(handles, row, stats)
            span.set(cells=len(core_cells))

        # -- pass 2: walk the lattice, smallest parent first ----------------
        for level_masks in lattice.by_level_descending():
            for mask in level_masks:
                if mask == core_mask:
                    continue
                rctx.checkpoint("from-core lattice node")
                parent = self._smallest_computed_parent(lattice, mask, nodes)
                with trace.span("cube.node", dims=task.mask_label(mask),
                                parent_node=task.mask_label(parent),
                                parent_cells=len(nodes[parent])) as span:
                    cells: dict[tuple, list[Handle]] = {}
                    nodes[mask] = cells
                    if mask == 0 and not task.rows:
                        # empty input still yields one global-total cell
                        cells[task.coordinate(0, ())] = task.new_handles(stats)
                    for parent_coord, parent_handles in nodes[parent].items():
                        coordinate = self._project(parent_coord, mask, task)
                        handles = cells.get(coordinate)
                        if handles is None:
                            handles = task.new_handles(stats)
                            cells[coordinate] = handles
                        task.merge_handles(handles, parent_handles, stats)
                    span.set(cells=len(cells))
        if 0 in task.masks and not task.rows and 0 == core_mask:
            core_cells[task.coordinate(0, ())] = task.new_handles(stats)

        stats.observe_resident(sum(len(c) for c in nodes.values()))

        finalized = []
        for mask in task.masks:
            for coordinate, handles in nodes[mask].items():
                finalized.append((coordinate, task.finalize(handles, stats)))
        rctx.release_cells(sum(len(c) for c in nodes.values()))
        stats.cells_produced = len(finalized)
        return CubeResult(table=task.result_table(finalized), stats=stats)

    def _smallest_computed_parent(
            self, lattice: CubeLattice, mask: Mask,
            nodes: dict[Mask, dict]) -> Mask:
        """The already-computed parent with the fewest actual cells.

        Uses measured parent sizes rather than estimates: by the time a
        node is processed, every parent one level up is computed, so the
        "smallest Ci" rule can use exact counts.  With
        ``parent_choice="first"`` the rule is ablated and the lowest-
        mask parent is used regardless of size.
        """
        candidates = [m for m in lattice.parents(mask) if m in nodes]
        if not candidates:
            raise NotMergeableError(
                f"grouping set {mask:#b} has no computed parent; "
                "the task's grouping sets do not form a connected lattice")
        if self.parent_choice == "first":
            return min(candidates)
        return min(candidates, key=lambda m: (len(nodes[m]), m))

    @staticmethod
    def _project(parent_coord: tuple, child_mask: Mask,
                 task: CubeTask) -> tuple:
        """Project a parent coordinate onto a coarser grouping set: kept
        dimensions retain their value, dropped ones become ALL."""
        return task.coordinate(child_mask, parent_coord)
