"""Computing the cube from the core GROUP BY (Section 5).

"It is often faster to compute the super-aggregates from the core GROUP
BY, reducing the number of calls by approximately a factor of T."

One scan computes the core (the finest grouping set) keeping live
scratchpads.  The remaining grouping sets are then computed level by
level down the lattice: each node picks its **smallest parent** -- "the
algorithm will be most efficient if it aggregates the smaller of the
two; pick the * with the smallest Ci" -- and folds the parent's
scratchpads into its own with ``merge`` (the paper's ``Iter_super``).

Requires mergeable functions (distributive or algebraic; or holistic in
carrying mode, at unbounded scratchpad cost -- which the benchmarks use
to *show* why the paper declares holistic functions hopeless here).

The super-aggregate walk (pass 2) is exposed as module-level functions
(:func:`fold_super_aggregates`, :func:`finalize_nodes`) because it is
shared: the columnar backend computes the core with vectorized kernels
and then reuses exactly this fold, which is what makes its sparse-path
results bit-identical to ``from-core`` by construction.
"""

from __future__ import annotations

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.compute.stats import ComputeStats
from repro.core.grouping import Mask
from repro.core.lattice import CubeLattice
from repro.errors import NotMergeableError
from repro.obs import trace
from repro.resilience import context as rctx

__all__ = ["FromCoreAlgorithm", "finalize_nodes", "fold_super_aggregates"]

#: One cell store per grouping set: coordinate -> live scratchpads.
Nodes = "dict[Mask, dict[tuple, list[Handle]]]"


def _smallest_computed_parent(lattice: CubeLattice, mask: Mask,
                              nodes: dict, parent_choice: str) -> Mask:
    """The already-computed parent with the fewest actual cells.

    Uses measured parent sizes rather than estimates: by the time a
    node is processed, every parent one level up is computed, so the
    "smallest Ci" rule can use exact counts.  With
    ``parent_choice="first"`` the rule is ablated and the lowest-mask
    parent is used regardless of size.
    """
    candidates = [m for m in lattice.parents(mask) if m in nodes]
    if not candidates:
        raise NotMergeableError(
            f"grouping set {mask:#b} has no computed parent; "
            "the task's grouping sets do not form a connected lattice")
    if parent_choice == "first":
        return min(candidates)
    return min(candidates, key=lambda m: (len(nodes[m]), m))


def _project(parent_coord: tuple, child_mask: Mask,
             task: CubeTask) -> tuple:
    """Project a parent coordinate onto a coarser grouping set: kept
    dimensions retain their value, dropped ones become ALL."""
    return task.coordinate(child_mask, parent_coord)


def fold_super_aggregates(task: CubeTask, nodes: dict,
                          stats: ComputeStats, *,
                          parent_choice: str = "smallest") -> None:
    """Pass 2 of the from-core strategy: walk the lattice downward from
    an already-computed core, merging each node from its smallest
    computed parent (``Iter_super``).

    ``nodes`` must hold the core grouping set's cells on entry; every
    other grouping set of the task is added.  Also records the peak
    scratchpad residency.
    """
    lattice = CubeLattice(task.dims, task.masks)
    core_mask = lattice.core
    for level_masks in lattice.by_level_descending():
        for mask in level_masks:
            if mask == core_mask:
                continue
            rctx.checkpoint("from-core lattice node")
            parent = _smallest_computed_parent(lattice, mask, nodes,
                                               parent_choice)
            with trace.span("cube.node", dims=task.mask_label(mask),
                            parent_node=task.mask_label(parent),
                            parent_cells=len(nodes[parent])) as span:
                cells: dict[tuple, list[Handle]] = {}
                nodes[mask] = cells
                if mask == 0 and not task.rows:
                    # empty input still yields one global-total cell
                    cells[task.coordinate(0, ())] = task.new_handles(stats)
                for parent_coord, parent_handles in nodes[parent].items():
                    coordinate = _project(parent_coord, mask, task)
                    handles = cells.get(coordinate)
                    if handles is None:
                        handles = task.new_handles(stats)
                        cells[coordinate] = handles
                    task.merge_handles(handles, parent_handles, stats)
                span.set(cells=len(cells))
    if 0 in task.masks and not task.rows and 0 == core_mask:
        nodes[core_mask][task.coordinate(0, ())] = task.new_handles(stats)
    stats.observe_resident(sum(len(c) for c in nodes.values()))


def finalize_nodes(task: CubeTask, nodes: dict,
                   stats: ComputeStats) -> list[tuple]:
    """Final() every requested cell and release the scratchpad charge.

    Returns ``(coordinate, values)`` pairs for the task's grouping sets
    and sets ``stats.cells_produced``.
    """
    finalized = []
    for mask in task.masks:
        for coordinate, handles in nodes[mask].items():
            finalized.append((coordinate, task.finalize(handles, stats)))
    rctx.release_cells(sum(len(c) for c in nodes.values()))
    stats.cells_produced = len(finalized)
    return finalized


class FromCoreAlgorithm(CubeAlgorithm):
    """``parent_choice`` ablates the smallest-parent rule:

    - ``"smallest"`` (default): the paper's rule -- merge from the
      parent with the fewest cells;
    - ``"first"``: a fixed arbitrary parent (lowest mask), what a naive
      implementation would do.  The ablation bench measures the merge
      work the rule saves.
    """

    name = "from-core"

    def __init__(self, parent_choice: str = "smallest") -> None:
        if parent_choice not in ("smallest", "first"):
            # repro: allow-S004 -- constructor-arg validation (ValueError)
            raise ValueError(
                f"parent_choice must be smallest|first, got {parent_choice!r}")
        self.parent_choice = parent_choice

    def _compute(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"from-core needs mergeable scratchpads; {bad} are holistic "
                "in strict mode -- use the 2^N-algorithm (Section 5)")
        stats = self._new_stats()
        lattice = CubeLattice(task.dims, task.masks)
        core_mask = lattice.core

        # -- pass 1: the core GROUP BY, scratchpads kept live --------------
        nodes: dict[Mask, dict[tuple, list[Handle]]] = {core_mask: {}}
        core_cells = nodes[core_mask]
        with trace.span("cube.node", dims=task.mask_label(core_mask),
                        role="core", rows=len(task.rows)) as span:
            stats.base_scans = 1
            for position, row in enumerate(task.rows):
                if position & 255 == 0:
                    rctx.checkpoint("from-core core scan")
                coordinate = task.coordinate(core_mask, task.dim_values(row))
                handles = core_cells.get(coordinate)
                if handles is None:
                    handles = task.new_handles(stats)
                    core_cells[coordinate] = handles
                task.fold_row(handles, row, stats)
            span.set(cells=len(core_cells))

        # -- pass 2: walk the lattice, smallest parent first ----------------
        fold_super_aggregates(task, nodes, stats,
                              parent_choice=self.parent_choice)
        finalized = finalize_nodes(task, nodes, stats)
        return CubeResult(table=task.result_table(finalized), stats=stats)
