"""Common machinery for cube algorithms.

A :class:`CubeTask` is the algorithm-agnostic description of one cube
computation: the materialized input rows (dimension values first, then
one pre-evaluated input value per aggregate), the aggregate function
objects, and the grouping sets to produce (as bitmasks over the
dimension list -- see :mod:`repro.core.grouping`).

Materializing dimension expressions *before* the algorithms run keeps
every algorithm a pure exercise in Section 5's terms; computed grouping
columns (``Day(Time)``) are already plain columns by the time a task
exists.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.aggregates.base import AggregateFunction, Handle
from repro.core.grouping import Mask
from repro.compute.stats import ComputeStats
from repro.engine.groupby import AggregateSpec
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import CubeError
from repro.types import ALL, DataType

__all__ = ["CubeTask", "CubeResult", "CubeAlgorithm", "build_task"]


@dataclass
class CubeTask:
    """One cube computation, ready for any algorithm.

    ``rows`` holds tuples of ``n_dims`` dimension values followed by
    ``n_aggs`` aggregate-input values.  ``masks`` are the grouping sets
    to produce.  Aggregate-input positions corresponding to values the
    function does not accept (NULL/ALL under the Section 3.3 rule) are
    filtered at fold time, not here, so COUNT(*) still sees every row.
    """

    dims: tuple[str, ...]
    dim_columns: tuple[Column, ...]
    functions: tuple[AggregateFunction, ...]
    agg_names: tuple[str, ...]
    rows: list[tuple]
    masks: tuple[Mask, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.dim_columns):
            raise CubeError("dims and dim_columns must align")
        if len(self.functions) != len(self.agg_names):
            raise CubeError("functions and agg_names must align")
        if not self.masks:
            raise CubeError("a cube task needs at least one grouping set")
        if len(set(self.masks)) != len(self.masks):
            raise CubeError("duplicate grouping sets in task masks")
        full = (1 << len(self.dims)) - 1
        for mask in self.masks:
            if mask & ~full:
                raise CubeError(f"mask {mask:#b} outside dimension range")

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    @property
    def n_aggs(self) -> int:
        return len(self.functions)

    @property
    def full_mask(self) -> Mask:
        return (1 << self.n_dims) - 1

    def dim_values(self, row: tuple) -> tuple:
        return row[: self.n_dims]

    def agg_values(self, row: tuple) -> tuple:
        return row[self.n_dims:]

    def coordinate(self, mask: Mask, dim_values: Sequence[Any]) -> tuple:
        """Cell coordinate: grouped positions keep their value, the rest
        carry ALL -- the paper's "each coordinate can either be x_i or
        ALL"."""
        return tuple(
            dim_values[i] if mask & (1 << i) else ALL
            for i in range(self.n_dims))

    def mask_label(self, mask: Mask) -> str:
        """Human-readable grouping-set label (span attributes, EXPLAIN
        ANALYZE rows): the grouped dimension names, or ``()`` for the
        global-total set."""
        names = [self.dims[i] for i in range(self.n_dims)
                 if mask & (1 << i)]
        return ",".join(names) if names else "()"

    def cardinalities(self) -> list[int]:
        """Distinct-value count per dimension (used by the smallest-
        parent rule and by size estimates)."""
        seen: list[set] = [set() for _ in range(self.n_dims)]
        for row in self.rows:
            for i in range(self.n_dims):
                seen[i].add(row[i])
        return [len(s) for s in seen]

    def all_mergeable(self) -> bool:
        return all(fn.mergeable for fn in self.functions)

    def output_schema(self) -> Schema:
        columns = [column.with_all_allowed() for column in self.dim_columns]
        for name in self.agg_names:
            columns.append(Column(name, DataType.ANY))
        return Schema(columns)

    def result_table(
            self,
            cells: Iterable[tuple[tuple, Sequence[Any]]]) -> Table:
        """Build the output relation from (coordinate, final values)."""
        table = Table(self.output_schema())
        for coordinate, values in cells:
            table.append(coordinate + tuple(values), validate=False)
        return table

    # -- shared fold helpers -------------------------------------------------

    def new_handles(self, stats: ComputeStats) -> list[Handle]:
        from repro.resilience import context as rctx
        rctx.charge_cells(1)
        stats.start_calls += len(self.functions)
        return [fn.start() for fn in self.functions]

    def fold_row(self, handles: list[Handle], row: tuple,
                 stats: ComputeStats) -> None:
        """Apply one input row's aggregate values to a cell's handles."""
        agg_values = self.agg_values(row)
        for position, fn in enumerate(self.functions):
            value = agg_values[position]
            if fn.accepts(value):
                handles[position] = fn.next(handles[position], value)
                stats.iter_calls += 1

    def merge_handles(self, into: list[Handle], source: list[Handle],
                      stats: ComputeStats) -> None:
        """Iter_super: fold ``source`` scratchpads into ``into``."""
        for position, fn in enumerate(self.functions):
            into[position] = fn.merge(into[position], source[position])
            stats.merge_calls += 1

    def finalize(self, handles: list[Handle], stats: ComputeStats) -> tuple:
        stats.end_calls += len(self.functions)
        return tuple(fn.end(handle)
                     for fn, handle in zip(self.functions, handles))


@dataclass
class CubeResult:
    """An algorithm's output: the cube relation plus its cost counters."""

    table: Table
    stats: ComputeStats


class CubeAlgorithm(ABC):
    """Interface every cube computation strategy implements.

    :meth:`compute` is a template method: it opens a ``cube.compute``
    tracing span, delegates to the strategy's :meth:`_compute`, then
    attaches the result's :class:`ComputeStats` snapshot to the span
    and publishes the counters to the process-wide metrics registry.
    Every algorithm is therefore observable uniformly -- strategies only
    implement :meth:`_compute` (and may open child spans for their
    per-lattice-node / per-chain / per-partition structure).

    When an :class:`~repro.resilience.ExecutionContext` is supplied (or
    already active), :meth:`compute` additionally enforces the runtime
    side of the Section 5 memory economics: the strategy runs under the
    context's cell accountant, and a mid-flight
    :class:`~repro.errors.ResourceBudgetExceededError` degrades the
    computation to the memory-bounded external algorithm instead of
    failing -- provided degradation is enabled, every aggregate is
    mergeable, and the breaching algorithm is not already the external
    one.
    """

    name: str = ""

    def compute(self, task: CubeTask, *,
                context: "Any" = None) -> CubeResult:
        """Produce the cube relation for ``task`` (traced + metered).

        ``context`` is an optional
        :class:`~repro.resilience.ExecutionContext`; when omitted, any
        context already installed via
        :func:`repro.resilience.use_context` governs the run.
        """
        from repro.resilience import context as rctx
        ctx = context if context is not None else rctx.current_context()
        if ctx is None:
            result = self._instrumented_compute(task)
        else:
            result = self._compute_in_context(ctx, task)
        self._log_query(task, result)
        return result

    def _compute_in_context(self, ctx: "Any",
                            task: CubeTask) -> CubeResult:
        from repro.resilience import context as rctx
        from repro.errors import ResourceBudgetExceededError
        with rctx.use_context(ctx):
            ctx.check("cube.compute")
            try:
                with ctx.attempt():
                    return self._instrumented_compute(task)
            except ResourceBudgetExceededError:
                if (not ctx.degrade or not task.all_mergeable()
                        or self.name == "external"):
                    raise
            return self._degraded_compute(ctx, task)

    def _log_query(self, task: CubeTask, result: CubeResult) -> None:
        """Enrich the active query-log record (no-op outside one)."""
        from repro.obs import querylog
        stats = result.stats
        querylog.annotate(
            algorithm=stats.algorithm or self.name or type(self).__name__,
            degraded_from=stats.notes.get("degraded_from"))
        querylog.add(
            rows_scanned=len(task.rows) * max(stats.base_scans, 1),
            cells=stats.cells_produced)

    def _instrumented_compute(self, task: CubeTask) -> CubeResult:
        """The original span + metrics envelope around :meth:`_compute`."""
        from repro.obs import instrument, trace
        started = time.perf_counter()
        with trace.span("cube.compute",
                        algorithm=self.name or type(self).__name__,
                        grouping_sets=len(task.masks),
                        input_rows=len(task.rows)) as span:
            try:
                result = self._compute(task)
            except TypeError as exc:
                # A bare TypeError from deep inside a sort run or a
                # MIN/MAX comparison carries no query context; when the
                # cause is a mixed-type input column, re-raise as the
                # taxonomy error naming the column.
                mixed = _find_mixed_type_column(task)
                if mixed is None:
                    raise
                from repro.errors import MixedTypeColumnError
                raise MixedTypeColumnError(
                    mixed[0], mixed[1],
                    algorithm=self.name or type(self).__name__) from exc
            span.set(cells=result.stats.cells_produced)
            span.attach_stats(result.stats)
        instrument.record_cube_compute(
            result.stats, time.perf_counter() - started,
            input_rows=len(task.rows))
        return result

    def _degraded_compute(self, ctx: "Any", task: CubeTask) -> CubeResult:
        """Re-run ``task`` under the external (memory-bounded) algorithm
        after a budget breach -- the paper's "even the core exceeds the
        memory budget" fallback, applied at runtime."""
        from repro.compute.external import ExternalCubeAlgorithm
        from repro.obs import instrument, trace
        from_name = self.name or type(self).__name__
        budget = ctx.memory_budget if ctx.memory_budget is not None else 1024
        instrument.record_degradation(from_name)
        fallback = ExternalCubeAlgorithm(memory_budget=budget)
        with trace.span("cube.degrade",
                        from_algorithm=from_name,
                        to_algorithm=fallback.name,
                        memory_budget=budget) as span:
            span.event("budget_exceeded", resident_cells=ctx.peak_cells,
                       memory_budget=budget)
            # The external algorithm bounds its own residency; charging
            # its scratchpad against the blown budget would re-raise.
            with ctx.attempt(), ctx.budget_suspended():
                result = fallback._instrumented_compute(task)
        result.stats.notes["degraded_from"] = from_name
        return result

    @abstractmethod
    def _compute(self, task: CubeTask) -> CubeResult:
        """The strategy body; called by :meth:`compute` under a span."""

    def _new_stats(self) -> ComputeStats:
        return ComputeStats(algorithm=self.name or type(self).__name__)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


#: type groups that are mutually comparable, so ``int`` next to ``float``
#: (or ``bool``) is not "mixed" while ``int`` next to ``str`` is.
_COMPARABLE_GROUPS = {bool: "number", int: "number", float: "number"}


def _find_mixed_type_column(task: CubeTask) -> tuple[str, list[str]] | None:
    """The first dimension or aggregate-input column whose non-NULL
    values span incomparable types, or None.  Used to diagnose a bare
    ``TypeError`` escaping an algorithm (sort keys themselves use the
    library total order, so the usual culprit is an ordering aggregate
    such as MIN/MAX over a mixed column)."""
    from repro.types import is_null_or_all
    names = list(task.dims) + list(task.agg_names)
    for index, name in enumerate(names):
        groups: set = set()
        type_names: set[str] = set()
        for row in task.rows:
            value = row[index]
            if is_null_or_all(value):
                continue
            kind = type(value)
            groups.add(_COMPARABLE_GROUPS.get(kind, kind))
            type_names.add(kind.__name__)
            if len(groups) > 1:
                return name, sorted(type_names)
    return None


def build_task(table: Table,
               dims: Sequence,
               specs: Sequence[AggregateSpec],
               masks: Sequence[Mask]) -> CubeTask:
    """Materialize a :class:`CubeTask` from a source relation.

    ``dims`` entries are column names, expressions, or (expression,
    alias) pairs -- the same key forms GROUP BY accepts.  Expressions
    are evaluated here, once, so algorithms see plain dimension columns.
    """
    from repro.engine.groupby import normalize_keys

    normalized = normalize_keys(dims)
    names = table.schema.names

    dim_columns = []
    for expr, alias in normalized:
        from repro.engine.expressions import ColumnRef
        if isinstance(expr, ColumnRef) and expr.name in table.schema:
            dim_columns.append(table.schema.column(expr.name).renamed(alias))
        else:
            dim_columns.append(Column(alias, DataType.ANY))

    rows: list[tuple] = []
    for row in table:
        context = dict(zip(names, row))
        dim_values = tuple(expr.evaluate(context) for expr, _ in normalized)
        agg_values = tuple(spec.evaluate_input(context) for spec in specs)
        rows.append(dim_values + agg_values)

    return CubeTask(
        dims=tuple(alias for _, alias in normalized),
        dim_columns=tuple(dim_columns),
        functions=tuple(spec.function for spec in specs),
        agg_names=tuple(spec.name for spec in specs),
        rows=rows,
        masks=tuple(masks),
    )
