"""Fused grouped-aggregation kernels for the columnar backend.

Each kernel owns the dense per-group accumulator state for one
aggregate function and knows three operations:

- ``scatter(slots, column)``: fold every input row's value into the
  accumulator of its group code -- the vectorized image of the paper's
  ``Iter()`` loop.  Returns the number of values folded, which the
  algorithm reports as ``iter_calls``;
- ``fold(dst, src)`` / ``project_np(...)``: merge one slot (or one
  dense slab) into another -- the image of ``Iter_super()``, used by
  the dense path's axis projections;
- ``handle(slot)``: rebuild the owning aggregate function's *scratchpad
  handle* for one group.  The algorithm always finishes through
  ``fn.end(handle)`` (and the sparse path merges handles through
  ``fn.merge``), so kernels never re-implement Final() semantics --
  they only accelerate Init/Iter.

Every kernel has a pure-python implementation over stdlib buffers and a
numpy implementation over zero-copy views of the same buffers; ``xp``
(the numpy module, or None) picks the backend at construction time.

An aggregate function opts in by naming a kernel in its
``vector_kernel`` class attribute (see
:class:`repro.aggregates.base.AggregateFunction`).  Functions without a
kernel -- holistic aggregates, UDAFs -- transparently stay on the row
path (see :mod:`repro.compute.columnar.algorithm`).
"""

from __future__ import annotations

from typing import Any

from repro.aggregates.base import AggregateFunction

__all__ = ["KERNELS", "kernel_for", "kernel_needs_numeric", "make_state"]


def _num(value: float, any_float: bool) -> Any:
    """Decode one float64 accumulator to the value the row path would
    hold.  ``any_float`` says whether any *float-typed* value reached
    this group's accumulator: if so the row path's result is a float
    (``sum([1, 2.0])`` is ``3.0``), so integral results keep their
    ``.0``; if not, every input was an int and the row path held an
    exact python int."""
    value = float(value)
    if not any_float and value.is_integer():
        return int(value)
    return value


class _KernelState:
    """Shared scaffolding; subclasses fill in the per-kernel pieces."""

    #: does scatter need a float64 data buffer (False: validity only)?
    needs_numeric = True

    def __init__(self, size: int, xp) -> None:
        self.size = size
        self.xp = xp
        #: numpy arrays to project on the dense path: (array, reduce mode)
        self.np_arrays: list[tuple] = []
        self._init()

    def _init(self) -> None:
        raise NotImplementedError

    def scatter(self, slots, column) -> int:
        raise NotImplementedError

    def fold(self, dst: int, src: int) -> None:
        """Pure-python slot merge (dense-path axis projection)."""
        raise NotImplementedError

    def handle(self, slot: int):
        raise NotImplementedError

    def project_np(self, shape, axis: int, core, target) -> None:
        for arr, mode in self.np_arrays:
            view = arr.reshape(shape)
            if mode == "sum":
                view[target] = view[core].sum(axis=axis)
            elif mode == "min":
                view[target] = view[core].min(axis=axis)
            else:
                view[target] = view[core].max(axis=axis)


class _CountStarState(_KernelState):
    """COUNT(*): every row counts, valid or not."""

    needs_numeric = False

    def _init(self) -> None:
        if self.xp is None:
            self.n = [0] * self.size
        else:
            self.n = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.np_arrays = [(self.n, "sum")]

    def scatter(self, slots, column) -> int:
        if self.xp is None:
            n = self.n
            for code in slots:
                n[code] += 1
            return len(slots)
        self.xp.add.at(self.n, slots, 1)
        return int(slots.shape[0])

    def fold(self, dst: int, src: int) -> None:
        self.n[dst] += self.n[src]

    def handle(self, slot: int) -> int:
        return int(self.n[slot])


class _CountState(_CountStarState):
    """COUNT(expr): count rows where the column is non-NULL."""

    def scatter(self, slots, column) -> int:
        if self.xp is None:
            n = self.n
            valid = column.valid
            folds = 0
            for i, code in enumerate(slots):
                if valid[i]:
                    n[code] += 1
                    folds += 1
            return folds
        idx = slots[column.valid_np(self.xp)]
        self.xp.add.at(self.n, idx, 1)
        return int(idx.shape[0])


class _SumState(_KernelState):
    """SUM: handle is None until a value is seen (SQL's empty-sum NULL)."""

    def _init(self) -> None:
        if self.xp is None:
            self.acc: list = [None] * self.size
        else:
            self.acc = self.xp.zeros(self.size, dtype=self.xp.float64)
            self.cnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.fcnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.np_arrays = [(self.acc, "sum"), (self.cnt, "sum"),
                              (self.fcnt, "sum")]

    def scatter(self, slots, column) -> int:
        if self.xp is None:
            acc = self.acc
            raw = column.raw
            valid = column.valid
            folds = 0
            for i, code in enumerate(slots):
                if valid[i]:
                    value = raw[i]
                    current = acc[code]
                    acc[code] = value if current is None else current + value
                    folds += 1
            return folds
        mask = column.valid_np(self.xp)
        idx = slots[mask]
        self.xp.add.at(self.acc, idx, column.data_np(self.xp)[mask])
        self.xp.add.at(self.cnt, idx, 1)
        self.xp.add.at(self.fcnt, idx, column.floats_np(self.xp)[mask])
        return int(idx.shape[0])

    def fold(self, dst: int, src: int) -> None:
        value = self.acc[src]
        if value is None:
            return
        current = self.acc[dst]
        self.acc[dst] = value if current is None else current + value

    def handle(self, slot: int):
        if self.xp is None:
            return self.acc[slot]
        if self.cnt[slot] == 0:
            return None
        return _num(self.acc[slot], bool(self.fcnt[slot]))


class _ExtremeState(_KernelState):
    """Shared MIN/MAX state.  NaN rows are excluded from the scatter
    mask, mirroring ``_Extreme.accepts``; strict comparison keeps the
    first-seen value on ties, matching ``_better``.

    The numpy decode restores the winner's type from the per-group
    float count, which is only unambiguous when the column doesn't mix
    int- and float-typed values -- the algorithm keeps mixed columns
    off the numpy extreme kernels (``AggColumn.mixed_number_types``)."""

    _mode = "min"

    def _init(self) -> None:
        if self.xp is None:
            self.best: list = [None] * self.size
        else:
            sentinel = self.xp.inf if self._mode == "min" else -self.xp.inf
            self.val = self.xp.full(self.size, sentinel,
                                    dtype=self.xp.float64)
            self.cnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.fcnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.np_arrays = [(self.val, self._mode), (self.cnt, "sum"),
                              (self.fcnt, "sum")]

    def _wins(self, challenger, incumbent) -> bool:
        raise NotImplementedError

    def scatter(self, slots, column) -> int:
        if self.xp is None:
            best = self.best
            raw = column.raw
            valid = column.valid
            nan = column.nan
            folds = 0
            for i, code in enumerate(slots):
                if valid[i] and not nan[i]:
                    value = raw[i]
                    incumbent = best[code]
                    if incumbent is None or self._wins(value, incumbent):
                        best[code] = value
                    folds += 1
            return folds
        xp = self.xp
        mask = column.valid_np(xp) & ~column.nan_np(xp)
        idx = slots[mask]
        data = column.data_np(xp)[mask]
        if self._mode == "min":
            xp.minimum.at(self.val, idx, data)
        else:
            xp.maximum.at(self.val, idx, data)
        xp.add.at(self.cnt, idx, 1)
        xp.add.at(self.fcnt, idx, column.floats_np(xp)[mask])
        return int(idx.shape[0])

    def fold(self, dst: int, src: int) -> None:
        value = self.best[src]
        if value is None:
            return
        incumbent = self.best[dst]
        if incumbent is None or self._wins(value, incumbent):
            self.best[dst] = value

    def handle(self, slot: int):
        if self.xp is None:
            return self.best[slot]
        if self.cnt[slot] == 0:
            return None
        return _num(self.val[slot], bool(self.fcnt[slot]))


class _MinState(_ExtremeState):
    _mode = "min"

    def _wins(self, challenger, incumbent) -> bool:
        return challenger < incumbent


class _MaxState(_ExtremeState):
    _mode = "max"

    def _wins(self, challenger, incumbent) -> bool:
        return challenger > incumbent


class _AvgState(_KernelState):
    """AVG: rebuilds the paper's (sum, count) scratchpad per group."""

    def _init(self) -> None:
        if self.xp is None:
            self.sums: list = [0] * self.size
            self.counts = [0] * self.size
        else:
            self.acc = self.xp.zeros(self.size, dtype=self.xp.float64)
            self.cnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.fcnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.np_arrays = [(self.acc, "sum"), (self.cnt, "sum"),
                              (self.fcnt, "sum")]

    def scatter(self, slots, column) -> int:
        if self.xp is None:
            sums = self.sums
            counts = self.counts
            raw = column.raw
            valid = column.valid
            folds = 0
            for i, code in enumerate(slots):
                if valid[i]:
                    sums[code] += raw[i]
                    counts[code] += 1
                    folds += 1
            return folds
        mask = column.valid_np(self.xp)
        idx = slots[mask]
        self.xp.add.at(self.acc, idx, column.data_np(self.xp)[mask])
        self.xp.add.at(self.cnt, idx, 1)
        self.xp.add.at(self.fcnt, idx, column.floats_np(self.xp)[mask])
        return int(idx.shape[0])

    def fold(self, dst: int, src: int) -> None:
        self.sums[dst] += self.sums[src]
        self.counts[dst] += self.counts[src]

    def handle(self, slot: int) -> tuple:
        if self.xp is None:
            return (self.sums[slot], self.counts[slot])
        count = int(self.cnt[slot])
        if count == 0:
            return (0, 0)
        return (_num(self.acc[slot], bool(self.fcnt[slot])), count)


class _VarState(_KernelState):
    """VARIANCE/STDEV.

    The python backend runs Welford in row order, so its (count, mean,
    M2) handles are bit-identical to the row path.  The numpy backend
    accumulates (count, sum, sum of squares) and rebuilds the Welford
    scratchpad -- algebraically identical, rounded differently, which is
    why cross-path VARIANCE comparisons are approximate.
    """

    def _init(self) -> None:
        if self.xp is None:
            self.counts = [0] * self.size
            self.means = [0.0] * self.size
            self.m2s = [0.0] * self.size
        else:
            self.cnt = self.xp.zeros(self.size, dtype=self.xp.int64)
            self.acc = self.xp.zeros(self.size, dtype=self.xp.float64)
            self.sumsq = self.xp.zeros(self.size, dtype=self.xp.float64)
            self.np_arrays = [(self.cnt, "sum"), (self.acc, "sum"),
                              (self.sumsq, "sum")]

    def scatter(self, slots, column) -> int:
        if self.xp is None:
            counts = self.counts
            means = self.means
            m2s = self.m2s
            raw = column.raw
            valid = column.valid
            folds = 0
            for i, code in enumerate(slots):
                if valid[i]:
                    value = raw[i]
                    count = counts[code] + 1
                    counts[code] = count
                    delta = value - means[code]
                    mean = means[code] + delta / count
                    means[code] = mean
                    m2s[code] += delta * (value - mean)
                    folds += 1
            return folds
        mask = column.valid_np(self.xp)
        idx = slots[mask]
        data = column.data_np(self.xp)[mask]
        self.xp.add.at(self.cnt, idx, 1)
        self.xp.add.at(self.acc, idx, data)
        self.xp.add.at(self.sumsq, idx, data * data)
        return int(idx.shape[0])

    def fold(self, dst: int, src: int) -> None:
        # Chan's parallel update, exactly as Variance.merge performs it
        count_b = self.counts[src]
        if count_b == 0:
            return
        count_a = self.counts[dst]
        if count_a == 0:
            self.counts[dst] = count_b
            self.means[dst] = self.means[src]
            self.m2s[dst] = self.m2s[src]
            return
        count = count_a + count_b
        delta = self.means[src] - self.means[dst]
        self.means[dst] += delta * count_b / count
        self.m2s[dst] += (self.m2s[src]
                          + delta * delta * count_a * count_b / count)
        self.counts[dst] = count

    def handle(self, slot: int) -> tuple:
        if self.xp is None:
            return (self.counts[slot], self.means[slot], self.m2s[slot])
        count = int(self.cnt[slot])
        if count == 0:
            return (0, 0.0, 0.0)
        total = float(self.acc[slot])
        mean = total / count
        m2 = float(self.sumsq[slot]) - total * total / count
        if m2 < 0:  # float cancellation guard
            m2 = 0.0
        return (count, mean, m2)


KERNELS: dict[str, type[_KernelState]] = {
    "count_star": _CountStarState,
    "count": _CountState,
    "sum": _SumState,
    "min": _MinState,
    "max": _MaxState,
    "avg": _AvgState,
    "var": _VarState,
}


def kernel_for(fn: AggregateFunction) -> str | None:
    """The registered kernel name for a function, or None if the
    function did not declare one (it stays on the row path)."""
    name = getattr(fn, "vector_kernel", None)
    return name if name in KERNELS else None


def kernel_needs_numeric(fn: AggregateFunction) -> bool:
    name = kernel_for(fn)
    return name is not None and KERNELS[name].needs_numeric


def make_state(name: str, size: int, xp) -> _KernelState:
    return KERNELS[name](size, xp)
