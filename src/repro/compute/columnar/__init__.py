"""Vectorized columnar execution backend for the cube hot path.

Batches rows into typed column arrays, dictionary-encodes dimensions,
and scatter-aggregates through fused grouped kernels; super-aggregates
fold either through the Section 5 dense-array projections or through
the shared from-core lattice walk.  Pure-python buffers throughout,
with an optional numpy fast path auto-detected at import.
"""

from repro.compute.columnar.algorithm import (
    COLUMNAR_ROW_THRESHOLD,
    ColumnarCubeAlgorithm,
)
from repro.compute.columnar.batch import (
    AggColumn,
    ColumnBatch,
    DictEncodedColumn,
    HAVE_NUMPY,
)
from repro.compute.columnar.kernels import (
    KERNELS,
    kernel_for,
    kernel_needs_numeric,
)

__all__ = [
    "AggColumn",
    "COLUMNAR_ROW_THRESHOLD",
    "ColumnBatch",
    "ColumnarCubeAlgorithm",
    "DictEncodedColumn",
    "HAVE_NUMPY",
    "KERNELS",
    "kernel_for",
    "kernel_needs_numeric",
]
