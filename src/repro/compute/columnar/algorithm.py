"""The columnar (vectorized) cube algorithm.

Execution plan:

1. **Batch**: the task's rows are transposed into a
   :class:`~repro.compute.columnar.batch.ColumnBatch` -- dictionary-
   encoded dimension codes plus typed aggregate columns (256-row
   checkpoint cadence).
2. **Partition the aggregate list**: functions that declared a
   ``vector_kernel`` (and whose input column satisfies the kernel's
   numeric requirement) run on the kernels; the rest -- holistic
   aggregates, UDAFs, non-numeric SUM inputs -- form the *residual* and
   transparently run on the row path (from-core when mergeable, the
   2^N-algorithm otherwise).  Both halves are joined per cell, so mixed
   aggregate lists work.
3. **Vector half, dense route** (when the Section 5 dense array,
   ``prod(Ci+1)`` slots, fits ``dense_budget``): group codes become
   flat dense offsets via :func:`repro.core.addressing.dense_strides`;
   each kernel scatter-aggregates into dense accumulators, then the
   2^N super-aggregate fold projects one dimension at a time, smallest
   cardinality first, through the shared slab addressing
   (:func:`repro.core.addressing.iter_slab_offsets`).
4. **Vector half, sparse route** (otherwise): rows are grouped to
   dense group ids over the lattice core's dimensions (first-seen
   order, matching from-core's cell discovery order), kernels
   scatter-aggregate per group, and each group's accumulator is
   rebuilt into ordinary scratchpad handles.  The super-aggregate walk
   is then *literally* :func:`repro.compute.from_core.fold_super_aggregates`
   -- which is what makes sparse columnar results bit-identical to the
   from-core row path by construction.

The kernels auto-select numpy when importable and fall back to pure
python otherwise (``force_python=True`` pins the fallback, used by the
parity tests and the no-numpy CI leg).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Any

from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.compute.columnar.batch import (
    BATCH_ROWS,
    ColumnBatch,
    numpy_backend,
)
from repro.compute.columnar.kernels import (
    kernel_for,
    kernel_needs_numeric,
    make_state,
)
from repro.compute.from_core import finalize_nodes, fold_super_aggregates
from repro.compute.stats import ComputeStats
from repro.core.addressing import dense_shape, dense_strides, iter_slab_offsets
from repro.core.lattice import CubeLattice
from repro.obs import instrument, trace
from repro.resilience import context as rctx
from repro.types import ALL

__all__ = ["COLUMNAR_ROW_THRESHOLD", "ColumnarCubeAlgorithm"]

#: Below this row count the optimizer prefers the row algorithms: the
#: batching overhead only pays off once the scan dominates.
COLUMNAR_ROW_THRESHOLD = 512


class ColumnarCubeAlgorithm(CubeAlgorithm):
    """Vectorized columnar backend.

    - ``dense_budget``: max dense slots (``prod(Ci+1)``) before the
      sparse route takes over (``mode="auto"``);
    - ``mode``: ``"auto"`` | ``"dense"`` | ``"sparse"`` route pin;
    - ``projection_order``: ``"smallest"`` (the paper's rule) or
      ``"largest"`` (ablation) for the dense projections;
    - ``force_python``: skip numpy even when importable.
    """

    name = "columnar"

    def __init__(self, dense_budget: int = 1 << 20, *,
                 mode: str = "auto",
                 projection_order: str = "smallest",
                 force_python: bool = False) -> None:
        if mode not in ("auto", "dense", "sparse"):
            # constructor-arg validation, documented as ValueError
            raise ValueError(f"mode must be auto|dense|sparse, got {mode!r}")  # repro: allow-S004
        if projection_order not in ("smallest", "largest"):
            raise ValueError("projection_order must be smallest|largest, "  # repro: allow-S004
                             f"got {projection_order!r}")
        self.dense_budget = dense_budget
        self.mode = mode
        self.projection_order = projection_order
        self.force_python = force_python

    # -- top level ------------------------------------------------------------

    def _compute(self, task: CubeTask) -> CubeResult:
        stats = self._new_stats()
        stats.base_scans = 1

        if not task.rows:
            cells = []
            if 0 in task.masks:
                coordinate = tuple(ALL for _ in range(task.n_dims))
                values = tuple(fn.end(fn.start()) for fn in task.functions)
                cells.append((coordinate, values))
                stats.start_calls = task.n_aggs
                stats.end_calls = task.n_aggs
            stats.cells_produced = len(cells)
            return CubeResult(table=task.result_table(cells), stats=stats)

        xp = numpy_backend(self.force_python)
        with trace.span("cube.batch", rows=len(task.rows),
                        backend="numpy" if xp is not None else "python"):
            batch = ColumnBatch.from_task(task)
        stats.notes["backend"] = "numpy" if xp is not None else "python"

        vector_positions = [
            p for p, fn in enumerate(task.functions)
            if kernel_for(fn) is not None
            and (not kernel_needs_numeric(fn) or batch.aggs[p].numeric)
            # a float64 MIN/MAX can't tell which *type* won a cross-type
            # tie, so mixed int/float columns stay on the exact row path
            # (the pure-python kernels fold raw objects and are exact)
            and (xp is None or kernel_for(fn) not in ("min", "max")
                 or not batch.aggs[p].mixed_number_types)
        ]
        residual_positions = [p for p in range(task.n_aggs)
                              if p not in vector_positions]

        if not vector_positions:
            return self._fallback(task)

        vector_task = replace(
            task,
            functions=tuple(task.functions[p] for p in vector_positions),
            agg_names=tuple(task.agg_names[p] for p in vector_positions))
        columns = [batch.aggs[p] for p in vector_positions]

        residual_result = None
        if residual_positions:
            residual_result = self._residual(task, residual_positions, stats)

        cards = batch.cardinalities()
        dense_cells = math.prod(c + 1 for c in cards)
        use_dense = (self.mode == "dense"
                     or (self.mode == "auto"
                         and dense_cells <= self.dense_budget))
        stats.notes["route"] = "dense" if use_dense else "sparse"
        instrument.record_columnar_batch(stats.notes["backend"],
                                         stats.notes["route"],
                                         batch.n_rows)
        if use_dense:
            finalized = self._dense(vector_task, batch, columns, xp, stats)
        else:
            finalized = self._sparse(vector_task, batch, columns, xp, stats)

        if residual_result is None:
            stats.cells_produced = len(finalized)
            return CubeResult(table=task.result_table(finalized),
                              stats=stats)

        residual_values = {}
        n_dims = task.n_dims
        for row in residual_result.table.rows:
            residual_values[row[:n_dims]] = row[n_dims:]
        cells = []
        for coordinate, vector_vals in finalized:
            values: list[Any] = [None] * task.n_aggs
            for j, p in enumerate(vector_positions):
                values[p] = vector_vals[j]
            for j, p in enumerate(residual_positions):
                values[p] = residual_values[coordinate][j]
            cells.append((coordinate, tuple(values)))
        stats.merged(residual_result.stats)
        stats.cells_produced = len(cells)
        return CubeResult(table=task.result_table(cells), stats=stats)

    # -- row-path delegates ---------------------------------------------------

    def _row_algorithm(self, task: CubeTask):
        from repro.compute.from_core import FromCoreAlgorithm
        from repro.compute.twon import TwoNAlgorithm
        if task.all_mergeable():
            return FromCoreAlgorithm()
        return TwoNAlgorithm()  # strict holistic: the paper's only option

    def _fallback(self, task: CubeTask) -> CubeResult:
        """No function is vectorizable: run the whole task on the row
        path, keeping the columnar label so callers see one algorithm."""
        inner = self._row_algorithm(task)
        with trace.span("cube.residual", functions=",".join(
                fn.name for fn in task.functions), path=inner.name):
            result = inner._compute(task)
        result.stats.algorithm = self.name
        result.stats.notes["fallback"] = inner.name
        return result

    def _residual(self, task: CubeTask, positions: list[int],
                  stats: ComputeStats) -> CubeResult:
        """Row-path pass over the non-vectorizable aggregates only."""
        n_dims = task.n_dims
        residual_task = replace(
            task,
            functions=tuple(task.functions[p] for p in positions),
            agg_names=tuple(task.agg_names[p] for p in positions),
            rows=[row[:n_dims] + tuple(row[n_dims + p] for p in positions)
                  for row in task.rows])
        inner = self._row_algorithm(residual_task)
        stats.notes["residual"] = [fn.name for fn in residual_task.functions]
        stats.notes["residual_path"] = inner.name
        with trace.span("cube.residual", functions=",".join(
                residual_task.agg_names), path=inner.name):
            return inner._compute(residual_task)

    # -- dense route -----------------------------------------------------------

    def _dense(self, task: CubeTask, batch: ColumnBatch, columns: list,
               xp, stats: ComputeStats) -> list[tuple]:
        n = task.n_dims
        cards = batch.cardinalities()
        shape = dense_shape(cards)
        strides = dense_strides(shape)
        dense_slots = math.prod(shape)
        # the dense array commits one slot per coordinate up front:
        # charge it all, so sparse data over wide domains trips the
        # budget here and degrades to the external algorithm
        rctx.charge_cells(dense_slots, "columnar dense allocation")
        stats.start_calls += dense_slots * task.n_aggs

        slots = self._flat_offsets(batch, range(n), strides, xp)

        if xp is None:
            counts = [0] * dense_slots
            for code in slots:
                counts[code] += 1
        else:
            counts = xp.zeros(dense_slots, dtype=xp.int64)
            xp.add.at(counts, slots, 1)

        states = []
        for fn, column in zip(task.functions, columns):
            state = make_state(kernel_for(fn), dense_slots, xp)
            stats.iter_calls += state.scatter(slots, column)
            states.append(state)

        order = sorted(range(n), key=lambda i: cards[i],
                       reverse=self.projection_order == "largest")
        stats.notes["projection_order"] = [task.dims[i] for i in order]
        for axis in order:
            rctx.checkpoint("columnar projection axis")
            ci = cards[axis]
            if xp is None:
                stride = strides[axis]
                for base in iter_slab_offsets(shape, axis):
                    target = base + ci * stride
                    offsets = [base + k * stride for k in range(ci)]
                    counts[target] = sum(counts[o] for o in offsets)
                    for state in states:
                        for offset in offsets:
                            state.fold(target, offset)
            else:
                core_slice: list = [slice(None)] * n
                core_slice[axis] = slice(0, ci)
                all_slice: list = [slice(None)] * n
                all_slice[axis] = ci
                core, target = tuple(core_slice), tuple(all_slice)
                view = counts.reshape(shape)
                view[target] = view[core].sum(axis=axis)
                for state in states:
                    state.project_np(shape, axis, core, target)
            slab_cells = math.prod(shape[i] for i in range(n) if i != axis)
            stats.merge_calls += slab_cells * ci * task.n_aggs

        stats.observe_resident(dense_slots * (2 * task.n_aggs + 1))

        finalized = []
        for mask in task.masks:
            grouped = [i for i in range(n) if mask & (1 << i)]
            base = sum(cards[i] * strides[i]
                       for i in range(n) if not mask & (1 << i))
            index = [0] * len(grouped)
            while True:
                flat = base + sum(index[j] * strides[i]
                                  for j, i in enumerate(grouped))
                if counts[flat] > 0:
                    coordinate: list = [ALL] * n
                    for j, i in enumerate(grouped):
                        coordinate[i] = batch.dims[i].values[index[j]]
                    values = tuple(
                        fn.end(state.handle(flat))
                        for fn, state in zip(task.functions, states))
                    stats.end_calls += task.n_aggs
                    finalized.append((tuple(coordinate), values))
                # odometer over the grouped dimensions' real slots
                position = len(grouped) - 1
                while position >= 0:
                    index[position] += 1
                    if index[position] < cards[grouped[position]]:
                        break
                    index[position] = 0
                    position -= 1
                else:
                    break

        rctx.release_cells(dense_slots)
        return finalized

    # -- sparse route ----------------------------------------------------------

    def _sparse(self, task: CubeTask, batch: ColumnBatch, columns: list,
                xp, stats: ComputeStats) -> list[tuple]:
        n = task.n_dims
        lattice = CubeLattice(task.dims, task.masks)
        core_mask = lattice.core
        core_dims = [i for i in range(n) if core_mask & (1 << i)]

        # flat keys over the core dimensions only (mixed radix of their
        # real cardinalities -- no ALL slots here, the fold adds those)
        cards = batch.cardinalities()
        core_strides = {}
        stride = 1
        for i in reversed(core_dims):
            core_strides[i] = stride
            stride *= cards[i]
        flat = self._flat_offsets(batch, core_dims, core_strides, xp)
        if xp is not None:
            flat = flat.tolist()

        # group ids in first-seen row order, matching from-core's core
        # cell insertion order (so downstream float merges agree bitwise)
        group_of: dict[int, int] = {}
        gids = [0] * batch.n_rows
        representatives: list[int] = []
        for start in range(0, batch.n_rows, BATCH_ROWS):
            rctx.checkpoint("columnar group scan")
            for i in range(start, min(start + BATCH_ROWS, batch.n_rows)):
                key = flat[i]
                gid = group_of.get(key)
                if gid is None:
                    gid = group_of[key] = len(group_of)
                    representatives.append(i)
                gids[i] = gid
        n_groups = len(group_of)

        rctx.charge_cells(n_groups, "columnar core groups")
        stats.start_calls += n_groups * task.n_aggs

        slots = (xp.asarray(gids, dtype=xp.int64)
                 if xp is not None else gids)
        with trace.span("cube.node", dims=task.mask_label(core_mask),
                        role="core", rows=len(task.rows)) as span:
            states = []
            for fn, column in zip(task.functions, columns):
                state = make_state(kernel_for(fn), n_groups, xp)
                stats.iter_calls += state.scatter(slots, column)
                states.append(state)
            core_cells = {}
            rows = task.rows
            for gid in range(n_groups):
                coordinate = task.coordinate(core_mask,
                                             rows[representatives[gid]])
                core_cells[coordinate] = [state.handle(gid)
                                          for state in states]
            span.set(cells=n_groups)

        nodes = {core_mask: core_cells}
        fold_super_aggregates(task, nodes, stats)
        return finalize_nodes(task, nodes, stats)

    # -- shared helpers --------------------------------------------------------

    def _flat_offsets(self, batch: ColumnBatch, dims, strides, xp):
        """Per-row flat offsets ``sum(code[d] * stride[d])`` over the
        given dimensions; int list (python) or int64 ndarray (numpy).
        ``strides`` may be a sequence or a {dim: stride} mapping."""
        dims = list(dims)
        if xp is not None:
            flat = xp.zeros(batch.n_rows, dtype=xp.int64)
            for d in dims:
                flat += batch.dims[d].codes_np(xp) * strides[d]
            return flat
        flat = [0] * batch.n_rows
        for d in dims:
            codes = batch.dims[d].codes
            stride = strides[d]
            if stride == 1:
                for i, code in enumerate(codes):
                    flat[i] += code
            else:
                for i, code in enumerate(codes):
                    flat[i] += code * stride
        return flat
