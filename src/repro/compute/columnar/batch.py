"""Typed column batches for the columnar backend.

A :class:`ColumnBatch` is the columnar image of a
:class:`~repro.compute.base.CubeTask`: each dimension becomes a
dictionary-encoded column (dense integer codes plus a decode list, the
paper's "hashed symbol table that maps each string to an integer so the
values become dense"), and each aggregate-input column becomes a typed
:class:`AggColumn` carrying a float64 buffer plus validity masks.

The buffers are stdlib ``array``/``bytearray`` objects, so the batch
works without any third-party dependency; when numpy is importable the
``*_np`` accessors expose the same buffers zero-copy as ndarrays for
the vectorized kernels.  Which backend runs is decided once per
computation (see :mod:`repro.compute.columnar.kernels`).

Encoding notes that keep the batch bit-compatible with the row path:

- dimension codes are assigned in **first-seen row order** (a plain
  dict), so the sparse path's group discovery order -- and therefore
  its float merge order -- matches the from-core algorithm's cell
  insertion order exactly;
- ``NaN`` dimension values are dict keys, so distinct NaN objects stay
  distinct groups, exactly as the row algorithms' coordinate dicts
  treat them;
- an aggregate column is *numeric* only when every non-NULL value is an
  ``int`` or ``float`` (``bool`` is excluded, matching the array
  algorithm); non-numeric columns still carry a validity mask so COUNT
  kernels can run over them.
"""

from __future__ import annotations

import math
import operator
from array import array
from typing import Any, Sequence

from repro.resilience import context as rctx
from repro.types import is_null_or_all

try:  # optional fast path; every code path below works without it
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _numpy = None

__all__ = ["AggColumn", "BATCH_ROWS", "ColumnBatch", "DictEncodedColumn",
           "HAVE_NUMPY", "numpy_backend"]

#: Rows between cooperative-cancellation checkpoints while encoding.
BATCH_ROWS = 256

HAVE_NUMPY = _numpy is not None


def numpy_backend(force_python: bool = False):
    """The numpy module to vectorize with, or None for pure python."""
    return None if force_python else _numpy


class DictEncodedColumn:
    """One dimension column: dense codes plus the decode list."""

    __slots__ = ("name", "values", "codes")

    def __init__(self, name: str, values: list, codes: array) -> None:
        self.name = name
        self.values = values
        self.codes = codes

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def codes_np(self, xp):
        return xp.frombuffer(self.codes, dtype=xp.int64)


class AggColumn:
    """One aggregate-input column.

    ``raw`` keeps the original python objects (the pure-python kernels
    fold them directly, preserving int/float identity); ``data`` is the
    float64 image for the numpy kernels, present only when the column
    is numeric.  ``valid`` marks non-NULL rows; ``nan`` marks NaN rows,
    which MIN/MAX kernels must skip (mirroring ``_Extreme.accepts``);
    ``floats`` marks float-typed rows, so the numpy kernels can restore
    the row path's int-vs-float result types exactly (``sum([1, 2])``
    is ``3`` but ``sum([1.0, 2.0])`` is ``3.0``).
    """

    __slots__ = ("name", "raw", "valid", "nan", "floats", "numeric",
                 "data", "n_valid", "n_float")

    def __init__(self, name: str, raw: list, valid: bytearray,
                 nan: bytearray, floats: bytearray, numeric: bool,
                 data: array | None, n_valid: int, n_float: int) -> None:
        self.name = name
        self.raw = raw
        self.valid = valid
        self.nan = nan
        self.floats = floats
        self.numeric = numeric
        self.data = data
        self.n_valid = n_valid
        self.n_float = n_float

    @property
    def mixed_number_types(self) -> bool:
        """True when the column holds both int- and float-typed values.
        An order-sensitive numpy kernel (MIN/MAX) cannot reconstruct
        which *type* won a cross-type tie from the float64 image, so
        such columns stay on exact backends (python kernels, row path).
        """
        return 0 < self.n_float < self.n_valid

    def valid_np(self, xp):
        return xp.frombuffer(self.valid, dtype=xp.uint8).astype(bool)

    def nan_np(self, xp):
        return xp.frombuffer(self.nan, dtype=xp.uint8).astype(bool)

    def floats_np(self, xp):
        return xp.frombuffer(self.floats, dtype=xp.uint8).astype(bool)

    def data_np(self, xp):
        return xp.frombuffer(self.data, dtype=xp.float64)


class ColumnBatch:
    """The columnar image of one cube task's input rows."""

    __slots__ = ("n_rows", "dims", "aggs")

    def __init__(self, n_rows: int, dims: list, aggs: list) -> None:
        self.n_rows = n_rows
        self.dims = dims
        self.aggs = aggs

    def cardinalities(self) -> list[int]:
        return [column.cardinality for column in self.dims]

    @classmethod
    def from_task(cls, task) -> "ColumnBatch":
        """Batch a task's row list into typed columns, checkpointing
        every :data:`BATCH_ROWS` rows.

        Aggregate specs that read the same source column put the *same
        value objects* at each of their row positions, so positions
        that are element-wise identical share one set of masks and one
        float64 buffer instead of re-scanning the column per spec."""
        rows = task.rows
        n_dims = task.n_dims
        dims = [
            DictEncodedColumn(task.dims[i],
                              *_encode([row[i] for row in rows]))
            for i in range(n_dims)
        ]
        aggs: list[AggColumn] = []
        built: list[AggColumn] = []
        for p, name in enumerate(task.agg_names):
            raw = [row[n_dims + p] for row in rows]
            for other in built:
                if all(map(operator.is_, raw, other.raw)):
                    aggs.append(AggColumn(name, raw, other.valid,
                                          other.nan, other.floats,
                                          other.numeric, other.data,
                                          other.n_valid, other.n_float))
                    break
            else:
                column = _build_agg_column(name, raw)
                built.append(column)
                aggs.append(column)
        return cls(len(rows), dims, aggs)

    @classmethod
    def from_columns(cls, dim_columns: dict, agg_columns: dict) -> "ColumnBatch":
        """Build a batch straight from column lists (the shape
        :meth:`repro.engine.table.Table.columns` returns)."""
        lengths = {len(vals) for vals in list(dim_columns.values())
                   + list(agg_columns.values())}
        if len(lengths) > 1:
            # caller-contract violation, documented as ValueError
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")  # repro: allow-S004
        n_rows = lengths.pop() if lengths else 0
        dims = [DictEncodedColumn(name, *_encode(values))
                for name, values in dim_columns.items()]
        aggs = [_build_agg_column(name, list(values))
                for name, values in agg_columns.items()]
        return cls(n_rows, dims, aggs)


def _encode(values: list) -> tuple[list, array]:
    """Dictionary-encode one column: (decode list, int64 codes)."""
    encoder: dict[Any, int] = {}
    codes = array("q", bytes(8 * len(values)))
    for start in range(0, len(values), BATCH_ROWS):
        rctx.checkpoint("columnar encode batch")
        for i in range(start, min(start + BATCH_ROWS, len(values))):
            value = values[i]
            try:
                codes[i] = encoder[value]
            except KeyError:
                codes[i] = encoder[value] = len(encoder)
    return list(encoder), codes


def _build_agg_column(name: str, raw: list) -> AggColumn:
    n = len(raw)
    valid = bytearray(n)
    nan = bytearray(n)
    floats = bytearray(n)
    numeric = True
    n_valid = 0
    n_float = 0
    for start in range(0, n, BATCH_ROWS):
        rctx.checkpoint("columnar encode batch")
        for i in range(start, min(start + BATCH_ROWS, n)):
            value = raw[i]
            # exact-type fast paths first: the hot loop is all ints or
            # all floats, and ``type() is`` beats the isinstance chain
            cls = type(value)
            if cls is int:
                valid[i] = 1
                n_valid += 1
                continue
            if cls is float:
                valid[i] = 1
                n_valid += 1
                floats[i] = 1
                n_float += 1
                if value != value:  # NaN without a math.isnan call
                    nan[i] = 1
                continue
            if is_null_or_all(value):
                continue
            valid[i] = 1
            n_valid += 1
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                numeric = False
            elif isinstance(value, float):
                floats[i] = 1
                n_float += 1
                if math.isnan(value):
                    nan[i] = 1
    data = None
    if numeric:
        if n_valid == n:
            data = array("d", raw)  # no NULL slots: one C-level copy
        else:
            data = array("d", bytes(8 * n))
            for i in range(n):
                if valid[i]:
                    data[i] = raw[i]
    return AggColumn(name, raw, valid, nan, floats, numeric, data,
                     n_valid, n_float)
