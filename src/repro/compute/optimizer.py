"""Algorithm selection (the Section 5 trichotomy, made executable).

The paper's guidance, encoded:

- **holistic** functions (strict mode): "we know of no more efficient
  way [...] than the 2^N-algorithm" -- pick :class:`TwoNAlgorithm`;
- kernel-covered aggregates over enough rows that batching pays off:
  the vectorized **columnar** backend (which itself routes between the
  Section 5 dense array and the from-core fold);
- distributive COUNT/SUM/MIN/MAX over dimensions whose dense cube fits
  the budget: use the **array** technique;
- otherwise distributive/algebraic: compute **from the core**,
  smallest parent first;
- if even the core exceeds the memory budget: "partition the cube with
  a hash function" -- the **external** hybrid-hash algorithm.
"""

from __future__ import annotations

import math

from repro.compute.array_cube import ArrayCubeAlgorithm, _SUPPORTED
from repro.compute.base import CubeAlgorithm, CubeTask
from repro.compute.columnar import (
    COLUMNAR_ROW_THRESHOLD,
    ColumnarCubeAlgorithm,
    kernel_for,
    kernel_needs_numeric,
)
from repro.compute.external import ExternalCubeAlgorithm
from repro.compute.from_core import FromCoreAlgorithm
from repro.compute.naive_union import NaiveUnionAlgorithm
from repro.compute.parallel import ParallelCubeAlgorithm
from repro.compute.pipesort import PipeSortAlgorithm
from repro.compute.sort_cube import SortCubeAlgorithm
from repro.compute.twon import TwoNAlgorithm
from repro.cluster.algorithm import ClusterCubeAlgorithm
from repro.errors import CubeError
from repro.types import is_null_or_all

__all__ = ["ALGORITHMS", "choose_algorithm", "explain_choice"]


def _validate_budgets(memory_budget: int | None, dense_budget: int) -> None:
    """Match ``ExternalCubeAlgorithm.__init__``'s check at plan time, so
    a bad budget fails before any work rather than mid-selection."""
    if memory_budget is not None and memory_budget < 1:
        raise CubeError(
            f"memory_budget must be at least 1 cell, got {memory_budget}")
    if dense_budget < 1:
        raise CubeError(
            f"dense_budget must be at least 1 cell, got {dense_budget}")

#: Name -> zero-argument factory for every registered algorithm.
ALGORITHMS: dict[str, type[CubeAlgorithm]] = {
    "naive-union": NaiveUnionAlgorithm,
    "2^N": TwoNAlgorithm,
    "from-core": FromCoreAlgorithm,
    "array": ArrayCubeAlgorithm,
    "columnar": ColumnarCubeAlgorithm,
    "sort": SortCubeAlgorithm,
    "pipesort": PipeSortAlgorithm,
    "external": ExternalCubeAlgorithm,
    "parallel": ParallelCubeAlgorithm,
    # multi-process execution is never auto-chosen (process pools are a
    # deliberate deployment decision); pin it with algorithm="cluster"
    "cluster": ClusterCubeAlgorithm,
}


def _columnar_eligible(task: CubeTask) -> bool:
    """Every aggregate has a vector kernel (numeric inputs where the
    kernel demands them, sampled) and the scan is long enough that the
    batching overhead amortizes."""
    if len(task.rows) < COLUMNAR_ROW_THRESHOLD:
        return False
    if not all(kernel_for(fn) is not None for fn in task.functions):
        return False
    sample = task.rows[:256]
    for position, fn in enumerate(task.functions):
        if not kernel_needs_numeric(fn):
            continue
        for row in sample:
            value = row[task.n_dims + position]
            if is_null_or_all(value):
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
    return True


def _array_eligible(task: CubeTask, dense_budget: int) -> bool:
    if not all(isinstance(fn, _SUPPORTED) for fn in task.functions):
        return False
    sample = task.rows[:256]
    for row in sample:
        for value in task.agg_values(row):
            if is_null_or_all(value):
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
    cardinalities = task.cardinalities()
    dense_cells = math.prod(c + 1 for c in cardinalities) if cardinalities \
        else 1
    return dense_cells <= dense_budget


def choose_algorithm(task: CubeTask, *,
                     memory_budget: int | None = None,
                     dense_budget: int = 1 << 20) -> CubeAlgorithm:
    """Pick a cube algorithm per the Section 5 decision rules."""
    _validate_budgets(memory_budget, dense_budget)
    if not task.all_mergeable():
        return TwoNAlgorithm()
    core_estimate = len({task.dim_values(r) for r in task.rows})
    if memory_budget is not None and core_estimate > memory_budget:
        return ExternalCubeAlgorithm(memory_budget=memory_budget)
    if _columnar_eligible(task):
        return ColumnarCubeAlgorithm(dense_budget=dense_budget)
    if _array_eligible(task, dense_budget):
        return ArrayCubeAlgorithm()
    return FromCoreAlgorithm()


def explain_choice(task: CubeTask, *,
                   memory_budget: int | None = None,
                   dense_budget: int = 1 << 20) -> str:
    """Human-readable rationale for :func:`choose_algorithm`."""
    _validate_budgets(memory_budget, dense_budget)
    if not task.all_mergeable():
        bad = [fn.name for fn in task.functions if not fn.mergeable]
        return (f"2^N: {bad} are holistic (no Iter_super), so only the "
                "2^N-algorithm applies (Section 5)")
    core_estimate = len({task.dim_values(r) for r in task.rows})
    if memory_budget is not None and core_estimate > memory_budget:
        return (f"external: estimated core ({core_estimate} cells) exceeds "
                f"the memory budget ({memory_budget}); hybrid-hash "
                "partitioning required")
    if _columnar_eligible(task):
        return (f"columnar: every aggregate has a vector kernel and the "
                f"scan ({len(task.rows)} rows) is long enough to amortize "
                f"batching (threshold {COLUMNAR_ROW_THRESHOLD})")
    if _array_eligible(task, dense_budget):
        return ("array: distributive numeric aggregates over a dense cube "
                f"within budget ({dense_budget} cells)")
    return ("from-core: mergeable aggregates; compute the core once and "
            "derive super-aggregates via Iter_super, smallest parent first")


def make_algorithm(name: str, **kwargs) -> CubeAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise CubeError(
            f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}") from None
    return factory(**kwargs)
