"""Sort-based cube computation (Section 5).

"The basic technique for computing a ROLLUP is to sort the table on the
aggregating attributes and then compute the aggregate functions [...] A
cube is the union of many rollups, so the naive algorithm computes this
union.  Sorting is especially convenient for ROLLUP since the user
often wants the answer set in a sorted order."

A single sorted pass computes *every prefix* of the sort order at once
(a pipelined rollup: when a prefix's key changes, its group closes and
emits).  A cube over N dimensions therefore needs one sort per *chain*
of nested grouping sets.  We cover the 2^N lattice with the minimum
number of chains -- C(N, floor(N/2)) of them -- via the Greene-Kleitman
symmetric chain decomposition of the boolean lattice, and for partial
grouping-set collections (plain rollups, compound clauses) we fall back
to a greedy chain cover.

Cost shape: ``sort_operations == number of chains``; each sorted pass
folds every row into each of the chain's grouping sets, so this sits
between the 2^N-algorithm and from-core in Iter() calls while keeping
only one chain's worth of open scratchpads resident -- the property
that makes sort-based cubes attractive when memory is tight.
"""

from __future__ import annotations

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.core.grouping import Mask
from repro.obs import trace
from repro.resilience import context as rctx
from repro.types import sort_key_tuple

__all__ = ["SortCubeAlgorithm", "symmetric_chain_decomposition",
           "greedy_chain_cover"]


def symmetric_chain_decomposition(n: int) -> list[list[Mask]]:
    """Greene-Kleitman symmetric chains over the subsets of n elements.

    Each subset is a bitstring; reading bit i as '(' when set and ')'
    when clear, match parentheses.  Subsets sharing a matching form one
    chain; within a chain the unmatched positions (all-clear before
    all-set) fill with set bits one at a time.  Chains are nested one-
    bit-at-a-time sequences, i.e. exactly pipelined-rollup orders, and
    there are C(n, floor(n/2)) of them -- the minimum possible, since
    each chain crosses the middle level once.
    """
    if n == 0:
        return [[0]]
    chains: dict[tuple, list[Mask]] = {}
    for mask in range(1 << n):
        stack: list[int] = []
        matched: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for i in range(n):
            if mask & (1 << i):  # '('
                stack.append(i)
            else:  # ')'
                if stack:
                    opener = stack.pop()
                    matched.add(opener)
                    matched.add(i)
                    pairs.append((opener, i))
        unmatched = tuple(i for i in range(n) if i not in matched)
        key = (tuple(sorted(pairs)), unmatched)
        chains.setdefault(key, []).append(mask)
    out = []
    for members in chains.values():
        members.sort(key=lambda m: bin(m).count("1"))
        out.append(members)
    out.sort(key=lambda chain: (-len(chain), chain[0]))
    return out


def greedy_chain_cover(masks: list[Mask]) -> list[list[Mask]]:
    """Cover an arbitrary grouping-set collection with nested chains.

    Repeatedly starts from the finest uncovered set and walks down to
    any uncovered immediate subset present in the collection.  Not
    minimal in general, but exact for rollup chains (one chain) and a
    reasonable cover for compound clauses.
    """
    remaining = set(masks)
    chains: list[list[Mask]] = []
    ordered = sorted(masks, key=lambda m: (-bin(m).count("1"), m))
    for start in ordered:
        if start not in remaining:
            continue
        chain = [start]
        remaining.discard(start)
        current = start
        while True:
            next_mask = None
            bits = [i for i in range(current.bit_length()) if current & (1 << i)]
            for i in bits:
                candidate = current & ~(1 << i)
                if candidate in remaining:
                    next_mask = candidate
                    break
            if next_mask is None:
                break
            chain.append(next_mask)
            remaining.discard(next_mask)
            current = next_mask
        chain.reverse()  # coarse -> fine, matching the SCD layout
        chains.append(chain)
    return chains


class SortCubeAlgorithm(CubeAlgorithm):
    name = "sort"

    def _compute(self, task: CubeTask) -> CubeResult:
        stats = self._new_stats()
        n = task.n_dims
        mask_set = set(task.masks)
        full_power_set = len(mask_set) == (1 << n)

        if full_power_set:
            chains = symmetric_chain_decomposition(n)
        else:
            chains = greedy_chain_cover(list(task.masks))
        stats.notes["chains"] = len(chains)
        stats.notes["decomposition"] = (
            "symmetric" if full_power_set else "greedy")

        cells: list[tuple[tuple, tuple]] = []
        max_resident = 0
        for chain in chains:
            rctx.checkpoint("sort chain")
            label = " > ".join(task.mask_label(m) for m in chain)
            with trace.span("cube.chain", members=label,
                            rows_sorted=len(task.rows)):
                resident = self._run_chain(task, chain, cells, stats)
            max_resident = max(max_resident, resident)
        stats.observe_resident(max_resident)
        stats.cells_produced = len(cells)
        return CubeResult(table=task.result_table(cells), stats=stats)

    def _run_chain(self, task: CubeTask, chain: list[Mask],
                   cells: list, stats) -> int:
        """One sorted pass computing every grouping set in ``chain``.

        The sort order puts the coarsest chain member's dimensions
        first, then each refinement's added dimension, so every chain
        member is a prefix of the sort key and closes its group exactly
        when that prefix changes.
        """
        # build the dimension order: chain is coarse -> fine
        dim_order: list[int] = []
        for mask in chain:
            for i in range(task.n_dims):
                if mask & (1 << i) and i not in dim_order:
                    dim_order.append(i)
        # chain[j] groups the first prefix_len[j] dims of dim_order
        prefix_lens = [bin(mask).count("1") for mask in chain]

        stats.base_scans += 1
        stats.sort_operations += 1
        stats.rows_sorted += len(task.rows)
        ordered_rows = sorted(
            task.rows,
            key=lambda row: sort_key_tuple(row[i] for i in dim_order))

        open_keys: list[tuple | None] = [None] * len(chain)
        open_handles: list[list[Handle] | None] = [None] * len(chain)

        def close(level: int) -> None:
            key = open_keys[level]
            handles = open_handles[level]
            if handles is None:
                return
            mask = chain[level]
            dim_values = dict(zip(dim_order, key))
            coord = task.coordinate(
                mask,
                tuple(dim_values.get(i) for i in range(task.n_dims)))
            cells.append((coord, task.finalize(handles, stats)))
            rctx.release_cells(1)
            open_keys[level] = None
            open_handles[level] = None

        for position, row in enumerate(ordered_rows):
            if position & 255 == 0:
                rctx.checkpoint("sort chain scan")
            sort_values = tuple(row[i] for i in dim_order)
            for level, prefix_len in enumerate(prefix_lens):
                key = sort_values[:prefix_len]
                if open_keys[level] != key or open_handles[level] is None:
                    close(level)
                    open_keys[level] = key
                    open_handles[level] = task.new_handles(stats)
                task.fold_row(open_handles[level], row, stats)
        for level in range(len(chain)):
            close(level)

        # the grand total over an empty input still yields one row
        if 0 in chain and not task.rows:
            handles = task.new_handles(stats)
            cells.append((task.coordinate(0, ()),
                          task.finalize(handles, stats)))
            rctx.release_cells(1)
        return len(chain)  # open scratchpads resident at once
