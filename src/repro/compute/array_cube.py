"""Dense N-dimensional array cube (Section 5).

"If possible, use arrays [...] to organize the aggregation columns in
memory, storing one aggregate value for each array entry. [...] Given
that the core is represented as an N-dimensional array in memory, each
dimension having size Ci+1, the N-1 dimensional slabs can be computed
by projecting (aggregating) one dimension of the core."

Each dimension's values are mapped to dense integers 0..Ci-1 (the
paper's "hashed symbol table that maps each string to an integer so the
values become dense"); slot Ci is the ALL slot.  The core is filled in
one vectorized pass, then dimensions are projected one at a time,
smallest Ci first (the paper's efficiency rule), so every super-
aggregate level reuses the previous level's ALL slabs.

Supports the distributive SQL aggregates (COUNT/COUNT(*)/SUM/MIN/MAX)
over numeric inputs -- exactly the class the paper says array projection
handles.  Anything else raises and the optimizer falls back.

numpy is optional: without it, the same dense-array plan runs on the
columnar backend's pure-python kernels (identical semantics, including
the projection-order ablation), so the algorithm stays available on
dependency-free installs.
"""

from __future__ import annotations

import math
from typing import Any, Callable

try:  # optional: the pure-python columnar engine covers its absence
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from repro.aggregates.distributive import Count, CountStar, Max, Min, Sum
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.errors import CubeError
from repro.resilience import context as rctx
from repro.types import ALL, is_null_or_all, sort_key

__all__ = ["ArrayCubeAlgorithm"]

_SUPPORTED = (Count, CountStar, Sum, Min, Max)


class _Accumulator:
    """One aggregate's dense arrays: the values and the accepted-count.

    The accepted-count array keeps SQL semantics exact: a cell whose
    inputs were all NULL yields NULL for SUM/MIN/MAX even though rows
    exist there.
    """

    def __init__(self, fn, values: np.ndarray, accepted: np.ndarray,
                 reducer: Callable, sentinel: float | None) -> None:
        self.fn = fn
        self.values = values
        self.accepted = accepted
        self.reducer = reducer
        self.sentinel = sentinel

    def project(self, axis: int, core: tuple, target: tuple) -> None:
        self.values[target] = self.reducer(self.values[core], axis)
        self.accepted[target] = self.accepted[core].sum(axis=axis)

    def decode(self, index: tuple) -> Any:
        raw = self.values[index]
        if isinstance(self.fn, (Count, CountStar)):
            return int(raw)
        if self.accepted[index] == 0:
            return None
        value = float(raw)
        if value.is_integer():
            return int(value)
        return value


class ArrayCubeAlgorithm(CubeAlgorithm):
    """``projection_order`` ablates the smallest-dimension-first rule:

    - ``"smallest"`` (default): the paper's rule;
    - ``"largest"``: worst-case ordering, for the ablation bench (the
      cell-merge count grows because early ALL slabs multiply the work
      of later projections).
    """

    name = "array"

    def __init__(self, projection_order: str = "smallest") -> None:
        if projection_order not in ("smallest", "largest"):
            # constructor-arg validation, documented as ValueError
            raise ValueError("projection_order must be smallest|largest, "  # repro: allow-S004
                             f"got {projection_order!r}")
        self.projection_order = projection_order

    def _compute(self, task: CubeTask) -> CubeResult:
        for fn in task.functions:
            if not isinstance(fn, _SUPPORTED):
                raise CubeError(
                    f"array cube supports distributive COUNT/SUM/MIN/MAX, "
                    f"not {fn.name} (Section 5 limits array projection to "
                    "distributive functions)")
        if np is None:
            return self._compute_without_numpy(task)
        stats = self._new_stats()
        stats.base_scans = 1
        n = task.n_dims

        if not task.rows:
            cells = []
            if 0 in task.masks:
                coordinate = tuple(ALL for _ in range(n))
                values = tuple(fn.end(fn.start()) for fn in task.functions)
                cells.append((coordinate, values))
                stats.start_calls = task.n_aggs
                stats.end_calls = task.n_aggs
            stats.cells_produced = len(cells)
            return CubeResult(table=task.result_table(cells), stats=stats)

        # dense symbol tables per dimension ("map each string to an integer")
        value_lists: list[list[Any]] = []
        encoders: list[dict[Any, int]] = []
        for i in range(n):
            values = sorted({row[i] for row in task.rows}, key=sort_key)
            value_lists.append(values)
            encoders.append({v: j for j, v in enumerate(values)})
        shape = tuple(len(values) + 1 for values in value_lists)  # +1 = ALL
        # the dense array commits to one slot per coordinate up front --
        # charge the whole allocation, so sparse data over wide domains
        # trips the budget here and degrades to the external algorithm
        dense_slots = int(np.prod(shape))
        rctx.charge_cells(dense_slots, "array dense allocation")
        # every dense slot is an initialized scratchpad per aggregate
        # (the array analogue of Init), so emitted cells never outnumber
        # starts -- the Figure 7 accounting the property tests assert
        stats.start_calls = dense_slots * task.n_aggs

        t_rows = len(task.rows)
        coords = np.empty((t_rows, n), dtype=np.int64)
        for r, row in enumerate(task.rows):
            for i in range(n):
                coords[r, i] = encoders[i][row[i]]
        flat_core = np.ravel_multi_index(
            tuple(coords[:, i] for i in range(n)), shape)

        count_array = np.zeros(shape, dtype=np.int64)
        np.add.at(count_array.reshape(-1), flat_core, 1)

        accumulators: list[_Accumulator] = []
        for position, fn in enumerate(task.functions):
            inputs = [task.agg_values(row)[position] for row in task.rows]
            accumulators.append(
                self._fill_core(fn, inputs, flat_core, shape))
            stats.iter_calls += t_rows  # one logical Iter per input row

        # project one dimension at a time, smallest cardinality first
        order = sorted(range(n), key=lambda i: len(value_lists[i]),
                       reverse=self.projection_order == "largest")
        stats.notes["projection_order"] = [task.dims[i] for i in order]
        for axis in order:
            rctx.checkpoint("array projection axis")
            ci = len(value_lists[axis])
            core_slice = [slice(None)] * n
            core_slice[axis] = slice(0, ci)
            all_slice = [slice(None)] * n
            all_slice[axis] = ci
            core = tuple(core_slice)
            target = tuple(all_slice)
            count_array[target] = count_array[core].sum(axis=axis)
            for accumulator in accumulators:
                accumulator.project(axis, core, target)
            slab_cells = int(np.prod(
                [shape[i] for i in range(n) if i != axis])) if n > 1 else 1
            stats.merge_calls += slab_cells * ci * task.n_aggs

        stats.observe_resident(int(np.prod(shape)) * (2 * task.n_aggs + 1))

        # -- emit the requested grouping sets (non-empty cells only) -------
        cells = []
        for mask in task.masks:
            indexer = []
            for i in range(n):
                ci = len(value_lists[i])
                indexer.append(slice(0, ci) if mask & (1 << i) else
                               slice(ci, ci + 1))
            sub_counts = count_array[tuple(indexer)]
            for offset in np.argwhere(sub_counts > 0):
                full_index = tuple(
                    int(offset[i]) if mask & (1 << i) else len(value_lists[i])
                    for i in range(n))
                coordinate = tuple(
                    value_lists[i][full_index[i]] if mask & (1 << i) else ALL
                    for i in range(n))
                values = tuple(acc.decode(full_index)
                               for acc in accumulators)
                cells.append((coordinate, values))

        rctx.release_cells(dense_slots)
        stats.end_calls += len(cells) * task.n_aggs
        stats.cells_produced = len(cells)
        return CubeResult(table=task.result_table(cells), stats=stats)

    def _compute_without_numpy(self, task: CubeTask) -> CubeResult:
        """Dense-array plan on the columnar pure-python kernels.

        Keeps the array algorithm's contract exactly: the numeric
        pre-check below raises the same :class:`CubeError` the numpy
        fill loop would, and the delegated computation is pinned to the
        dense route with this instance's projection order.
        """
        from repro.compute.columnar import ColumnarCubeAlgorithm
        for position, fn in enumerate(task.functions):
            if isinstance(fn, (Count, CountStar)):
                continue  # COUNT folds anything, like the numpy path
            for row in task.rows:
                value = task.agg_values(row)[position]
                if is_null_or_all(value):
                    continue
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    raise CubeError(
                        f"array cube needs numeric input for {fn.name}, "
                        f"got {value!r}")
        delegate = ColumnarCubeAlgorithm(
            mode="dense", force_python=True,
            projection_order=self.projection_order)
        result = delegate._compute(task)
        result.stats.algorithm = self.name
        result.stats.notes["backend"] = "python-columnar"
        return result

    @staticmethod
    def _fill_core(fn, inputs: list, flat_core: np.ndarray,
                   shape: tuple) -> _Accumulator:
        size = int(np.prod(shape))
        if isinstance(fn, CountStar):
            accept_rows = list(range(len(inputs)))
            data = np.ones(len(inputs), dtype=np.float64)
        else:
            accept_rows = []
            numeric: list[float] = []
            for r, v in enumerate(inputs):
                if is_null_or_all(v):
                    continue
                if isinstance(fn, Count):
                    accept_rows.append(r)
                    numeric.append(1.0)
                    continue
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise CubeError(
                        f"array cube needs numeric input for {fn.name}, "
                        f"got {v!r}")
                if isinstance(fn, (Min, Max)) and isinstance(v, float) \
                        and math.isnan(v):
                    continue  # NaN never participates (_Extreme.accepts)
                accept_rows.append(r)
                numeric.append(float(v))
            data = np.array(numeric, dtype=np.float64)
        idx = (flat_core[np.array(accept_rows, dtype=np.int64)]
               if accept_rows else np.empty(0, dtype=np.int64))

        accepted = np.zeros(size, dtype=np.int64)
        np.add.at(accepted, idx, 1)

        if isinstance(fn, (Count, CountStar, Sum)):
            values = np.zeros(size, dtype=np.float64)
            np.add.at(values, idx, data)
            reducer = lambda a, axis: a.sum(axis=axis)  # noqa: E731
        elif isinstance(fn, Min):
            values = np.full(size, np.inf, dtype=np.float64)
            np.minimum.at(values, idx, data)
            reducer = lambda a, axis: a.min(axis=axis)  # noqa: E731
        else:  # Max
            values = np.full(size, -np.inf, dtype=np.float64)
            np.maximum.at(values, idx, data)
            reducer = lambda a, axis: a.max(axis=axis)  # noqa: E731
        return _Accumulator(fn, values.reshape(shape),
                            accepted.reshape(shape), reducer,
                            None)
