"""PipeSort-style cube computation (the paper's [ADGNRS] reference).

Agrawal et al., "On the Computation of Multidimensional Aggregates"
(VLDB 1996) -- cited by the Data Cube paper -- refine sort-based cube
computation: the lattice is covered by *pipelines* (chains of grouping
sets sharing one sort order), and crucially each new pipeline sorts the
**result of an already-computed parent**, not the base table.  Since
"the super-aggregates are likely to be orders of magnitude smaller than
the core" (Section 5), those re-sorts are nearly free.

Compare :class:`~repro.compute.sort_cube.SortCubeAlgorithm`, which runs
the same chains but sorts base data for each -- rows_sorted there is
``chains x T``; here it is ``T + sum(|parent| per extra chain)``.

The chain cover is the symmetric chain decomposition (minimum number of
chains); each non-core chain is attached to the smallest already-
computed parent of its finest member (the Section 5 smallest-parent
rule applied to pipeline placement).
"""

from __future__ import annotations

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.compute.sort_cube import (
    greedy_chain_cover,
    symmetric_chain_decomposition,
)
from repro.core.grouping import Mask
from repro.core.lattice import CubeLattice
from repro.errors import NotMergeableError
from repro.obs import trace
from repro.resilience import context as rctx
from repro.types import sort_key_tuple

__all__ = ["PipeSortAlgorithm"]


class PipeSortAlgorithm(CubeAlgorithm):
    name = "pipesort"

    def _compute(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"pipesort needs mergeable scratchpads; {bad} are "
                "holistic in strict mode -- sorts of parent results "
                "fold handles with Iter_super")
        stats = self._new_stats()
        n = task.n_dims
        mask_set = set(task.masks)
        if len(mask_set) == (1 << n):
            chains = symmetric_chain_decomposition(n)
        else:
            chains = greedy_chain_cover(list(task.masks))
        stats.notes["chains"] = len(chains)

        lattice = CubeLattice(task.dims, task.masks)
        # computed nodes: mask -> list of (coordinate, handles); kept to
        # serve as pipeline sources
        nodes: dict[Mask, list[tuple[tuple, list[Handle]]]] = {}

        # order chains so that every non-core chain's parent is ready:
        # by descending level of the chain head
        ordered = sorted(chains,
                         key=lambda chain: -bin(chain[-1]).count("1"))
        core_mask = lattice.core

        for chain in ordered:
            rctx.checkpoint("pipesort pipeline")
            head = chain[-1]  # finest member
            dim_order = self._chain_dim_order(task, chain)
            label = " > ".join(task.mask_label(m) for m in chain)
            if head == core_mask and core_mask not in nodes:
                with trace.span("cube.pipeline", members=label,
                                source="base", rows_sorted=len(task.rows)):
                    self._run_base_chain(task, chain, dim_order, nodes,
                                         stats)
            else:
                parent = self._smallest_ready_parent(lattice, head, nodes)
                with trace.span("cube.pipeline", members=label,
                                source=task.mask_label(parent),
                                rows_sorted=len(nodes[parent])):
                    self._run_parent_chain(task, chain, dim_order, parent,
                                           nodes, stats)

        if 0 in task.masks and not task.rows:
            nodes.setdefault(0, []).append(
                (task.coordinate(0, ()), task.new_handles(stats)))

        cells = []
        for mask in task.masks:
            for coordinate, handles in nodes.get(mask, []):
                cells.append((coordinate, task.finalize(handles, stats)))
        rctx.release_cells(sum(len(v) for v in nodes.values()))
        stats.cells_produced = len(cells)
        stats.observe_resident(sum(len(v) for v in nodes.values()))
        return CubeResult(table=task.result_table(cells), stats=stats)

    @staticmethod
    def _smallest_ready_parent(lattice: CubeLattice, head: Mask,
                               nodes: dict) -> Mask:
        """The smallest already-computed strict superset of ``head`` --
        the cheapest result this pipeline can sort."""
        candidates = [m for m in nodes
                      if m != head and (m & head) == head]
        if not candidates:
            raise NotMergeableError(
                f"no computed parent for pipeline head {head:#b}")
        return min(candidates, key=lambda m: (len(nodes[m]), m))

    @staticmethod
    def _chain_dim_order(task: CubeTask, chain: list[Mask]) -> list[int]:
        """The pipeline's sort order: coarsest member's dims first, each
        refinement's added dim appended -- every chain member is then a
        prefix of this order."""
        order: list[int] = []
        for mask in chain:
            for i in range(task.n_dims):
                if mask & (1 << i) and i not in order:
                    order.append(i)
        return order

    def _run_base_chain(self, task: CubeTask, chain: list[Mask],
                        dim_order: list[int],
                        nodes: dict, stats) -> None:
        """The first pipeline: sort the base table once, aggregate every
        chain member in the single sorted pass."""
        stats.base_scans += 1
        stats.sort_operations += 1
        stats.rows_sorted += len(task.rows)
        rows = sorted(task.rows,
                      key=lambda row: sort_key_tuple(
                          row[i] for i in dim_order))
        self._pipeline(task, chain, dim_order, nodes, stats,
                       source_rows=rows, source_handles=None)

    def _run_parent_chain(self, task: CubeTask, chain: list[Mask],
                          dim_order: list[int], parent: Mask,
                          nodes: dict, stats) -> None:
        """A later pipeline: sort the *parent's result cells* (small!)
        and fold handles down the chain."""
        cells = nodes[parent]
        stats.sort_operations += 1
        stats.rows_sorted += len(cells)  # the PipeSort saving
        ordered = sorted(cells,
                         key=lambda cell: sort_key_tuple(
                             cell[0][i] for i in dim_order))
        self._pipeline(task, chain, dim_order, nodes, stats,
                       source_rows=None, source_handles=ordered)

    def _pipeline(self, task: CubeTask, chain: list[Mask],
                  dim_order: list[int], nodes: dict, stats,
                  *, source_rows, source_handles) -> None:
        """One pass over a sorted source computing all chain members.

        ``source_rows`` (base data, folded with Iter) and
        ``source_handles`` (parent cells, folded with Iter_super) are
        mutually exclusive.
        """
        prefix_lens = [bin(mask).count("1") for mask in chain]
        open_keys: list[tuple | None] = [None] * len(chain)
        open_handles: list[list[Handle] | None] = [None] * len(chain)
        out: dict[Mask, list] = {mask: nodes.setdefault(mask, [])
                                 for mask in chain}

        def close(level: int) -> None:
            if open_handles[level] is None:
                return
            mask = chain[level]
            key = open_keys[level]
            values = dict(zip(dim_order, key))
            coordinate = task.coordinate(
                mask, tuple(values.get(i) for i in range(task.n_dims)))
            out[mask].append((coordinate, open_handles[level]))
            open_keys[level] = None
            open_handles[level] = None

        def feed(sort_values: tuple, fold) -> None:
            for level, prefix_len in enumerate(prefix_lens):
                key = sort_values[:prefix_len]
                if open_keys[level] != key or open_handles[level] is None:
                    close(level)
                    open_keys[level] = key
                    open_handles[level] = task.new_handles(stats)
                fold(open_handles[level])

        if source_rows is not None:
            for position, row in enumerate(source_rows):
                if position & 255 == 0:
                    rctx.checkpoint("pipesort scan")
                values = tuple(row[i] for i in dim_order)
                feed(values, lambda handles, row=row: task.fold_row(
                    handles, row, stats))
        else:
            for coordinate, handles in source_handles:
                values = tuple(coordinate[i] for i in dim_order)
                feed(values,
                     lambda target, source=handles: task.merge_handles(
                         target, source, stats))
        for level in range(len(chain)):
            close(level)
