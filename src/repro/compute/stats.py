"""Machine-independent cost counters for cube algorithms.

The paper's Section 5 argues about algorithms in terms of scans of the
base data, Iter() calls, Iter_super (merge) calls, and sort passes --
not milliseconds.  ``ComputeStats`` counts exactly those quantities so
the benchmark harness can check claims such as "the 2^N-algorithm
invokes the Iter() function T x 2^N times" and "it is often faster to
compute the super-aggregates from the core GROUP BY, reducing the
number of calls by approximately a factor of T".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComputeStats", "COUNTER_FIELDS"]


#: The additive counter fields :meth:`ComputeStats.merged` combines
#: (``max_resident_cells`` is combined by max, not addition).
COUNTER_FIELDS = ("base_scans", "iter_calls", "merge_calls", "start_calls",
                  "end_calls", "sort_operations", "rows_sorted",
                  "cells_produced", "partitions", "spills", "passes")


@dataclass
class ComputeStats:
    """Counters one cube computation accumulates.

    For partitioned algorithms (``external``, ``parallel``) the
    counters are summed across sub-computations, so ``base_scans``
    counts *partition* scans: the parallel algorithm reports
    ``base_scans == n_workers`` by design -- each worker scans its own
    partition once, and the sum is the paper's "data spans many disks"
    accounting (every base row is still read exactly once).
    """

    algorithm: str = ""
    #: full scans of the base (input) data; for partitioned algorithms,
    #: one per partition scanned (sums to n_workers / n_partitions)
    base_scans: int = 0
    #: Iter() invocations -- one value folded into one scratchpad
    iter_calls: int = 0
    #: Iter_super() invocations -- one scratchpad merged into another
    merge_calls: int = 0
    #: Init() invocations (scratchpads allocated)
    start_calls: int = 0
    #: Final() invocations
    end_calls: int = 0
    #: sort operations performed
    sort_operations: int = 0
    #: total rows passed through sorts
    rows_sorted: int = 0
    #: result cells produced (across all grouping sets)
    cells_produced: int = 0
    #: peak number of scratchpads resident at once
    max_resident_cells: int = 0
    #: partitions created (external / parallel algorithms)
    partitions: int = 0
    #: partitions spilled out of memory (external algorithm)
    spills: int = 0
    #: passes over spilled data
    passes: int = 0
    #: free-form notes (e.g. chain decomposition size)
    notes: dict = field(default_factory=dict)

    def observe_resident(self, resident_cells: int) -> None:
        if resident_cells > self.max_resident_cells:
            self.max_resident_cells = resident_cells

    def merged(self, other: "ComputeStats") -> "ComputeStats":
        """Combine counters from a sub-computation (partition, chain).

        Additive on every :data:`COUNTER_FIELDS` counter and max-combining
        on ``max_resident_cells``, so it is associative (asserted by the
        property tests): merging worker stats in any grouping yields the
        same totals.
        """
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.observe_resident(other.max_resident_cells)
        return self

    def as_dict(self) -> dict:
        """A plain-dict snapshot (span attachments, JSON exporters)."""
        out: dict = {"algorithm": self.algorithm}
        for name in COUNTER_FIELDS:
            out[name] = getattr(self, name)
        out["max_resident_cells"] = self.max_resident_cells
        if self.notes:
            out["notes"] = dict(self.notes)
        return out

    def summary(self) -> str:
        return (f"{self.algorithm or 'cube'}: scans={self.base_scans} "
                f"iter={self.iter_calls} merge={self.merge_calls} "
                f"sorts={self.sort_operations} cells={self.cells_produced} "
                f"resident<= {self.max_resident_cells}")
