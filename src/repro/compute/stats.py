"""Machine-independent cost counters for cube algorithms.

The paper's Section 5 argues about algorithms in terms of scans of the
base data, Iter() calls, Iter_super (merge) calls, and sort passes --
not milliseconds.  ``ComputeStats`` counts exactly those quantities so
the benchmark harness can check claims such as "the 2^N-algorithm
invokes the Iter() function T x 2^N times" and "it is often faster to
compute the super-aggregates from the core GROUP BY, reducing the
number of calls by approximately a factor of T".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComputeStats"]


@dataclass
class ComputeStats:
    """Counters one cube computation accumulates."""

    algorithm: str = ""
    #: full scans of the base (input) data
    base_scans: int = 0
    #: Iter() invocations -- one value folded into one scratchpad
    iter_calls: int = 0
    #: Iter_super() invocations -- one scratchpad merged into another
    merge_calls: int = 0
    #: Init() invocations (scratchpads allocated)
    start_calls: int = 0
    #: Final() invocations
    end_calls: int = 0
    #: sort operations performed
    sort_operations: int = 0
    #: total rows passed through sorts
    rows_sorted: int = 0
    #: result cells produced (across all grouping sets)
    cells_produced: int = 0
    #: peak number of scratchpads resident at once
    max_resident_cells: int = 0
    #: partitions created (external / parallel algorithms)
    partitions: int = 0
    #: partitions spilled out of memory (external algorithm)
    spills: int = 0
    #: passes over spilled data
    passes: int = 0
    #: free-form notes (e.g. chain decomposition size)
    notes: dict = field(default_factory=dict)

    def observe_resident(self, resident_cells: int) -> None:
        if resident_cells > self.max_resident_cells:
            self.max_resident_cells = resident_cells

    def merged(self, other: "ComputeStats") -> "ComputeStats":
        """Combine counters from a sub-computation (partition, chain)."""
        self.base_scans += other.base_scans
        self.iter_calls += other.iter_calls
        self.merge_calls += other.merge_calls
        self.start_calls += other.start_calls
        self.end_calls += other.end_calls
        self.sort_operations += other.sort_operations
        self.rows_sorted += other.rows_sorted
        self.cells_produced += other.cells_produced
        self.partitions += other.partitions
        self.spills += other.spills
        self.passes += other.passes
        self.observe_resident(other.max_resident_cells)
        return self

    def summary(self) -> str:
        return (f"{self.algorithm or 'cube'}: scans={self.base_scans} "
                f"iter={self.iter_calls} merge={self.merge_calls} "
                f"sorts={self.sort_operations} cells={self.cells_produced} "
                f"resident<= {self.max_resident_cells}")
