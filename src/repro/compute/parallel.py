"""Partition-parallel cube computation (Section 5).

"If the source data spans many disks or nodes, use parallelism to
aggregate each partition and then coalesce these aggregates.  [...] the
distributive, algebraic, and holistic taxonomy is very useful in
computing aggregates for parallel database systems.  In those systems,
aggregates are computed for each partition of a database in parallel.
Then the results of these parallel computations are combined."

The input is split across P workers (round-robin, simulating data that
"spans many disks").  Each worker computes a complete local cube *with
live scratchpads* over its partition; the coordinator then coalesces
the local cubes cell-by-cell using ``merge`` (Iter_super) -- exactly the
combination step the paper says mirrors Figure 8's super-aggregation
logic.  Workers run on a thread pool; correctness never depends on
scheduling because coalescing iterates partitions in index order.

Requires mergeable functions: a strict-mode holistic aggregate cannot
be combined across partitions, which is the parallel-database half of
the paper's holistic warning.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.compute.stats import ComputeStats
from repro.errors import CubeError, NotMergeableError
from repro.obs import trace
from repro.obs.trace import Span

__all__ = ["ParallelCubeAlgorithm"]

LocalCube = dict[tuple, list[Handle]]


class ParallelCubeAlgorithm(CubeAlgorithm):
    name = "parallel"

    def __init__(self, n_workers: int = 4, *, use_threads: bool = True) -> None:
        if n_workers < 1:
            raise CubeError("n_workers must be at least 1")
        self.n_workers = n_workers
        self.use_threads = use_threads

    def _compute(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"parallel cube needs mergeable scratchpads; {bad} are "
                "holistic in strict mode")
        stats = self._new_stats()
        stats.partitions = self.n_workers

        partitions: list[list[tuple]] = [[] for _ in range(self.n_workers)]
        for position, row in enumerate(task.rows):
            partitions[position % self.n_workers].append(row)

        # worker threads have their own (empty) span stacks, so the
        # coordinating thread's open span is passed down explicitly
        parent = trace.current_span()
        if self.use_threads and self.n_workers > 1:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                outcomes = list(pool.map(
                    lambda item: _local_cube(task, item[1], worker=item[0],
                                             parent=parent),
                    enumerate(partitions)))
        else:
            outcomes = [_local_cube(task, p, worker=i, parent=parent)
                        for i, p in enumerate(partitions)]

        locals_, local_stats = zip(*outcomes)
        for worker_stats in local_stats:
            stats.merged(worker_stats)

        # -- coalesce: merge local cubes cell-by-cell -----------------------
        with trace.span("cube.parallel.coalesce",
                        workers=self.n_workers) as span:
            combined: LocalCube = {}
            for local in locals_:
                for coordinate, handles in local.items():
                    target = combined.get(coordinate)
                    if target is None:
                        target = task.new_handles(stats)
                        combined[coordinate] = target
                    task.merge_handles(target, handles, stats)

            if 0 in task.masks and not task.rows:
                key = task.coordinate(0, ())
                if key not in combined:
                    combined[key] = task.new_handles(stats)

            # peak residency: every worker's local cube is still alive
            # while the coordinator folds it into ``combined``, so the
            # true peak is all local cells plus the coalesced cube --
            # counting only the final dict would under-report it
            stats.observe_resident(
                sum(len(local) for local in locals_) + len(combined))
            span.set(cells=len(combined))
        cells = [(coordinate, task.finalize(handles, stats))
                 for coordinate, handles in combined.items()]
        stats.cells_produced = len(cells)
        return CubeResult(table=task.result_table(cells), stats=stats)


def _local_cube(task: CubeTask, rows: Sequence[tuple], *,
                worker: int = 0,
                parent: "Span | None" = None
                ) -> tuple[LocalCube, ComputeStats]:
    """One worker: a complete local cube with live scratchpads.

    Uses the 2^N fold over the partition -- every local grouping-set
    cell keeps its handle so the coordinator can merge.  ``base_scans``
    is 1 per worker (each worker scans only its own partition), so the
    coordinator's merged total is ``n_workers`` -- see the
    :class:`~repro.compute.stats.ComputeStats` docstring.
    """
    with trace.span("cube.parallel.worker", parent=parent, worker=worker,
                    rows=len(rows)) as span:
        stats = ComputeStats(algorithm="parallel-worker")
        stats.base_scans = 1
        cells: LocalCube = {}
        for row in rows:
            dim_values = task.dim_values(row)
            for mask in task.masks:
                coordinate = task.coordinate(mask, dim_values)
                handles = cells.get(coordinate)
                if handles is None:
                    handles = task.new_handles(stats)
                    cells[coordinate] = handles
                task.fold_row(handles, row, stats)
        stats.observe_resident(len(cells))
        span.set(cells=len(cells))
        span.attach_stats(stats)
    return cells, stats
