"""Partition-parallel cube computation (Section 5).

"If the source data spans many disks or nodes, use parallelism to
aggregate each partition and then coalesce these aggregates.  [...] the
distributive, algebraic, and holistic taxonomy is very useful in
computing aggregates for parallel database systems.  In those systems,
aggregates are computed for each partition of a database in parallel.
Then the results of these parallel computations are combined."

The input is split across P workers (round-robin, simulating data that
"spans many disks").  Each worker computes a complete local cube *with
live scratchpads* over its partition; the coordinator then coalesces
the local cubes cell-by-cell using ``merge`` (Iter_super) -- exactly the
combination step the paper says mirrors Figure 8's super-aggregation
logic.  Workers run on a thread pool; correctness never depends on
scheduling because coalescing iterates partitions in index order.

Requires mergeable functions: a strict-mode holistic aggregate cannot
be combined across partitions, which is the parallel-database half of
the paper's holistic warning.

**Fault isolation.** When an :class:`~repro.resilience.ExecutionContext`
is active, each worker runs under the context's retry policy: a failed
attempt is retried with bounded backoff, and a worker that exhausts its
retries surrenders its partition to the coordinator, which re-executes
it *serially* after the pool drains (so a genuine, deterministic error
still propagates -- serial recovery re-raises it).  Coalescing iterates
partitions in index order regardless of which path produced them, so
results are bit-identical to the all-healthy (and the fully serial)
run.  Cancellation is never retried and never recovered.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.aggregates.base import Handle
from repro.compute.base import CubeAlgorithm, CubeResult, CubeTask
from repro.compute.stats import ComputeStats
from repro.errors import CubeError, NotMergeableError, QueryCancelledError
from repro.obs import trace
from repro.obs.trace import Span
from repro.resilience import context as rctx
from repro.resilience.retry import call_with_retry

__all__ = ["ParallelCubeAlgorithm"]

LocalCube = dict[tuple, list[Handle]]


class _FailedWorker:
    """Sentinel outcome for a worker that exhausted its retries; the
    coordinator recovers its partition serially."""

    def __init__(self, worker: int, error: BaseException) -> None:
        self.worker = worker
        self.error = error


class ParallelCubeAlgorithm(CubeAlgorithm):
    name = "parallel"

    def __init__(self, n_workers: int = 4, *, use_threads: bool = True) -> None:
        if n_workers < 1:
            raise CubeError("n_workers must be at least 1")
        self.n_workers = n_workers
        self.use_threads = use_threads

    def _compute(self, task: CubeTask) -> CubeResult:
        if not task.all_mergeable():
            bad = [fn.name for fn in task.functions if not fn.mergeable]
            raise NotMergeableError(
                f"parallel cube needs mergeable scratchpads; {bad} are "
                "holistic in strict mode")
        stats = self._new_stats()
        stats.partitions = self.n_workers

        partitions: list[list[tuple]] = [[] for _ in range(self.n_workers)]
        for position, row in enumerate(task.rows):
            partitions[position % self.n_workers].append(row)

        # worker threads have their own (empty) span stacks, so the
        # coordinating thread's open span is passed down explicitly
        parent = trace.current_span()
        ctx = rctx.current_context()
        if ctx is None:
            run_worker = (lambda i, rows:
                          _local_cube(task, rows, worker=i, parent=parent))
        else:
            run_worker = (lambda i, rows:
                          _guarded_local_cube(task, rows, worker=i,
                                              parent=parent, ctx=ctx))
        if self.use_threads and self.n_workers > 1:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                outcomes = list(pool.map(
                    lambda item: run_worker(item[0], item[1]),
                    enumerate(partitions)))
        else:
            outcomes = [run_worker(i, p) for i, p in enumerate(partitions)]

        # -- recover surrendered partitions serially ------------------------
        failed = [o for o in outcomes if isinstance(o, _FailedWorker)]
        if failed:
            from repro.obs import instrument
            stats.notes["recovered_partitions"] = len(failed)
            with trace.span("cube.parallel.recover",
                            failures=len(failed)) as recover_span:
                for lost in failed:
                    rctx.checkpoint("parallel recovery")
                    recover_span.event("recover_partition",
                                       worker=lost.worker,
                                       error=str(lost.error))
                    instrument.record_worker_recovery()
                    # plain serial re-execution: chaos-exempt, so a
                    # genuine deterministic error re-raises here
                    outcomes[lost.worker] = _local_cube(
                        task, partitions[lost.worker],
                        worker=lost.worker, parent=recover_span)

        locals_, local_stats = zip(*outcomes)
        for worker_stats in local_stats:
            stats.merged(worker_stats)

        # -- coalesce: merge local cubes cell-by-cell -----------------------
        with trace.span("cube.parallel.coalesce",
                        workers=self.n_workers) as span:
            combined: LocalCube = {}
            for local in locals_:
                for coordinate, handles in local.items():
                    target = combined.get(coordinate)
                    if target is None:
                        target = task.new_handles(stats)
                        combined[coordinate] = target
                    task.merge_handles(target, handles, stats)

            if 0 in task.masks and not task.rows:
                key = task.coordinate(0, ())
                if key not in combined:
                    combined[key] = task.new_handles(stats)

            # peak residency: every worker's local cube is still alive
            # while the coordinator folds it into ``combined``, so the
            # true peak is all local cells plus the coalesced cube --
            # counting only the final dict would under-report it
            stats.observe_resident(
                sum(len(local) for local in locals_) + len(combined))
            span.set(cells=len(combined))
        cells = [(coordinate, task.finalize(handles, stats))
                 for coordinate, handles in combined.items()]
        stats.cells_produced = len(cells)
        return CubeResult(table=task.result_table(cells), stats=stats)


def _local_cube(task: CubeTask, rows: Sequence[tuple], *,
                worker: int = 0,
                parent: "Span | None" = None
                ) -> tuple[LocalCube, ComputeStats]:
    """One worker: a complete local cube with live scratchpads.

    Uses the 2^N fold over the partition -- every local grouping-set
    cell keeps its handle so the coordinator can merge.  ``base_scans``
    is 1 per worker (each worker scans only its own partition), so the
    coordinator's merged total is ``n_workers`` -- see the
    :class:`~repro.compute.stats.ComputeStats` docstring.
    """
    with trace.span("cube.parallel.worker", parent=parent, worker=worker,
                    rows=len(rows)) as span:
        stats = ComputeStats(algorithm="parallel-worker")
        stats.base_scans = 1
        cells: LocalCube = {}
        for row in rows:
            dim_values = task.dim_values(row)
            for mask in task.masks:
                coordinate = task.coordinate(mask, dim_values)
                handles = cells.get(coordinate)
                if handles is None:
                    handles = task.new_handles(stats)
                    cells[coordinate] = handles
                task.fold_row(handles, row, stats)
        stats.observe_resident(len(cells))
        span.set(cells=len(cells))
        span.attach_stats(stats)
    return cells, stats


def _guarded_local_cube(task: CubeTask, rows: Sequence[tuple], *,
                        worker: int, parent: "Span | None",
                        ctx) -> "tuple[LocalCube, ComputeStats] | _FailedWorker":
    """One worker under the context's fault envelope.

    Each attempt polls the cancellation token and fires the
    ``slow_node`` / ``worker_crash`` chaos points (keyed on worker and
    attempt, so a seed can crash attempt 0 and spare the retry).
    Failures retry with bounded backoff; exhausted retries return a
    :class:`_FailedWorker` sentinel for serial recovery instead of
    sinking the whole query.  Cancellation propagates immediately.
    """
    from repro.obs import instrument

    def on_failure(attempt: int, error: BaseException) -> None:
        instrument.record_worker_retry()
        if parent is not None:
            parent.event("worker_retry", worker=worker, attempt=attempt,
                         error=str(error))

    def run(attempt: int) -> tuple[LocalCube, ComputeStats]:
        # the active-context slot is thread-local, so the worker thread
        # re-installs the coordinator's context before doing any work --
        # budget charges and checkpoints then hit the shared accountant
        with rctx.use_context(ctx):
            ctx.check(f"parallel worker {worker}")
            ctx.inject("slow_node", worker=worker, attempt=attempt)
            ctx.inject("worker_crash", worker=worker, attempt=attempt)
            return _local_cube(task, rows, worker=worker, parent=parent)

    try:
        return call_with_retry(run, policy=ctx.retry, on_failure=on_failure)
    except QueryCancelledError:
        raise
    except Exception as error:
        instrument.record_worker_failure()
        if parent is not None:
            parent.event("worker_failed", worker=worker, error=str(error))
        return _FailedWorker(worker, error)
