"""Shared plumbing for the ``repro`` command-line tools.

``python -m repro.lint`` (query linter) and ``python -m repro.analysis``
(engine invariant analyzer) deliberately present the same surface:

- the same ``--format json|text`` flag (:func:`add_format_argument`);
- the same ``--rules CODES`` selection semantics
  (:func:`parse_rule_selection`): absent means *all* rules, while an
  explicitly empty selection (``--rules ""`` or ``--rules ,``) is a
  usage error -- silently running zero rules would report "clean" for a
  run that checked nothing;
- the same stable exit codes: ``0`` no error findings (warnings
  allowed), ``1`` error findings, ``2`` usage problems (bad flag,
  unreadable path, unknown or empty rule selection) -- reported as a
  one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.errors import CLIUsageError

__all__ = ["EXIT_OK", "EXIT_FINDINGS", "EXIT_USAGE", "CLIUsageError",
           "add_format_argument", "parse_rule_selection"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_format_argument(parser: argparse.ArgumentParser) -> None:
    """The ``--format json|text`` flag shared by both CLIs."""
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")


def parse_rule_selection(text: Optional[str]) -> Optional[list[str]]:
    """Parse a ``--rules`` value into a code list.

    ``None`` (flag absent) selects every rule and returns ``None``.  An
    explicitly empty selection raises :class:`CLIUsageError`: a run
    that executes zero rules can only ever say "clean", which is a lie
    waiting for a CI pipeline to believe it.
    """
    if text is None:
        return None
    codes = [code.strip().upper() for code in text.split(",")
             if code.strip()]
    if not codes:
        raise CLIUsageError(
            "--rules selected no rules; pass at least one code "
            "(e.g. --rules S001,S007) or drop the flag to run all")
    return codes
