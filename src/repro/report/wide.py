"""Chris Date's 2^N-column representation (Table 3.b).

"Table 3.a suggests creating 2^N aggregation columns for a roll-up of N
elements.  Indeed, Chris Date recommends this approach [Date1]. [...]
Representation 3.b is an elegant solution to this problem, but we
rejected it because it implies enormous numbers of domains in the
resulting tables."

:func:`date_wide_rollup` builds that rejected representation from the
same ROLLUP result, so the benchmarks can show *why* it was rejected:
the column count grows with N while the ALL representation's schema
stays N+1 columns wide.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.addressing import CubeView
from repro.core.cube import agg, rollup
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.types import ALL, DataType

__all__ = ["date_wide_rollup"]


def date_wide_rollup(table: Table, dims: Sequence[str], measure: str, *,
                     function: str = "SUM") -> Table:
    """Table 3.b: one row per base group, with the aggregate at *every*
    roll-up level as an extra column.

    For ``dims = [Model, Year, Color]`` the output schema is::

        Model, Year, Color,
        <fn> by Model by Year by Color, <fn> by Model by Year,
        <fn> by Model, <fn> total

    i.e. N dimension columns plus N+1 aggregate columns -- the per-level
    totals are *denormalized onto every detail row*, which is what makes
    the representation explode for real cubes (the paper's "64 columns
    for a 6D TPC-D query").
    """
    dims = list(dims)
    n = len(dims)
    result = rollup(table, dims, [agg(function, measure, measure)])
    view = CubeView(result, dims)

    columns = [result.schema.column(d) for d in dims]
    for level in range(n + 1):
        grouped = dims[: n - level]
        if grouped:
            name = f"{function} by " + " by ".join(grouped)
        else:
            name = f"{function} total"
        columns.append(Column(name, DataType.ANY))
    out = Table(Schema(columns))

    for key in sorted(view.coordinates(),
                      key=lambda coordinate: tuple(
                          (v is ALL, str(v)) for v in coordinate)):
        if any(v is ALL for v in key):
            continue  # only detail rows appear in Table 3.b
        values: list[Any] = []
        for level in range(n + 1):
            coords = list(key[: n - level]) + [ALL] * level
            values.append(view.get(*coords))
        out.append(tuple(key) + tuple(values), validate=False)
    return out
