"""Presentation layer: the report shapes the paper contrasts with the
relational cube representation -- roll-up reports (Table 3.a), Chris
Date's 2^N-column layout (Table 3.b), Excel-style pivots (Table 4),
cross-tabs (Tables 6.a/6.b) and histograms.

Every renderer consumes *relations* (base data or cube outputs),
demonstrating the paper's point that the ALL-value representation is
the common substrate all of these views derive from.
"""

from repro.report.render import render_grid
from repro.report.crosstab import crosstab, CrossTab
from repro.report.pivot import pivot_table, PivotTable
from repro.report.rollup_report import rollup_report
from repro.report.wide import date_wide_rollup
from repro.report.histogram import histogram
from repro.report.navigation import CubeNavigator
from repro.report.cumulative import cumulative_rollup

__all__ = [
    "CrossTab",
    "CubeNavigator",
    "PivotTable",
    "crosstab",
    "cumulative_rollup",
    "date_wide_rollup",
    "histogram",
    "pivot_table",
    "render_grid",
    "rollup_report",
]
