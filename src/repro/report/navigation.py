"""Interactive roll-up / drill-down navigation (Section 2).

"Reports commonly aggregate data at a coarse level, and then at
successively finer levels.  Going up the levels is called rolling-up
the data.  Going down is called drilling-down into the data."

:class:`CubeNavigator` holds a cursor into a cube relation: a set of
*expanded* dimensions (currently drilled into) plus fixed coordinates.
``drill_down`` expands one more dimension; ``roll_up`` collapses one;
``rows()`` returns the stratum the analyst is looking at.  This is the
Extract-Visualize-Analyze loop of Figure 1 with the cube as the
pre-extracted store: every navigation step is a lookup, not a
recomputation.
"""

from __future__ import annotations

from typing import Any

from repro.core.addressing import CubeView
from repro.engine.table import Table
from repro.errors import AddressingError
from repro.types import ALL

__all__ = ["CubeNavigator"]


class CubeNavigator:
    """A drill-down cursor over a :class:`CubeView`."""

    def __init__(self, view: CubeView) -> None:
        self.view = view
        self._expanded: list[str] = []
        self._fixed: dict[str, Any] = {}

    # -- state ------------------------------------------------------------

    @property
    def expanded(self) -> tuple[str, ...]:
        """Dimensions currently drilled into, in drill order."""
        return tuple(self._expanded)

    @property
    def fixed(self) -> dict[str, Any]:
        """Dimensions pinned to one value by :meth:`focus`."""
        return dict(self._fixed)

    def level_name(self) -> str:
        if not self._expanded:
            return "grand total"
        return "by " + " by ".join(self._expanded)

    # -- navigation ----------------------------------------------------------

    def drill_down(self, dim: str) -> "CubeNavigator":
        """Expand one more dimension (finer data)."""
        if dim not in self.view.dims:
            raise AddressingError(f"{dim!r} is not a dimension")
        if dim in self._expanded:
            raise AddressingError(f"already drilled into {dim!r}")
        if dim in self._fixed:
            raise AddressingError(
                f"{dim!r} is focused to {self._fixed[dim]!r}; unfocus "
                "before drilling")
        self._expanded.append(dim)
        return self

    def roll_up(self, dim: str | None = None) -> "CubeNavigator":
        """Collapse a dimension (coarser data); default: the last one
        drilled."""
        if not self._expanded:
            raise AddressingError("already at the grand total")
        if dim is None:
            self._expanded.pop()
        else:
            try:
                self._expanded.remove(dim)
            except ValueError:
                raise AddressingError(
                    f"{dim!r} is not currently expanded") from None
        return self

    def focus(self, dim: str, value: Any) -> "CubeNavigator":
        """Pin one dimension to a single value (slice)."""
        if dim not in self.view.dims:
            raise AddressingError(f"{dim!r} is not a dimension")
        if dim in self._expanded:
            self._expanded.remove(dim)
        self._fixed[dim] = value
        return self

    def unfocus(self, dim: str) -> "CubeNavigator":
        if dim not in self._fixed:
            raise AddressingError(f"{dim!r} is not focused")
        del self._fixed[dim]
        return self

    # -- reading ----------------------------------------------------------------

    def rows(self) -> Table:
        """The stratum under the cursor: expanded dims carry real
        values, focused dims their pinned value, the rest ALL."""
        out = self.view.table.empty_like()
        dims = self.view.dims
        for key in self.view.coordinates():
            keep = True
            for position, name in enumerate(dims):
                value = key[position]
                if name in self._fixed:
                    if value != self._fixed[name]:
                        keep = False
                        break
                elif name in self._expanded:
                    if value is ALL:
                        keep = False
                        break
                else:
                    if value is not ALL:
                        keep = False
                        break
            if keep:
                out.append(self.view._cells[key], validate=False)
        return out

    def total(self, measure: str | None = None) -> Any:
        """The single aggregate at the current focus, all expanded
        dimensions rolled up."""
        coords = []
        for name in self.view.dims:
            coords.append(self._fixed.get(name, ALL))
        return self.view.get(*coords, measure=measure)

    def __repr__(self) -> str:
        focus = ", ".join(f"{k}={v!r}" for k, v in self._fixed.items())
        return (f"<CubeNavigator {self.level_name()}"
                f"{' | ' + focus if focus else ''}>")
