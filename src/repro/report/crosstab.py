"""Cross-tabulation (Tables 6.a / 6.b).

"The symmetric aggregation result is a table called a cross-tabulation
[...] cross tab data is routinely displayed in the more compact format
of Table 6."

:func:`crosstab` computes a 2D cube of the requested measure (optionally
inside a fixed slice, e.g. ``Model='Chevy'``) and lays it out as rows x
columns with a ``total (ALL)`` row and column -- exactly Table 6's
shape.  The grid is derived from the relational ALL representation,
demonstrating the paper's equivalence of the two forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.cube import agg, cube
from repro.core.addressing import CubeView
from repro.engine.expressions import ColumnRef, Literal, Comparison
from repro.engine.table import Table
from repro.report.render import render_grid
from repro.types import ALL

__all__ = ["CrossTab", "crosstab"]


@dataclass
class CrossTab:
    """A materialized 2D cross-tab: row/column headers plus the grid."""

    row_dim: str
    col_dim: str
    row_values: list[Any]
    col_values: list[Any]
    grid: list[list[Any]]  # (len(rows)+1) x (len(cols)+1), totals last
    title: str = ""

    def value(self, row: Any, column: Any) -> Any:
        """Cell lookup; pass ALL for the total row/column."""
        row_pos = len(self.row_values) if row is ALL \
            else self.row_values.index(row)
        col_pos = len(self.col_values) if column is ALL \
            else self.col_values.index(column)
        return self.grid[row_pos][col_pos]

    @property
    def grand_total(self) -> Any:
        return self.grid[-1][-1]

    def to_text(self) -> str:
        headers = [self.row_dim] + [v for v in self.col_values] \
            + ["total (ALL)"]
        rows = []
        for position, row_value in enumerate(self.row_values):
            rows.append([row_value] + self.grid[position])
        rows.append(["total (ALL)"] + self.grid[-1])
        return render_grid(headers, rows, title=self.title)


def crosstab(table: Table, row_dim: str, col_dim: str, measure: str, *,
             function: str = "SUM",
             slice_dim: str | None = None,
             slice_value: Any = None) -> CrossTab:
    """Build the Table 6 cross-tab of ``measure`` by two dimensions.

    ``slice_dim``/``slice_value`` restrict to one plane of a higher-
    dimensional cube (Table 6.a is the ``Model='Chevy'`` plane; adding
    models "adds an additional cross tab plane" -- Table 6.b).
    """
    where = None
    title = f"{function}({measure}) by {row_dim} x {col_dim}"
    if slice_dim is not None:
        where = Comparison("=", ColumnRef(slice_dim), Literal(slice_value))
        title = f"{slice_value} {title}"
    result = cube(table, [row_dim, col_dim],
                  [agg(function, measure, measure)], where=where)
    view = CubeView(result, [row_dim, col_dim])

    row_values = view.dim_values(row_dim)
    col_values = view.dim_values(col_dim)
    grid: list[list[Any]] = []
    for row_value in row_values + [ALL]:
        line = []
        for col_value in col_values + [ALL]:
            line.append(view.get(row_value, col_value))
        grid.append(line)
    return CrossTab(row_dim=row_dim, col_dim=col_dim,
                    row_values=row_values, col_values=col_values,
                    grid=grid, title=title)
