"""Excel-style pivot tables (Table 4).

"The pivot operator transposes a spreadsheet: [...] Rather than just
creating columns based on subsets of column names, pivot creates
columns based on subsets of column *values*."

:func:`pivot_table` reproduces Table 4's layout: one row per row-
dimension value, a two-level column hierarchy (outer value, then inner
value, then the outer value's Total column), a Grand Total column, and
a Grand Total row.  Everything is read from the 3D cube's ALL
representation -- the paper's point that the pivot is a *presentation*
of the cube, not a different aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.addressing import CubeView
from repro.core.cube import agg, cube
from repro.engine.table import Table
from repro.report.render import render_grid
from repro.types import ALL

__all__ = ["PivotTable", "pivot_table"]


@dataclass
class PivotTable:
    """A materialized pivot: header rows plus the body grid."""

    row_dim: str
    outer_dim: str
    inner_dim: str
    row_values: list[Any]
    outer_values: list[Any]
    inner_values: list[Any]
    #: column keys in display order: (outer, inner), (outer, ALL) totals,
    #: then (ALL, ALL) for the grand total
    column_keys: list[tuple[Any, Any]]
    grid: list[list[Any]]  # rows x columns; last row is Grand Total
    title: str = ""

    def value(self, row: Any, outer: Any, inner: Any) -> Any:
        row_pos = len(self.row_values) if row is ALL \
            else self.row_values.index(row)
        col_pos = self.column_keys.index((outer, inner))
        return self.grid[row_pos][col_pos]

    def to_text(self) -> str:
        top = [self.outer_dim + " / " + self.inner_dim]
        for outer, inner in self.column_keys:
            if outer is ALL:
                top.append("Grand Total")
            elif inner is ALL:
                top.append(f"{outer} Total")
            else:
                top.append(f"{outer} {inner}")
        rows = []
        for position, row_value in enumerate(self.row_values):
            rows.append([row_value] + self.grid[position])
        rows.append(["Grand Total"] + self.grid[-1])
        return render_grid(top, rows, title=self.title)


def pivot_table(table: Table, row_dim: str, outer_dim: str, inner_dim: str,
                measure: str, *, function: str = "SUM") -> PivotTable:
    """Build the Table 4 pivot of ``measure``.

    Table 4 itself is ``pivot_table(sales, 'Model', 'Year', 'Color',
    'Units')``: models down the side, years across the top with colors
    nested inside and per-year totals, grand totals on both axes.
    """
    result = cube(table, [row_dim, outer_dim, inner_dim],
                  [agg(function, measure, measure)])
    view = CubeView(result, [row_dim, outer_dim, inner_dim])

    row_values = view.dim_values(row_dim)
    outer_values = view.dim_values(outer_dim)
    inner_values = view.dim_values(inner_dim)

    column_keys: list[tuple[Any, Any]] = []
    for outer in outer_values:
        for inner in inner_values:
            column_keys.append((outer, inner))
        column_keys.append((outer, ALL))
    column_keys.append((ALL, ALL))

    grid: list[list[Any]] = []
    for row_value in row_values + [ALL]:
        line = [view.get(row_value, outer, inner)
                for outer, inner in column_keys]
        grid.append(line)

    return PivotTable(
        row_dim=row_dim, outer_dim=outer_dim, inner_dim=inner_dim,
        row_values=row_values, outer_values=outer_values,
        inner_values=inner_values, column_keys=column_keys, grid=grid,
        title=f"{function}({measure}) pivot: {row_dim} by "
              f"{outer_dim}/{inner_dim}")
