"""Cumulative aggregates over ROLLUP output (Section 3).

"Cumulative aggregates, like running sum or running average, work
especially well with ROLLUP because the answer set is naturally
sequential (linear), while the full data cube is naturally non-linear
(multi-dimensional).  ROLLUP and CUBE must be ordered for cumulative
operators to apply."

:func:`cumulative_rollup` orders a ROLLUP result and threads a
cumulative column through the detail rows, resetting at each parent-
group boundary (the Red Brick reset-on-change semantics).  The running
total at a group's last detail row equals the sub-total row that
follows it -- an invariant the test-suite checks, and the reason the
two constructs compose so naturally.
"""

from __future__ import annotations

from typing import Sequence

from repro.aggregates.redbrick import cumulative, running_average, running_sum
from repro.core.cube import agg, rollup
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import CubeError
from repro.types import ALL, DataType

__all__ = ["cumulative_rollup"]

_WINDOWED = {"RUNNING_SUM": running_sum, "RUNNING_AVERAGE": running_average}


def cumulative_rollup(table: Table, dims: Sequence[str], measure: str, *,
                      function: str = "SUM",
                      cumulative_kind: str = "CUMULATIVE",
                      window: int | None = None) -> Table:
    """A sorted ROLLUP with a cumulative column over the detail rows.

    ``cumulative_kind`` is ``CUMULATIVE`` (running total, the default),
    ``RUNNING_SUM`` or ``RUNNING_AVERAGE`` (both need ``window``).
    Detail rows accumulate within their parent group (all dims but the
    last); every super-aggregate row carries NULL in the cumulative
    column, since it is not part of the linear sequence.
    """
    kind = cumulative_kind.upper()
    if kind not in ("CUMULATIVE", *_WINDOWED):
        raise CubeError(
            f"cumulative_kind must be CUMULATIVE, RUNNING_SUM or "
            f"RUNNING_AVERAGE, got {cumulative_kind!r}")
    if kind in _WINDOWED and window is None:
        raise CubeError(f"{kind} needs a window size")

    rolled = rollup(table, list(dims), [agg(function, measure, measure)])
    n = len(dims)
    measure_idx = rolled.schema.index_of(measure)

    detail_positions = [i for i, row in enumerate(rolled.rows)
                        if all(v is not ALL for v in row[:n])]
    detail_values = [rolled.rows[i][measure_idx] for i in detail_positions]
    groups = [rolled.rows[i][: n - 1] for i in detail_positions]

    if kind == "CUMULATIVE":
        series = cumulative(detail_values, groups=groups)
    else:
        series = _WINDOWED[kind](detail_values, window, groups=groups)

    out_name = f"{kind.title()}({measure})" if kind == "CUMULATIVE" else \
        f"{kind}({measure}, {window})"
    columns = list(rolled.schema.columns)
    columns.append(Column(out_name, DataType.ANY))
    out = Table(Schema(columns))

    cumulative_by_position = dict(zip(detail_positions, series))
    for position, row in enumerate(rolled.rows):
        out.append(row + (cumulative_by_position.get(position),),
                   validate=False)
    return out
