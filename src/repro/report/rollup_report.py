"""The Table 3.a roll-up report.

"Data is aggregated by Model, then by Year, then by Color.  The report
shows data aggregated at three levels.  Going up the levels is called
rolling-up the data.  Going down is called drilling-down."

The paper notes this layout "is not relational because the empty cells
(presumably NULL values) cannot form a key" -- which is exactly why the
CUBE paper replaces it with the ALL representation.  Here the report is
*rendered from* a relational ROLLUP result, showing the two forms carry
the same information.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.cube import agg, rollup
from repro.engine.table import Table
from repro.report.render import render_grid
from repro.types import ALL

__all__ = ["rollup_report"]


def rollup_report(table: Table, dims: Sequence[str], measure: str, *,
                  function: str = "SUM",
                  render: bool = True) -> "str | list[list]":
    """Produce the Table 3.a staircase layout for an N-level roll-up.

    Output columns: the N dimension columns (with repeating group
    values suppressed, as Table 3.a prints them), then one sub-total
    column per aggregation level, finest first (``Sales by Model by
    Year by Color``, ``Sales by Model by Year``, ``Sales by Model``,
    ...).  Each ROLLUP result row becomes one report line whose value
    lands in the column matching its level.  With ``render=False`` the
    raw grid (list of lists, ``None`` for blanks) is returned for
    programmatic use.
    """
    dims = list(dims)
    result = rollup(table, dims, [agg(function, measure, measure)])
    n = len(dims)

    level_names = []
    for level in range(n + 1):
        grouped = dims[: n - level]
        if grouped:
            level_names.append(f"{function} by " + " by ".join(grouped))
        else:
            level_names.append(f"{function} total")

    lines: list[list[Any]] = []
    previous: list[Any] = [object()] * n  # never equals real data
    for row in result:
        dim_values = list(row[:n])
        value = row[n]
        n_all = sum(1 for v in dim_values if v is ALL)
        lines.append(_line(dim_values, previous, value, n, n_all))
        if n_all == 0:
            previous = dim_values

    headers = dims + level_names
    if render:
        return render_grid(headers, lines,
                           title=f"Roll Up of {function}({measure}) by "
                                 + " by ".join(dims))
    return [headers] + lines


def _line(dim_values: list[Any], previous: list[Any], value: Any,
          n: int, n_all: int) -> list[Any]:
    cells: list[Any] = []
    for position, dim_value in enumerate(dim_values):
        if dim_value is ALL:
            cells.append("")
        elif previous[position] == dim_value and _prefix_matches(
                dim_values, previous, position):
            cells.append("")  # suppress repeating group value
        else:
            cells.append(dim_value)
    totals: list[Any] = [None] * (n + 1)
    totals[n_all] = value
    return cells + totals


def _prefix_matches(current: list[Any], previous: list[Any],
                    position: int) -> bool:
    return all(current[i] == previous[i] for i in range(position))
