"""Histograms over computed categories (Section 2).

"The standard SQL GROUP BY operator does not allow a direct
construction of histograms (aggregation over computed categories)."

:func:`histogram` is that direct construction: group by the value of an
arbitrary expression (``Day(Time)``, ``Nation(lat, lon)``, a numeric
bucket) and aggregate -- the capability the paper's extended
``GROUP BY <aggregation list>`` syntax provides.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cube import AggregateRequest, agg as agg_request, groupby
from repro.engine.expressions import ColumnRef, Expression, FunctionCall, lit
from repro.engine.table import Table

__all__ = ["histogram", "bucket_expression"]


def bucket_expression(column: str, width: float) -> Expression:
    """An equi-width bucketing expression: ``floor(col / width) * width``.

    Usable directly as a histogram category (and in SQL as
    ``BUCKET(col, width)``).
    """
    return FunctionCall("BUCKET", [ColumnRef(column), lit(width)])


def histogram(table: Table,
              category: "str | Expression | tuple[Expression, str]",
              aggregates: "Sequence[AggregateRequest | tuple] | None" = None,
              *, where: Expression | None = None) -> Table:
    """One-dimensional histogram: COUNT(*) (and any further aggregates)
    per value of ``category``.

    >>> histogram(weather, (FunctionCall("DAY", [col("Time")]), "day"))
    """
    if aggregates is None:
        aggregates = [agg_request("COUNT", "*", "count")]
    return groupby(table, [category], list(aggregates), where=where)
