"""Plain-text grid rendering shared by the report builders."""

from __future__ import annotations

from typing import Any, Sequence

from repro.types import display_value

__all__ = ["render_grid"]


def render_grid(headers: Sequence[Any], rows: Sequence[Sequence[Any]], *,
                title: str = "") -> str:
    """Render a rectangular grid with padded columns.

    ``headers`` and cell values go through
    :func:`repro.types.display_value`, so ALL and NULL print with the
    paper's conventions.  Empty-string cells stay blank (Table 3.a's
    suppressed repeating groups).
    """
    header_cells = [display_value(h) if h is not None else "" for h in headers]
    body = [[("" if cell == "" else display_value(cell)) if cell is not None
             else "" for cell in row] for row in rows]
    n_cols = max([len(header_cells)] + [len(r) for r in body]) if body \
        else len(header_cells)
    header_cells += [""] * (n_cols - len(header_cells))
    body = [row + [""] * (n_cols - len(row)) for row in body]

    widths = [len(c) for c in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "| " + " | ".join(
            f"{cell:<{w}}" for cell, w in zip(cells, widths)) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.extend([separator, line(header_cells), separator])
    out.extend(line(row) for row in body)
    out.append(separator)
    return "\n".join(out)
