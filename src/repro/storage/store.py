"""The durable cube store: checkpoints + WAL = crash recovery.

A :class:`CubeStore` owns one data directory holding a page file
(``cube.pages``) and a write-ahead log (``cube.wal``) and implements
the recovery contract the rest of the engine relies on (docs/STORAGE.md):

**Write path.**  A :class:`~repro.maintenance.MaterializedCube` bound
with :meth:`~repro.maintenance.MaterializedCube.bind_journal` writes
every transaction through the store -- ``begin`` record, one ``op``
record per base-row mutation, then a *synced* ``commit`` record before
the transaction reports success (or an ``abort`` on rollback).

**Checkpoint.**  :meth:`CubeStore.checkpoint` serializes every attached
cube's state (plus, optionally, the serve cache's cuboid entries) into
page-file blobs, writes a new *directory* blob naming them under a new
WAL epoch, makes the blobs durable, then flips the page-file header to
the new directory -- the single atomic commit point -- and finally
rotates the WAL.  Old blobs are freed only after the flip.

**Recovery.**  Opening a store reads the directory the surviving
header slot points at, then reconciles the WAL by epoch:

========================  ============================================
log epoch vs directory     meaning / action
========================  ============================================
equal                      normal: replay committed transactions from
                           the directory's ``wal_pos``
log older                  crash between header flip and log rotation:
                           the checkpoint already contains everything
                           in the log -- replay nothing, rotate now
log missing/empty          fresh store (or crash mid-rotation after
                           truncate): start a log at the directory's
                           epoch
========================  ============================================

Replays apply only *committed* transactions, in commit order, through
the cube's ordinary mutation path -- so a recovered cube is
bit-identical to the one that committed, including its maintenance
statistics.  Replaying any prefix of the log, or replaying twice, is
safe (the Hypothesis suite proves this over random logs).

**Crash points.**  Every step above is bracketed by a named
``crash_point`` chaos site (:data:`CRASH_SITES`), so the recovery
matrix can kill the engine between any two durability steps and assert
the reopened state is exactly pre- or post-transaction.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any, Dict, Optional

from repro.errors import StorageError
from repro.obs import instrument, trace
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageFile
from repro.storage.serde import restricted_loads
from repro.storage.wal import WriteAheadLog

__all__ = ["CubeStore", "CRASH_SITES"]

#: Every named crash site on the store's write paths, in write-path
#: order.  ``crash_sites=(site,)`` on a ChaosInjector kills the engine
#: exactly there; the recovery matrix iterates over all of them.
#: Sites up to and including ``wal.commit`` must recover to the
#: pre-transaction state; ``wal.commit.after_fsync`` and later must
#: recover to the post-transaction state.
CRASH_SITES = (
    "txn.begin",
    "wal.append",
    "wal.commit",
    "wal.commit.after_fsync",
    "checkpoint.blob",
    "checkpoint.header",
    "checkpoint.after_header",
    "wal.rotate",
)

_PAGES_NAME = "cube.pages"
_WAL_NAME = "cube.wal"


class CubeStore:
    """One durable data directory (see module docstring).

    ``chaos`` is threaded into the page file and the WAL, and
    consulted at every :data:`CRASH_SITES` site.
    """

    def __init__(self, data_dir: str, *,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 chaos: Optional[Any] = None) -> None:
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.chaos = chaos
        self._lock = threading.RLock()
        self._cubes: Dict[str, Any] = {}
        #: transactions replayed per cube name at attach time
        self.replayed: Dict[str, int] = {}
        self.pages = PageFile(os.path.join(data_dir, _PAGES_NAME),
                              page_size=page_size, chaos=chaos)
        self._directory = self._load_directory()
        self.wal = self._open_wal()
        self._txn_counter = self._seed_txn_counter()
        #: in-flight transactions' buffered ops (group commit)
        self._txn_ops: Dict[tuple, list] = {}
        self.checkpoints = 0

    # -- open / directory --------------------------------------------------

    def _load_directory(self) -> dict:
        if self.pages.root == 0:
            return {"epoch": 0, "wal_pos": 0, "cubes": {}, "cache": 0}
        blob = self.pages.read_blob(self.pages.root)
        try:
            directory = restricted_loads(blob)
        except pickle.UnpicklingError as error:
            raise StorageError(
                f"{self.pages.path}: root blob does not deserialize "
                f"under the storage trust model: {error}") from error
        if not isinstance(directory, dict) or "epoch" not in directory:
            raise StorageError(
                f"{self.pages.path}: root blob is not a store "
                "directory")
        return directory

    def _open_wal(self) -> WriteAheadLog:
        path = os.path.join(self.data_dir, _WAL_NAME)
        wal = WriteAheadLog(path, epoch=self._directory["epoch"],
                            chaos=self.chaos)
        if wal.epoch > self._directory["epoch"]:
            raise StorageError(
                f"{path}: log epoch {wal.epoch} is newer than the "
                f"checkpoint directory's {self._directory['epoch']}; "
                "the data directory mixes files from different stores")
        if wal.epoch < self._directory["epoch"]:
            # crash landed between the header flip and the log
            # rotation: the checkpoint supersedes the whole log
            wal.rotate(self._directory["epoch"])
            self._directory = dict(self._directory, wal_pos=0)
        return wal

    def _seed_txn_counter(self) -> int:
        highest = 0
        for record in self.wal.records():
            if record.txn > highest:
                highest = record.txn
        return highest + 1

    def close(self) -> None:
        with self._lock:
            self.wal.close()
            self.pages.close()

    def __enter__(self) -> "CubeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def epoch(self) -> int:
        return self._directory["epoch"]

    @property
    def cube_names(self) -> tuple:
        return tuple(sorted(self._directory["cubes"]))

    # -- attach / recover --------------------------------------------------

    def attach(self, cube: Any, name: str) -> bool:
        """Bind ``cube`` (a :class:`~repro.maintenance.MaterializedCube`)
        to this store under ``name``, recovering durable state into it.

        If the directory holds a checkpoint for ``name`` its state is
        restored first (the cube's spec signature must match -- a
        checkpoint is only reusable for the same cube definition);
        then every committed WAL transaction for ``name`` is replayed
        in commit order.  Returns ``True`` when any durable state was
        recovered, ``False`` for a genuinely fresh cube.  Afterwards
        the cube journals its transactions through this store.
        """
        with self._lock, trace.span("storage.recover", cube=name):
            if name in self._cubes:
                raise StorageError(
                    f"a cube is already attached as {name!r}")
            signature = cube.storage_signature()
            recovered = False
            entry = self._directory["cubes"].get(name)
            if entry is not None:
                if entry["sig"] != signature:
                    raise StorageError(
                        f"checkpoint for {name!r} belongs to a "
                        "different cube definition (dimension/"
                        "aggregate signature mismatch); attach under "
                        "a new name or remove the data directory")
                cube.restore_state(
                    restricted_loads(self.pages.read_blob(entry["blob"])))
                recovered = True
            replayed = self._replay_into(cube, name)
            self.replayed[name] = replayed
            recovered = recovered or replayed > 0
            self._cubes[name] = cube
            cube.bind_journal(self, name)
            instrument.record_recovery(
                "recovered" if recovered else "fresh")
            return recovered

    def _replay_into(self, cube: Any, name: str) -> int:
        start = self._directory["wal_pos"]
        count = 0
        with trace.span("storage.replay", cube=name) as span:
            for txn, cube_name, chunks in \
                    self.wal.committed_operations(start):
                if cube_name != name:
                    continue
                # group commit writes each transaction's ops as one
                # chunked record; tolerate single-op records too
                ops = []
                for chunk in chunks:
                    if isinstance(chunk, list):
                        ops.extend(chunk)
                    else:
                        ops.append(chunk)
                cube.apply_replay(ops)
                count += len(ops)
                instrument.record_wal_replay(len(ops))
            span.set(operations=count)
        return count

    # -- transaction journal (called by MaterializedCube) ------------------

    def txn_begin(self, name: str) -> int:
        with self._lock:
            self._crash("txn.begin")
            txn = self._txn_counter
            self._txn_counter += 1
            self.wal.append("begin", txn, name)
            self._txn_ops[(txn, name)] = []
            return txn

    def txn_op(self, txn: int, name: str, op: tuple) -> None:
        """Record one operation.  Ops are buffered in memory and hit
        the log as a single chunked record at commit (group commit):
        an uncommitted transaction was never durable anyway, so
        deferring the append costs nothing in recoverable state and
        collapses per-op writes into one."""
        with self._lock:
            self._crash("wal.append")
            self._txn_ops[(txn, name)].append(op)

    def txn_commit(self, txn: int, name: str) -> None:
        """The durability point: the buffered op chunk and the commit
        record are appended and fsynced before this returns, so a
        transaction that reported success survives any crash after
        it."""
        with self._lock:
            ops = self._txn_ops.pop((txn, name), [])
            self._crash("wal.commit")
            if ops:
                self.wal.append("op", txn, name, ops)
            self.wal.append("commit", txn, name, sync=True)
            self._crash("wal.commit.after_fsync")

    def txn_abort(self, txn: int, name: str) -> None:
        with self._lock:
            self._txn_ops.pop((txn, name), None)
            self.wal.append("abort", txn, name)

    def _crash(self, site: str) -> None:
        if self.chaos is not None:
            self.chaos.crash(site)

    # -- checkpoint --------------------------------------------------------

    def checkpoint(self, *, cache_state: Optional[bytes] = None) -> None:
        """Persist every attached cube (and optionally the serve
        cache) and reset the WAL.  Must not run while a journaled
        transaction is in flight -- callers checkpoint between
        requests, never inside one.

        The header flip is the atomic commit point: a crash anywhere
        before it leaves the previous checkpoint + log authoritative;
        a crash anywhere after it leaves the new checkpoint
        authoritative (the stale log is ignored by epoch).
        """
        with self._lock, trace.span(
                "storage.checkpoint",
                cubes=len(self._cubes)) as span:
            old_directory = self._directory
            old_root = self.pages.root
            new_epoch = old_directory["epoch"] + 1
            cubes: Dict[str, dict] = {}
            self._crash("checkpoint.blob")
            for name, cube in sorted(self._cubes.items()):
                blob = pickle.dumps(cube.capture_state(), protocol=4)
                cubes[name] = {
                    "sig": cube.storage_signature(),
                    "blob": self.pages.store_blob(blob),
                }
            if cache_state is not None:
                cache_head = self.pages.store_blob(cache_state)
            else:
                cache_head = old_directory.get("cache", 0)
                if cache_head:
                    # carry the previous cache blob forward so a
                    # cube-only checkpoint does not drop it
                    cache_head = self.pages.store_blob(
                        self.pages.read_blob(cache_head))
            directory = {"epoch": new_epoch, "wal_pos": 0,
                         "cubes": cubes, "cache": cache_head}
            dir_head = self.pages.store_blob(
                pickle.dumps(directory, protocol=4))
            self.pages.sync()
            self._crash("checkpoint.header")
            self.pages.set_root(dir_head)
            self._directory = directory
            self.checkpoints += 1
            instrument.record_checkpoint(
                "full" if cache_state is not None else "cubes")
            self._crash("checkpoint.after_header")
            self._free_old(old_directory, old_root)
            self.wal.rotate(new_epoch)
            span.set(epoch=new_epoch)

    def _free_old(self, old_directory: dict, old_root: int) -> None:
        """Recycle the superseded checkpoint's pages.  Runs after the
        header flip, so a crash here only leaks pages (the freelist
        head is persisted at the next flip)."""
        for entry in old_directory["cubes"].values():
            self.pages.free_blob(entry["blob"])
        if old_directory.get("cache"):
            self.pages.free_blob(old_directory["cache"])
        if old_root:
            self.pages.free_blob(old_root)

    # -- serve-cache persistence -------------------------------------------

    def load_cache(self) -> Optional[bytes]:
        """The last checkpointed serve-cache blob, or ``None``."""
        with self._lock:
            head = self._directory.get("cache", 0)
            if not head:
                return None
            return self.pages.read_blob(head)

    def stats(self) -> dict:
        with self._lock:
            return {
                "epoch": self._directory["epoch"],
                "checkpoints": self.checkpoints,
                "wal_position": self.wal.position,
                "pages": self.pages.n_pages,
                "cubes": sorted(self._directory["cubes"]),
                "replayed": dict(self.replayed),
                "cache_checkpointed":
                    bool(self._directory.get("cache", 0)),
            }

    def __repr__(self) -> str:
        return (f"<CubeStore {self.data_dir} epoch={self.epoch} "
                f"cubes={list(self._cubes)}>")
