"""Restricted deserialization for storage files (the trust model).

Everything the storage layer persists -- WAL record payloads, the
checkpoint directory, cube-state blobs, serve-cache entries -- is
framed with CRC-32, which detects *accidental* damage only.  ``pickle``
by itself would additionally let a data directory an attacker can
write to execute arbitrary code during recovery (a crafted
``__reduce__`` payload runs at load time).  :func:`restricted_loads`
closes that hole: ``find_class`` only resolves globals from a small
allowlist -- safe builtins, a few value-type stdlib modules, and the
engine's own ``repro`` package -- and raises
:class:`~repro.errors.UntrustedPayloadError` (a
:class:`pickle.UnpicklingError` subclass) for anything else
(``os.system``, ``subprocess``, ``builtins.eval``, ...), so a hostile
blob fails to load instead of running.

The corollary, documented in docs/STORAGE.md: values that round-trip
through storage (base-table rows, aggregate handles) must be built
from allowlisted types.  Every built-in aggregate and the test corpus
satisfy this; exotic user types would be rejected at *recovery* time,
which is the safe side to fail on.

The external algorithm's spill files are exempt: they are same-process
scratch in a private temporary directory, written and read back within
one ``compute()`` call and deleted in a ``finally``.
"""

from __future__ import annotations

import io
import pickle
from typing import Any

from repro.errors import UntrustedPayloadError

__all__ = ["restricted_loads"]

#: Builtins that are plain value constructors -- nothing that reaches
#: the interpreter (``eval``/``exec``/``getattr``/``__import__``).
_SAFE_BUILTINS = frozenset({
    "bool", "bytearray", "bytes", "complex", "dict", "float",
    "frozenset", "int", "list", "object", "range", "set", "slice",
    "str", "tuple",
})

#: Stdlib modules whose globals are pure value types.
_SAFE_MODULES = frozenset({
    "collections", "datetime", "decimal", "fractions", "uuid",
})


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        root = module.split(".", 1)[0]
        if root in _SAFE_MODULES or root == "repro":
            return super().find_class(module, name)
        raise UntrustedPayloadError(
            f"storage blob references forbidden global "
            f"{module}.{name}; the storage trust model "
            "(docs/STORAGE.md) only deserializes engine and value "
            "types")


def restricted_loads(data: bytes) -> Any:
    """``pickle.loads`` with ``find_class`` locked down (see module
    docstring).  Raises :class:`~repro.errors.UntrustedPayloadError`
    on any global outside the allowlist."""
    return _RestrictedUnpickler(io.BytesIO(data)).load()
