"""Fixed-size page files with per-page checksums (docs/STORAGE.md).

The durability story starts here: every byte the engine persists goes
through a :class:`PageFile`, whose unit of I/O is a fixed-size page
carrying its own CRC-32.  A torn write -- the process dies after some
but not all of a page's bytes reach the platter -- is therefore
*detectable*: the stored checksum cannot match the hybrid contents, and
readers raise :class:`~repro.errors.TornPageError` instead of returning
garbage.  Recovery treats a torn page as lost and falls back to the
last checkpoint plus WAL replay (:mod:`repro.storage.wal`).

The file header is **dual-slotted** against torn header writes: two
header pages (page ids 0 and 1) each carry a sequence number, and
updates always overwrite the slot holding the *older* sequence.  A
crash mid-write corrupts at most the slot being written; the other
slot still holds the previous, checksum-valid header, so the file
always opens to a consistent root.  This is the classic ping-pong
superblock discipline -- the header flip is the atomic commit point of
a checkpoint (:meth:`PageFile.set_root`).

Blobs larger than one page span a chain of pages linked through each
page's ``next_page`` field; freed pages go on a freelist threaded the
same way.  Chaos hooks (``torn_write``, ``fsync_fail``,
``pages.write`` / ``pages.header`` crash points -- see
:mod:`repro.resilience.chaos`) are wired through every write path so
the failure modes this module defends against are producible on
demand.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Any, Optional

from repro.errors import FaultInjectedError, StorageError, TornPageError
from repro.obs import instrument

__all__ = ["PageFile", "DEFAULT_PAGE_SIZE"]

#: Default page size in bytes; small enough that tests exercising
#: multi-page blobs stay cheap, large enough to be realistic.
DEFAULT_PAGE_SIZE = 4096

#: Per-page frame: crc32 (over everything after itself), payload
#: length, next-page pointer (0 = end of chain; page 0 is a header
#: page, so 0 is never a valid link target).
_FRAME = struct.Struct("<IIQ")

#: Header payload: magic, format version, page size, header sequence,
#: root blob head page, freelist head page, allocated page count.
_HEADER = struct.Struct("<8sIIQQQQ")
_MAGIC = b"RPROPAGE"
_FORMAT_VERSION = 1
_HEADER_PAGES = 2


class PageFile:
    """A checksummed, fixed-size-page file (see module docstring).

    ``kind`` labels this file's I/O metrics (``data`` for the engine's
    page store, ``spill`` for the external algorithm's partition
    spills).  ``chaos`` is an optional
    :class:`~repro.resilience.ChaosInjector` consulted on every write
    and fsync.
    """

    def __init__(self, path: str, *,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 kind: str = "data",
                 chaos: Optional[Any] = None) -> None:
        if page_size < _FRAME.size + _HEADER.size:
            raise StorageError(
                f"page_size must be >= {_FRAME.size + _HEADER.size} "
                f"bytes, got {page_size}")
        self.path = path
        self.page_size = page_size
        self.kind = kind
        self.chaos = chaos
        self._lock = threading.RLock()
        self._closed = False
        #: page ids served off the freelist and not freed since -- a
        #: stale persisted chain that loops back over one of these
        #: must never double-allocate it
        self._freelist_served: set[int] = set()
        existed = os.path.exists(path) and os.path.getsize(path) > 0
        # buffering=0: every write reaches the OS immediately, so the
        # simulated-crash tests see exactly the bytes a dead process
        # would have left behind
        self._file = open(path, "r+b" if existed else "w+b", buffering=0)
        if existed:
            self._load_header()
        else:
            self._sequence = 0
            self._root = 0
            self._free_head = 0
            self._n_pages = _HEADER_PAGES
            self._write_header_slot(0)
            self._fsync()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"page file {self.path} is closed")

    # -- header (dual slot) ------------------------------------------------

    def _pack_header(self) -> bytes:
        return _HEADER.pack(_MAGIC, _FORMAT_VERSION, self.page_size,
                            self._sequence, self._root, self._free_head,
                            self._n_pages)

    def _write_header_slot(self, slot: int) -> None:
        payload = self._pack_header()
        self._write_frame(slot, payload, 0, site="pages.header")

    def _read_header_slot(self, slot: int) -> Optional[tuple]:
        try:
            payload, _next = self._read_frame(slot, count_metric=False)
        except TornPageError:
            return None
        try:
            magic, version, page_size, sequence, root, free_head, \
                n_pages = _HEADER.unpack(payload[:_HEADER.size])
        except struct.error:
            return None
        if magic != _MAGIC or version != _FORMAT_VERSION:
            return None
        return (sequence, page_size, root, free_head, n_pages)

    def _load_header(self) -> None:
        slots = [self._read_header_slot(0), self._read_header_slot(1)]
        valid = [s for s in slots if s is not None]
        if not valid:
            raise StorageError(
                f"{self.path}: both header slots are invalid; this is "
                "not a repro page file (or it is damaged beyond the "
                "torn-header contract)")
        sequence, page_size, root, free_head, n_pages = max(valid)
        if page_size != self.page_size:
            raise StorageError(
                f"{self.path} was written with page_size={page_size}, "
                f"opened with page_size={self.page_size}")
        self._sequence = sequence
        self._root = root
        self._free_head = free_head
        self._n_pages = n_pages

    @property
    def root(self) -> int:
        """Head page of the application's root blob (0 = none)."""
        return self._root

    @property
    def n_pages(self) -> int:
        return self._n_pages

    def set_root(self, page_id: int) -> None:
        """Atomically flip the header to point at a new root blob.

        Writes the *older* header slot, then fsyncs -- the commit point
        of a checkpoint.  A crash mid-write leaves the other slot
        intact, so the previous root survives.
        """
        with self._lock:
            self._check_open()
            self._root = page_id
            self._sequence += 1
            self._write_header_slot(self._sequence % _HEADER_PAGES)
            self._fsync()

    # -- raw page I/O ------------------------------------------------------

    @property
    def payload_capacity(self) -> int:
        return self.page_size - _FRAME.size

    def _offset(self, page_id: int) -> int:
        return page_id * self.page_size

    def _frame_bytes(self, payload: bytes, next_page: int) -> bytes:
        buffer = bytearray(self.page_size)
        _FRAME.pack_into(buffer, 0, 0, len(payload), next_page)
        buffer[_FRAME.size:_FRAME.size + len(payload)] = payload
        crc = zlib.crc32(bytes(buffer[4:]))
        struct.pack_into("<I", buffer, 0, crc)
        return bytes(buffer)

    def _write_frame(self, page_id: int, payload: bytes, next_page: int,
                     *, site: str = "pages.write") -> None:
        if len(payload) > self.payload_capacity:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.payload_capacity}")
        if self.chaos is not None:
            self.chaos.crash(site)
        frame = self._frame_bytes(payload, next_page)
        self._file.seek(self._offset(page_id))
        if self.chaos is not None and self.chaos.should_inject(
                "torn_write", file=self.kind, page=page_id):
            # the crash happens mid-write: half the page reaches disk,
            # the process is gone -- readers must detect the tear
            self._file.write(frame[:self.page_size // 2])
            raise FaultInjectedError(
                f"chaos: injected torn_write (file={self.kind} "
                f"page={page_id})")
        self._file.write(frame)
        instrument.record_page_write(self.kind)

    def _read_frame(self, page_id: int,
                    *, count_metric: bool = True) -> tuple[bytes, int]:
        self._file.seek(self._offset(page_id))
        frame = self._file.read(self.page_size)
        if count_metric:
            instrument.record_page_read(self.kind)
        if len(frame) < self.page_size:
            instrument.record_torn_page()
            raise TornPageError(page_id, self.path)
        crc, length, next_page = _FRAME.unpack_from(frame, 0)
        if length > self.payload_capacity \
                or zlib.crc32(frame[4:]) != crc:
            instrument.record_torn_page()
            raise TornPageError(page_id, self.path)
        payload = frame[_FRAME.size:_FRAME.size + length]
        return payload, next_page

    def write_page(self, page_id: int, payload: bytes,
                   next_page: int = 0) -> None:
        """Write one page (checksummed); ``next_page`` links chains."""
        with self._lock:
            self._check_open()
            if not _HEADER_PAGES <= page_id < self._n_pages:
                raise StorageError(
                    f"page {page_id} out of range "
                    f"[{_HEADER_PAGES}, {self._n_pages})")
            self._write_frame(page_id, payload, next_page)

    def read_page(self, page_id: int) -> tuple[bytes, int]:
        """Read one page; raises :class:`TornPageError` on checksum
        mismatch.  Returns ``(payload, next_page)``."""
        with self._lock:
            self._check_open()
            if not _HEADER_PAGES <= page_id < self._n_pages:
                raise StorageError(
                    f"page {page_id} out of range "
                    f"[{_HEADER_PAGES}, {self._n_pages})")
            return self._read_frame(page_id)

    # -- allocation --------------------------------------------------------

    def allocate(self) -> int:
        """A fresh (or recycled) page id.  Freelist pops survive a
        crash harmlessly: the header's freelist head is only persisted
        at the next header flip, so an un-flipped pop merely leaks the
        page until then.

        A *persisted* freelist can be stale the other way: a crash
        after freed pages were recycled into blob frames but before
        the header flip leaves the durable ``free_head`` chain running
        through valid-CRC blob pages, whose ``next_page`` links are
        arbitrary (possibly beyond the durable page count).  A pop
        therefore only trusts a frame that still looks like a freelist
        link -- empty payload, id and next pointer inside the
        allocated range, id not already served by this handle -- and
        on any mismatch abandons the chain and extends the file
        instead: a leak is safe, a double-allocated page is not."""
        with self._lock:
            self._check_open()
            if self._free_head:
                page_id = self._free_head
                stale = (not _HEADER_PAGES <= page_id < self._n_pages
                         or page_id in self._freelist_served)
                next_free = 0
                if not stale:
                    try:
                        payload, next_free = self._read_frame(page_id)
                    except TornPageError:
                        # a crash tore the page after it went on the
                        # freelist; the chain beyond it is
                        # untrustworthy
                        stale = True
                    else:
                        stale = (payload != b""
                                 or not (next_free == 0
                                         or _HEADER_PAGES <= next_free
                                         < self._n_pages))
                if stale:
                    self._free_head = 0
                else:
                    self._free_head = next_free
                    self._freelist_served.add(page_id)
                    return page_id
            page_id = self._n_pages
            self._n_pages += 1
            return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the freelist."""
        with self._lock:
            self._check_open()
            if not _HEADER_PAGES <= page_id < self._n_pages:
                raise StorageError(
                    f"cannot free page {page_id}: out of range")
            self._write_frame(page_id, b"", self._free_head)
            self._free_head = page_id
            self._freelist_served.discard(page_id)

    # -- blobs -------------------------------------------------------------

    def store_blob(self, data: bytes) -> int:
        """Persist ``data`` across a chain of pages; returns the head
        page id.  The chain is written tail-first so every link always
        points at a fully written page."""
        with self._lock:
            self._check_open()
            capacity = self.payload_capacity
            chunks = [data[i:i + capacity]
                      for i in range(0, len(data), capacity)] or [b""]
            pages = [self.allocate() for _ in chunks]
            next_page = 0
            for page_id, chunk in zip(reversed(pages), reversed(chunks)):
                self._write_frame(page_id, chunk, next_page)
                next_page = page_id
            return pages[0]

    def read_blob(self, head: int) -> bytes:
        """Reassemble a blob from its page chain."""
        with self._lock:
            self._check_open()
            parts: list[bytes] = []
            seen: set[int] = set()
            page_id = head
            while page_id:
                if page_id in seen:
                    raise StorageError(
                        f"blob chain at page {head} contains a cycle "
                        f"(page {page_id} repeats)")
                seen.add(page_id)
                payload, page_id = self.read_page(page_id)
                parts.append(payload)
            return b"".join(parts)

    def free_blob(self, head: int) -> int:
        """Free a blob's whole chain; returns pages freed."""
        with self._lock:
            self._check_open()
            chain: list[int] = []
            seen: set[int] = set()
            page_id = head
            while page_id:
                if page_id in seen:
                    raise StorageError(
                        f"blob chain at page {head} contains a cycle "
                        f"(page {page_id} repeats)")
                seen.add(page_id)
                chain.append(page_id)
                _payload, page_id = self.read_page(page_id)
            for page_id in chain:
                self.free(page_id)
            return len(chain)

    # -- durability --------------------------------------------------------

    def _fsync(self) -> None:
        if self.chaos is not None and self.chaos.should_inject(
                "fsync_fail", file=self.kind):
            raise FaultInjectedError(
                f"chaos: injected fsync_fail (file={self.kind})")
        os.fsync(self._file.fileno())
        instrument.record_storage_fsync(self.kind)

    def sync(self) -> None:
        """Durability barrier: everything written is on disk after."""
        with self._lock:
            self._check_open()
            self._fsync()

    def sync_header(self) -> None:
        """Persist the in-memory header (freelist head, page count)
        without changing the root -- same dual-slot flip."""
        with self._lock:
            self._check_open()
            self._sequence += 1
            self._write_header_slot(self._sequence % _HEADER_PAGES)
            self._fsync()

    def __repr__(self) -> str:
        return (f"<PageFile {self.path} kind={self.kind} "
                f"pages={self._n_pages} root={self._root}>")
