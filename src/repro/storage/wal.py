"""The write-ahead log: append, fsync, replay (docs/STORAGE.md).

The WAL is the durability contract for transactional maintenance
(:meth:`~repro.maintenance.MaterializedCube.transaction`): every
operation is *logged before it is applied*, the commit record is
fsynced before the transaction reports success, and recovery replays
only transactions whose commit record made it to disk.  ``kill -9`` at
any instant therefore leaves either the pre-transaction or the
post-transaction state -- never a torn hybrid.

Record framing is self-validating: ``[length u32][crc32 u32][payload]``
with the payload a pickled ``(kind, txn, cube, data)`` tuple.  A
record's **LSN is its byte offset**, which makes replay positions
stable identifiers and prefix-truncation equivalent to crash
truncation.  The scan stops at the first frame that is short, fails
its CRC, or does not unpickle -- by construction that is the log's
**torn tail** (a crash mid-append), and it is discarded at open, never
applied.  Interior damage -- a file that does not even start with this
log's epoch record -- raises :class:`~repro.errors.WALCorruptError`
instead of silently wiping data that may not be ours.

Logs **rotate** under an epoch number (the first record of every log
file) so a full checkpoint can reset the log without a window where
committed work is only in memory: the checkpoint directory records
``(epoch, position)``, and replay compares epochs before positions
(see :mod:`repro.storage.store` for the exact crash analysis).
Rotation itself is write-new-file-then-rename, so the engine's own
crash model can never produce a log whose *first* frame is torn.

Record payloads are deserialized with the restricted unpickler
(:mod:`repro.storage.serde`): the data directory is trusted against
accidental damage (CRC) but a record that references globals outside
the storage allowlist is treated as frame damage, never executed.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import (
    FaultInjectedError,
    StorageError,
    WALCorruptError,
)
from repro.obs import instrument
from repro.storage.serde import restricted_loads

__all__ = ["WALRecord", "WriteAheadLog"]

_FRAME = struct.Struct("<II")

#: Scratch-file suffix used by :meth:`WriteAheadLog.rotate`; a
#: leftover one at open time is a crashed rotation's debris (the file
#: at the log's own path stayed authoritative throughout).
_ROTATE_SUFFIX = ".rotate"

#: Begin/op/commit/abort plus the epoch record every log starts with.
RECORD_KINDS = ("epoch", "begin", "op", "commit", "abort")

#: Upper bound on one record's payload -- anything larger at scan time
#: is treated as frame damage, not an allocation request.
_MAX_PAYLOAD = 64 * 1024 * 1024


@dataclass(frozen=True)
class WALRecord:
    """One log record.  ``lsn`` is the record's byte offset."""

    lsn: int
    kind: str
    txn: int
    cube: str
    data: Any


class WriteAheadLog:
    """Append-only, checksummed transaction log (see module docstring).

    ``chaos`` is an optional
    :class:`~repro.resilience.ChaosInjector`; its ``torn_write`` point
    tears an append mid-frame and ``fsync_fail`` fails the durability
    barrier.  Either failure **poisons** the log object -- like a
    database that panics on fsync failure, it refuses further appends
    until the file is reopened (which truncates the torn tail).
    """

    def __init__(self, path: str, *,
                 epoch: int = 0,
                 chaos: Optional[Any] = None) -> None:
        self.path = path
        self.chaos = chaos
        self._lock = threading.RLock()
        self._failed = False
        self._closed = False
        #: records discarded as the torn tail at open time
        self.discarded = 0
        scratch_path = path + _ROTATE_SUFFIX
        if os.path.exists(scratch_path):
            # a crash landed inside rotate() after the replacement log
            # was written but before the atomic rename; the log at
            # ``path`` is still authoritative (its stale epoch is
            # reconciled against the checkpoint directory), so the
            # half-rotation is debris
            os.unlink(scratch_path)
        existed = os.path.exists(path) and os.path.getsize(path) > 0
        self._file = open(path, "r+b" if existed else "w+b", buffering=0)
        if existed:
            self._scan_open()
        else:
            self.epoch = epoch
            self._end = 0
            self._append_frame(("epoch", 0, "", epoch))
            self._do_fsync()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_usable(self) -> None:
        if self._closed:
            raise StorageError(f"write-ahead log {self.path} is closed")
        if self._failed:
            raise StorageError(
                f"write-ahead log {self.path} is poisoned by a failed "
                "append or fsync; reopen the store to recover")

    @property
    def position(self) -> int:
        """The next record's LSN (current end of the valid log)."""
        with self._lock:
            return self._end

    # -- framing -----------------------------------------------------------

    @staticmethod
    def _encode(entry: tuple) -> bytes:
        payload = pickle.dumps(entry, protocol=4)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        return frame

    def _append_frame(self, entry: tuple) -> int:
        lsn = self._end
        frame = self._encode(entry)
        self._file.seek(lsn)
        if self.chaos is not None and self.chaos.should_inject(
                "torn_write", file="wal", lsn=lsn):
            # crash mid-append: a strict prefix of the frame lands
            self._file.write(frame[:max(1, len(frame) // 2)])
            self._failed = True
            raise FaultInjectedError(
                f"chaos: injected torn_write (file=wal lsn={lsn})")
        self._file.write(frame)
        self._end = lsn + len(frame)
        instrument.record_wal_append(entry[0])
        return lsn

    def _read_frame_at(self, offset: int,
                       size: int) -> Optional[tuple[tuple, int]]:
        """Decode the frame at ``offset``; ``None`` marks the torn
        tail.  Returns ``(entry, next_offset)``."""
        if offset + _FRAME.size > size:
            return None
        self._file.seek(offset)
        header = self._file.read(_FRAME.size)
        if len(header) < _FRAME.size:
            return None
        length, crc = _FRAME.unpack(header)
        if length == 0 or length > _MAX_PAYLOAD \
                or offset + _FRAME.size + length > size:
            return None
        payload = self._file.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None
        try:
            entry = restricted_loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not (isinstance(entry, tuple) and len(entry) == 4
                and entry[0] in RECORD_KINDS):
            return None
        return entry, offset + _FRAME.size + length

    # -- open-time scan ----------------------------------------------------

    def _scan_open(self) -> None:
        size = os.path.getsize(self.path)
        first = self._read_frame_at(0, size)
        if first is None or first[0][0] != "epoch":
            raise WALCorruptError(
                f"{self.path} does not start with a valid epoch "
                "record; refusing to treat it as a write-ahead log")
        self.epoch = first[0][3]
        offset = first[1]
        while True:
            decoded = self._read_frame_at(offset, size)
            if decoded is None:
                break
            offset = decoded[1]
        if offset < size:
            # the torn tail: count the damage, then cut it off so new
            # appends never land after unreadable bytes
            self.discarded = 1
            self._file.truncate(offset)
            instrument.record_wal_torn_tail(self.discarded)
        self._end = offset

    # -- appends -----------------------------------------------------------

    def append(self, kind: str, txn: int, cube: str, data: Any = None, *,
               sync: bool = False) -> int:
        """Append one record; returns its LSN.  ``sync=True`` is the
        commit discipline: the record is fsynced before return."""
        if kind not in RECORD_KINDS or kind == "epoch":
            raise StorageError(
                f"unknown WAL record kind {kind!r}; "
                f"use one of {RECORD_KINDS[1:]}")
        with self._lock:
            self._check_usable()
            lsn = self._append_frame((kind, txn, cube, data))
            if sync:
                self.sync()
            return lsn

    def sync(self) -> None:
        """Durability barrier.  A failure (injected or real) poisons
        the log: the caller must treat the transaction as unresolved
        and recover by reopening."""
        with self._lock:
            self._check_usable()
            self._do_fsync()

    def _do_fsync(self, file: Optional[Any] = None) -> None:
        if self.chaos is not None and self.chaos.should_inject(
                "fsync_fail", file="wal"):
            self._failed = True
            raise FaultInjectedError(
                "chaos: injected fsync_fail (file=wal)")
        os.fsync((file if file is not None else self._file).fileno())
        instrument.record_storage_fsync("wal")

    # -- replay ------------------------------------------------------------

    def records(self, start_lsn: int = 0) -> Iterator[WALRecord]:
        """Valid records from ``start_lsn`` to the end, epoch record
        excluded.  ``start_lsn=0`` means the whole log.  The iteration
        stops cleanly at a torn tail (only reachable when scanning a
        file another process tore after we opened it)."""
        with self._lock:
            if self._closed:
                raise StorageError(
                    f"write-ahead log {self.path} is closed")
            size = os.path.getsize(self.path)
            offset = 0
            out: list[WALRecord] = []
            while True:
                decoded = self._read_frame_at(offset, size)
                if decoded is None:
                    break
                entry, next_offset = decoded
                kind, txn, cube, data = entry
                if kind != "epoch" and offset >= start_lsn:
                    out.append(WALRecord(lsn=offset, kind=kind, txn=txn,
                                         cube=cube, data=data))
                offset = next_offset
        return iter(out)

    def committed_operations(
            self, start_lsn: int = 0) -> list[tuple[int, str, list]]:
        """Per-transaction op lists for *committed* transactions, in
        commit order: ``[(txn, cube, [op, ...]), ...]``.

        Transactions with no commit record (crashed mid-flight) or an
        abort record are skipped -- replaying any prefix of the log is
        therefore safe, and replaying twice applies the same list.
        """
        pending: dict[tuple[int, str], list] = {}
        committed: list[tuple[int, str, list]] = []
        for record in self.records(start_lsn):
            key = (record.txn, record.cube)
            if record.kind == "begin":
                pending[key] = []
            elif record.kind == "op":
                pending.setdefault(key, []).append(record.data)
            elif record.kind == "commit":
                ops = pending.pop(key, [])
                committed.append((record.txn, record.cube, ops))
            elif record.kind == "abort":
                pending.pop(key, None)
        return committed

    # -- rotation ----------------------------------------------------------

    def rotate(self, new_epoch: int) -> None:
        """Reset the log under a new epoch (after a full checkpoint).

        The caller must already have made the checkpoint -- with the
        new epoch recorded in its directory -- durable.  Rotation is
        write-new-file-then-rename: the replacement log (one epoch
        record) is written and fsynced into a ``.rotate`` scratch file
        which is then atomically renamed over the log.  The old log
        therefore stays intact and decodable until the new epoch
        record is durable -- a crash anywhere inside leaves either the
        old log (stale epoch, superseded by the checkpoint directory
        at the next open) or the complete new one, never a file whose
        first frame is torn."""
        with self._lock:
            self._check_usable()
            if new_epoch <= self.epoch:
                raise StorageError(
                    f"rotation epoch must grow: {new_epoch} <= "
                    f"{self.epoch}")
            scratch_path = self.path + _ROTATE_SUFFIX
            frame = self._encode(("epoch", 0, "", new_epoch))
            scratch = open(scratch_path, "w+b", buffering=0)
            try:
                scratch.write(frame)
                self._do_fsync(scratch)
            except BaseException:
                scratch.close()
                try:
                    os.unlink(scratch_path)
                except OSError:
                    pass
                raise
            if self.chaos is not None:
                try:
                    self.chaos.crash("wal.rotate")
                except BaseException:
                    # a simulated kill -9: leave the scratch file on
                    # disk exactly as a dead process would (open-time
                    # cleanup discards it) and poison this handle
                    self._failed = True
                    scratch.close()
                    raise
            os.replace(scratch_path, self.path)
            self._file.close()
            self._file = scratch
            self.epoch = new_epoch
            self._end = len(frame)
            instrument.record_wal_append("epoch")

    def verify(self) -> int:
        """Prove the log is clean end-to-end; returns the record
        count.  Raises :class:`~repro.errors.WALCorruptError` if any
        trailing bytes fail to decode (a torn tail that open-time
        truncation has not yet repaired)."""
        with self._lock:
            self._check_usable()
            size = os.path.getsize(self.path)
            offset = 0
            count = 0
            while offset < size:
                decoded = self._read_frame_at(offset, size)
                if decoded is None:
                    raise WALCorruptError(
                        f"{self.path}: undecodable bytes at offset "
                        f"{offset} of {size}")
                offset = decoded[1]
                count += 1
            return count

    def __repr__(self) -> str:
        return (f"<WriteAheadLog {self.path} epoch={self.epoch} "
                f"end={self._end}>")
