"""A pinning buffer manager over a :class:`~repro.storage.PageFile`.

The buffer pool keeps a bounded set of page *frames* in memory so hot
pages (spill partitions being re-read, the checkpoint directory chain)
are served without touching disk.  The discipline is the classic
textbook one:

* :meth:`BufferPool.pin` brings a page into a frame and pins it; a
  pinned frame is never evicted.
* :meth:`BufferPool.unpin` drops the pin, optionally marking the frame
  dirty (with replacement bytes) for later write-back.
* When every frame is full, the **least-recently-used unpinned** frame
  is evicted; a dirty victim is written back through the page file's
  checksummed write path first.

Frames are accounted against the resilience memory budget: each
resident frame charges one scratchpad cell to the active
:class:`~repro.resilience.ExecutionContext` (storage memory competes
with compute memory under one budget, matching how the external
algorithm's scratchpads are charged).  Eviction releases the cell.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.errors import StorageError
from repro.obs import instrument
from repro.resilience import context as rescontext
from repro.storage.pages import PageFile

__all__ = ["BufferPool"]


class _Frame:
    __slots__ = ("payload", "next_page", "pin_count", "dirty")

    def __init__(self, payload: bytes, next_page: int) -> None:
        self.payload = payload
        self.next_page = next_page
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """Bounded page cache with pin counts and LRU eviction (see
    module docstring).

    ``capacity`` is the frame count; it must admit at least one frame.
    All I/O goes through ``file`` so checksums, chaos injection, and
    metrics apply unchanged.
    """

    def __init__(self, file: PageFile, *, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError(
                f"buffer pool capacity must be >= 1 frame, "
                f"got {capacity}")
        self.file = file
        self.capacity = capacity
        self._lock = threading.RLock()
        # insertion order == recency order (move_to_end on touch)
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- pinning -----------------------------------------------------------

    def pin(self, page_id: int) -> tuple[bytes, int]:
        """Pin ``page_id`` into a frame; returns ``(payload,
        next_page)``.  The page cannot be evicted until every pin is
        dropped with :meth:`unpin`."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                self.misses += 1
                self._make_room()
                payload, next_page = self.file.read_page(page_id)
                frame = _Frame(payload, next_page)
                self._frames[page_id] = frame
                rescontext.charge_cells(1, where="storage.buffer")
                instrument.set_buffer_pages(len(self._frames))
            else:
                self.hits += 1
                self._frames.move_to_end(page_id)
            frame.pin_count += 1
            return frame.payload, frame.next_page

    def unpin(self, page_id: int, *, dirty: bool = False,
              payload: Optional[bytes] = None,
              next_page: Optional[int] = None) -> None:
        """Drop one pin.  ``dirty=True`` (optionally with replacement
        ``payload``/``next_page``) defers the write to eviction or
        :meth:`flush`."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise StorageError(
                    f"page {page_id} is not pinned in this buffer pool")
            if payload is not None:
                frame.payload = payload
            if next_page is not None:
                frame.next_page = next_page
            if dirty or payload is not None or next_page is not None:
                frame.dirty = True
            frame.pin_count -= 1

    def read(self, page_id: int) -> tuple[bytes, int]:
        """Pin, copy out, unpin -- the common read-only access."""
        with self._lock:
            result = self.pin(page_id)
            self.unpin(page_id)
            return result

    def write(self, page_id: int, payload: bytes,
              next_page: int = 0) -> None:
        """Stage a page write in the pool (write-back on eviction or
        :meth:`flush`)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                self.misses += 1
                self._make_room()
                frame = _Frame(payload, next_page)
                self._frames[page_id] = frame
                rescontext.charge_cells(1, where="storage.buffer")
                instrument.set_buffer_pages(len(self._frames))
            else:
                self._frames.move_to_end(page_id)
                frame.payload = payload
                frame.next_page = next_page
            frame.dirty = True

    # -- eviction / write-back ---------------------------------------------

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = next(
                (pid for pid, f in self._frames.items()
                 if f.pin_count == 0), None)
            if victim_id is None:
                raise StorageError(
                    f"buffer pool exhausted: all {self.capacity} "
                    "frames are pinned; unpin pages or grow capacity")
            victim = self._frames.pop(victim_id)
            if victim.dirty:
                self.file.write_page(victim_id, victim.payload,
                                     victim.next_page)
            rescontext.release_cells(1)
            self.evictions += 1
            instrument.record_buffer_eviction()
            instrument.set_buffer_pages(len(self._frames))

    def flush(self, *, sync: bool = False) -> int:
        """Write back every dirty frame; returns pages written.
        ``sync=True`` follows with a durability barrier."""
        with self._lock:
            written = 0
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self.file.write_page(page_id, frame.payload,
                                         frame.next_page)
                    frame.dirty = False
                    written += 1
            if sync and written:
                self.file.sync()
            return written

    def drop(self) -> None:
        """Discard every frame (after :meth:`flush` on an orderly
        shutdown; without it on crash simulation).  Pinned frames make
        this an error -- a leak of pins is a caller bug."""
        with self._lock:
            pinned = [pid for pid, f in self._frames.items()
                      if f.pin_count > 0]
            if pinned:
                raise StorageError(
                    f"cannot drop buffer pool: pages {pinned} are "
                    "still pinned")
            rescontext.release_cells(len(self._frames))
            self._frames.clear()
            instrument.set_buffer_pages(0)

    @property
    def resident(self) -> int:
        with self._lock:
            return len(self._frames)

    def __repr__(self) -> str:
        return (f"<BufferPool {self.file.path} "
                f"resident={len(self._frames)}/{self.capacity} "
                f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions}>")
