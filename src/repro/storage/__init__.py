"""Durable storage: pages, buffer manager, WAL, crash recovery.

Gray et al. assume the cube lives on a database engine with
recoverable storage (the Section 6 maintenance discussion presumes
durable relations); this package supplies that layer for the
reproduction.  The stack, bottom to top:

* :mod:`repro.storage.pages` -- fixed-size pages with per-page
  CRC-32 checksums and a dual-slot (ping-pong) header, so torn writes
  are detected and the header flip is an atomic commit point.
* :mod:`repro.storage.buffer` -- a pinning buffer pool with LRU
  eviction, accounted against the resilience memory budget.
* :mod:`repro.storage.wal` -- the write-ahead log: append → fsync →
  apply, byte-offset LSNs, commit/abort records, torn-tail discard.
* :mod:`repro.storage.store` -- :class:`CubeStore`: checkpoints,
  epoch-reconciled recovery, and the transaction journal that
  :class:`~repro.maintenance.MaterializedCube` writes through.

The recovery contract -- ``kill -9`` at any :data:`CRASH_SITES` site
leaves exactly the pre- or post-transaction state -- is documented in
docs/STORAGE.md and enforced by the seeded crash matrix in
``tests/test_chaos_storage.py``.
"""

from repro.storage.buffer import BufferPool
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageFile
from repro.storage.store import CRASH_SITES, CubeStore
from repro.storage.wal import WALRecord, WriteAheadLog

__all__ = [
    "BufferPool",
    "CRASH_SITES",
    "CubeStore",
    "DEFAULT_PAGE_SIZE",
    "PageFile",
    "WALRecord",
    "WriteAheadLog",
]
