"""Command-line interface: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis src/repro            # analyze the engine
    python -m repro.analysis src/repro benchmarks # multiple targets
    python -m repro.analysis src/repro --rules S002,S003 --format json
    python -m repro.analysis --list-rules

Exit codes (stable, for CI gating -- shared with ``repro.lint``):

- ``0`` -- no error-severity findings (warnings allowed);
- ``1`` -- at least one error-severity finding (including parse
  errors, reported as S000);
- ``2`` -- usage problems (unknown flag, nonexistent path, unknown or
  empty rule selection), reported without a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import Analyzer
from repro.analysis.project import AnalysisProject
from repro.analysis.rules import RULES
from repro.cliutil import (
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    CLIUsageError,
    add_format_argument,
    parse_rule_selection,
)
from repro.errors import AnalysisError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Engine invariant analyzer: AST-based checks "
                    "S001-S010 over this repository's own source.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(e.g. src/repro benchmarks)")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    add_format_argument(parser)
    parser.add_argument("--project-root", default=None, metavar="DIR",
                        help="project root for docs/tests cross-"
                             "references (default: auto-detected from "
                             "the first path)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors, 0 on --help: preserve both
        return int(exit_.code or 0)

    if args.list_rules:
        for code in sorted(RULES):
            registered = RULES[code]
            print(f"{code}  {registered.slug:<22} "
                  f"({registered.severity}) {registered.summary}")
        return EXIT_OK

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths to analyze (try: src/repro)",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        rules = parse_rule_selection(args.rules)
        analyzer = Analyzer(rules=rules)
        project = AnalysisProject(args.paths, root=args.project_root)
    except CLIUsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    report = analyzer.analyze(project)
    location = " ".join(args.paths)
    if args.format == "json":
        print(report.format_json(location=location))
    else:
        print(report.format_text(location=location))
        if report.findings:
            print(f"{len(report.errors())} error(s), "
                  f"{len(report.warnings())} warning(s)")
    return EXIT_OK if report.ok else EXIT_FINDINGS
